#!/usr/bin/env python3
"""Case study: Radix, the paper's stress test for remote-data caches.

Radix sort's permutation phase scatters writes across the whole key range:
an irregular, write-dominated workload with a large, sparse remote working
set.  This script reproduces the paper's three Radix findings:

1. a dirty-inclusion NC (`nc`) is *worse than no NC at all* — inclusion
   caps the cluster's dirty-block capacity at the NC size and inflates
   write-back traffic (Sec. 6.1.2);
2. the network victim cache (`vb`) slashes write capacity misses and
   traffic (Figs. 3/10);
3. R-NUMA-style page caching (`ncp5`) thrashes — relocation overhead and
   traffic explode — while the victim-NC variant (`vbp5`) stays efficient
   (Figs. 7/9/10).

Run:  python examples/radix_traffic_study.py
"""

from repro import simulate

REFS = 400_000
SYSTEMS = ("base", "nc", "vb", "ncp5", "vbp5", "ncd")


def main() -> None:
    print(f"Radix permutation, {REFS} shared references, 32 processors\n")
    header = (
        f"{'system':8s}{'read miss%':>11s}{'write miss%':>12s}"
        f"{'writebacks':>12s}{'relocations':>12s}{'traffic':>10s}"
        f"{'stall/ref':>11s}"
    )
    print(header)
    print("-" * len(header))

    base_traffic = None
    for system in SYSTEMS:
        r = simulate(system, "radix", refs=REFS)
        c = r.counters
        if base_traffic is None:
            base_traffic = r.traffic_blocks or 1
        print(
            f"{system:8s}{r.read_miss_ratio:>11.2f}{r.write_miss_ratio:>12.2f}"
            f"{c.writebacks_remote + c.pc_flush_writebacks:>12d}"
            f"{c.pc_relocations:>12d}"
            f"{r.traffic_blocks / base_traffic:>10.2f}"
            f"{r.stall_per_reference:>11.2f}"
        )

    print(
        "\nReadings: `nc` should show the inclusion pathology (write miss%\n"
        "and write-backs far above `base`); `vb` should absorb the scatter\n"
        "victims (lowest write miss%); `ncp5` should show relocation churn\n"
        "that `vbp5` avoids.  Traffic is normalised to `base`."
    )


if __name__ == "__main__":
    main()
