#!/usr/bin/env python3
"""Quickstart: simulate one DSM system on one benchmark and read the results.

The library reproduces Moga & Dubois, "The Effectiveness of SRAM Network
Caches in Clustered DSMs" (HPCA 1998): a 32-processor, 8-node CC-NUMA
machine driven by synthetic SPLASH-2-like traces.

Run:  python examples/quickstart.py
"""

from repro import simulate

REFS = 200_000  # shared references in the trace (raise for more fidelity)


def main() -> None:
    # The paper's system names: 'base' (no remote-data cache), 'vb' (the
    # proposed 16 KB network victim cache), 'vbp5' (victim NC + a page
    # cache of 1/5 of the dataset), 'ncd' (a 512 KB DRAM NC), ...
    for system in ("base", "vb", "ncd", "vbp5"):
        result = simulate(system, "barnes", refs=REFS, seed=1)
        c = result.counters
        print(f"system {system:6s}  "
              f"miss {result.miss_ratio:5.2f}%  "
              f"read-stall/ref {result.stall_per_reference:5.2f} cycles  "
              f"traffic {result.traffic_blocks:7d} blocks  "
              f"NC hits {c.read_nc_hits + c.write_nc_hits:6d}  "
              f"relocations {c.pc_relocations:5d}")

    # Every result carries the full event tally:
    result = simulate("vbp5", "barnes", refs=REFS)
    print("\nFull summary for vbp5/barnes:")
    for key, value in result.summary().items():
        print(f"  {key:28s} {value:14.2f}")


if __name__ == "__main__":
    main()
