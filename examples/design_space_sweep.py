#!/usr/bin/env python3
"""Design-space exploration: how much RDC, and in which technology?

Fig. 2 of the paper sketches the qualitative trade-off: an SRAM NC is
ideal while the remote working set is small; past the SRAM budget the
choice is a big slow DRAM NC vs. a page cache extending a small fast NC.
This script walks that design space quantitatively for two applications
from opposite ends of the paper's spectrum:

* **ocean** — regular, high spatial locality: the page cache should win
  once the working set outgrows the SRAM NC;
* **raytrace** — irregular, sparse working set: the fine-grain DRAM NC
  should win over equally-sized page caches.

Run:  python examples/design_space_sweep.py
"""

from repro import simulate

REFS = 300_000
NC_SIZES = (1024, 4096, 16 * 1024, 64 * 1024)
PC_FRACTIONS = (9, 7, 5)


def sweep(bench: str) -> None:
    print(f"\n=== {bench} ===")
    ref = simulate("dinf", bench, refs=REFS)

    print("victim NC size sweep (no page cache):")
    for size in NC_SIZES:
        r = simulate("vb", bench, refs=REFS, nc_size=size)
        print(
            f"  vb {size // 1024:3d} KB : miss {r.miss_ratio:5.2f}%  "
            f"stall(norm) {r.normalized_stall(ref):5.2f}"
        )

    r = simulate("ncd", bench, refs=REFS)
    print(
        f"  ncd 512 KB DRAM       : miss {r.miss_ratio:5.2f}%  "
        f"stall(norm) {r.normalized_stall(ref):5.2f}"
    )

    print("16 KB victim NC + page cache sweep:")
    for frac in PC_FRACTIONS:
        r = simulate(f"vbp{frac}", bench, refs=REFS)
        print(
            f"  vbp{frac} (PC = 1/{frac})   : miss {r.miss_ratio:5.2f}%  "
            f"stall(norm) {r.normalized_stall(ref):5.2f}  "
            f"relocations {r.counters.pc_relocations}"
        )


def main() -> None:
    print("Remote-data-cache design space (stall normalised to an infinite "
          "DRAM NC)")
    for bench in ("ocean", "raytrace"):
        sweep(bench)


if __name__ == "__main__":
    main()
