#!/usr/bin/env python3
"""Page-cache thrashing and the adaptive relocation threshold (Sec. 6.2).

A page relocation costs 225 bus cycles and only pays off if the replica
then satisfies enough capacity misses.  With a small page cache and an
irregular workload, a *fixed* relocation threshold lets the page cache
thrash: pages are relocated, evicted before amortising, relocated again.
The paper's adaptive policy detects thrashing through per-frame hit
counters (break-even 12, monitoring window = 2x frames) and raises the
threshold by one increment each time.

This script compares the two policies on the paper's two thrashing cases
(Barnes and Radix, Fig. 6) and one well-behaved case (Ocean), and shows
the adaptive controller's final per-node thresholds.

Run:  python examples/adaptive_threshold_tuning.py
"""

from repro import simulate
from repro.params import ThresholdPolicy
from repro.rdc.adaptive import AdaptiveThreshold
from repro.system.builder import build_machine, system_config
from repro.sim.runner import get_trace
from repro.sim.simulator import Simulator

REFS = 400_000


def compare(bench: str) -> None:
    print(f"\n=== {bench} (ncp5: R-NUMA NC + page cache of 1/5) ===")
    for policy in (ThresholdPolicy.FIXED, ThresholdPolicy.ADAPTIVE):
        r = simulate("ncp5", bench, refs=REFS, threshold_policy=policy)
        c = r.counters
        print(
            f"  {policy.value:8s}: miss {r.miss_ratio:5.2f}%  "
            f"relocations {c.pc_relocations:5d}  "
            f"PC evictions {c.pc_evictions:5d}  "
            f"relocation overhead {r.relocation_overhead_ratio:5.2f}% "
            f"(equivalent misses)"
        )


def show_final_thresholds(bench: str) -> None:
    """Run one adaptive simulation by hand and inspect the controllers."""
    trace = get_trace(bench, refs=REFS)
    config = system_config("ncp5", threshold_policy=ThresholdPolicy.ADAPTIVE)
    machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
    Simulator(machine).run(trace)
    thresholds = []
    for node in machine.nodes:
        assert isinstance(node.threshold, AdaptiveThreshold)
        thresholds.append((node.threshold.value, node.threshold.adjustments))
    print(f"  final per-node thresholds for {bench}: "
          + ", ".join(f"{v} ({a} raises)" for v, a in thresholds))


def main() -> None:
    for bench in ("barnes", "radix", "ocean"):
        compare(bench)
    print("\nAdaptive controller state (thresholds are tuned per node):")
    for bench in ("barnes", "radix"):
        show_final_thresholds(bench)


if __name__ == "__main__":
    main()
