"""Regenerate Figure 10 of the paper (see repro.experiments.fig10).

Run: pytest benchmarks/bench_fig10_traffic.py --benchmark-only -q
The printed table has the paper's rows (benchmarks) and columns (system
configurations); EXPERIMENTS.md records the expected shape.
"""

from repro.experiments import fig10


def test_fig10(benchmark, show):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    show(result)
