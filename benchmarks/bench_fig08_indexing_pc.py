"""Regenerate Figure 8 of the paper (see repro.experiments.fig08).

Run: pytest benchmarks/bench_fig08_indexing_pc.py --benchmark-only -q
The printed table has the paper's rows (benchmarks) and columns (system
configurations); EXPERIMENTS.md records the expected shape.
"""

from repro.experiments import fig08


def test_fig08(benchmark, show):
    result = benchmark.pedantic(fig08.run, rounds=1, iterations=1)
    show(result)
