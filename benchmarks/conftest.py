"""Shared fixtures for the figure-regeneration benchmarks.

Each ``bench_figNN`` module runs its experiment driver exactly once under
pytest-benchmark (``pedantic`` with one round — the driver itself sweeps a
systems x benchmarks matrix) and prints the paper-shaped table.

Fidelity is controlled by ``REPRO_BENCH_REFS`` (trace length per
benchmark; default 200k here to keep a full `pytest benchmarks/` run in
the minutes range — use 400k+ to match EXPERIMENTS.md exactly).
"""

import os

import pytest

DEFAULT_BENCH_REFS = 200_000


@pytest.fixture(scope="session", autouse=True)
def _bench_refs_env():
    os.environ.setdefault("REPRO_BENCH_REFS", str(DEFAULT_BENCH_REFS))
    yield


@pytest.fixture
def show(capsys):
    """Print an ExperimentResult table to the real terminal."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result)

    return _show
