"""Ablation bench: nc_size (see repro.experiments.ablations.nc_size).

Run: pytest benchmarks/bench_ablation_nc_size.py --benchmark-only -q
"""

from repro.experiments import ablations


def test_ablation_nc_size(benchmark, show):
    result = benchmark.pedantic(ablations.nc_size, rounds=1, iterations=1)
    show(result)
