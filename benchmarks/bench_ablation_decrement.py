"""Ablation bench: decrement (see repro.experiments.ablations.decrement).

Run: pytest benchmarks/bench_ablation_decrement.py --benchmark-only -q
"""

from repro.experiments import ablations


def test_ablation_decrement(benchmark, show):
    result = benchmark.pedantic(ablations.decrement, rounds=1, iterations=1)
    show(result)
