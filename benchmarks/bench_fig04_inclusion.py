"""Regenerate Figure 4 of the paper (see repro.experiments.fig04).

Run: pytest benchmarks/bench_fig04_inclusion.py --benchmark-only -q
The printed table has the paper's rows (benchmarks) and columns (system
configurations); EXPERIMENTS.md records the expected shape.
"""

from repro.experiments import fig04


def test_fig04(benchmark, show):
    result = benchmark.pedantic(fig04.run, rounds=1, iterations=1)
    show(result)
