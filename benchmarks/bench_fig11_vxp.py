"""Regenerate Figure 11 of the paper (see repro.experiments.fig11).

Run: pytest benchmarks/bench_fig11_vxp.py --benchmark-only -q
The printed table has the paper's rows (benchmarks) and columns (system
configurations); EXPERIMENTS.md records the expected shape.
"""

from repro.experiments import fig11


def test_fig11(benchmark, show):
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    show(result)
