"""Ablation bench: counter_sharing (see repro.experiments.ablations.counter_sharing).

Run: pytest benchmarks/bench_ablation_counter_sharing.py --benchmark-only -q
"""

from repro.experiments import ablations


def test_ablation_counter_sharing(benchmark, show):
    result = benchmark.pedantic(ablations.counter_sharing, rounds=1, iterations=1)
    show(result)
