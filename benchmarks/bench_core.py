"""Micro-benchmarks of the simulator's hot paths.

These track the cost of the operations every reference pays (cache
lookup, the full per-reference step, trace generation), so a performance
regression in the engine shows up here rather than as a mysteriously slow
figure bench.
"""

import numpy as np
import pytest

from repro import build_machine, get_trace, system_config
from repro.coherence.cache import SetAssocCache
from repro.params import CacheGeometry
from repro.sim.simulator import Simulator
from repro.trace.record import Trace, TraceSpec
from repro.trace.synthetic import generate_trace


def test_cache_lookup_hit(benchmark):
    cache = SetAssocCache(CacheGeometry(16 * 1024, 2))
    for block in range(256):
        cache.insert(block, 1)
    blocks = list(range(256)) * 4

    def lookups():
        for b in blocks:
            cache.lookup(b)

    benchmark(lookups)


def test_cache_insert_evict(benchmark):
    cache = SetAssocCache(CacheGeometry(16 * 1024, 2))
    blocks = list(range(4096))

    def churn():
        for b in blocks:
            cache.insert(b, 1)

    benchmark(churn)


@pytest.mark.parametrize("system", ["base", "vb", "vpp5"])
def test_step_throughput(benchmark, system):
    """Whole-engine throughput: references simulated per benchmark round."""
    trace = get_trace("barnes", refs=40_000)
    config = system_config(system)

    def run_once():
        machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
        Simulator(machine).run(trace)

    benchmark.pedantic(run_once, rounds=3, iterations=1)
    benchmark.extra_info["refs_per_sec"] = len(trace) / benchmark.stats.stats.min


def test_step_throughput_profiled(benchmark):
    """Whole-engine throughput with the stall profiler attached.

    Tracked against its own baseline floor so a regression in the
    profiler's miss-path hooks (e.g. work leaking onto the read-hit fast
    path, or per-event allocation in the window tallies) fails the bench
    gate even though profiling is off by default.
    """
    from repro.obs.profile import StallProfiler

    trace = get_trace("barnes", refs=40_000)
    config = system_config("vpp5")

    def run_once():
        machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
        profiler = StallProfiler(config)
        Simulator(machine, profiler=profiler).run(trace)
        profiler.finish(len(trace))

    benchmark.pedantic(run_once, rounds=3, iterations=1)
    benchmark.extra_info["refs_per_sec"] = len(trace) / benchmark.stats.stats.min


#: conservative floor for the inlined L1 read-hit fast path; the optimised
#: loop clears this by a wide margin even on loaded CI machines, while the
#: pre-optimisation engine (per-reference step()/lookup() calls) does not
FAST_PATH_FLOOR_REFS_PER_SEC = 400_000.0


def test_run_read_hit_fast_path(benchmark):
    """The hot path in isolation: one processor re-reading an L1-resident
    footprint, so every reference after the first pass is an inlined
    read hit.  Records refs/sec and asserts the optimisation floor."""
    refs = 200_000
    n_blocks = 128  # 4 KB footprint: fits any configured L1
    config = system_config("base")
    block_size = config.cache.block_size
    addrs = (np.arange(refs, dtype=np.int64) % n_blocks) * block_size
    trace = Trace(
        "hitloop",
        np.zeros(refs, dtype=np.int32),
        addrs,
        np.zeros(refs, dtype=np.uint8),
        dataset_bytes=n_blocks * block_size,
    )

    def run_once():
        machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
        Simulator(machine).run(trace)

    benchmark.pedantic(run_once, rounds=3, iterations=1)
    refs_per_sec = refs / benchmark.stats.stats.min
    benchmark.extra_info["refs_per_sec"] = refs_per_sec
    assert refs_per_sec >= FAST_PATH_FLOOR_REFS_PER_SEC, (
        f"read-hit fast path regressed: {refs_per_sec:,.0f} refs/s is below "
        f"the {FAST_PATH_FLOOR_REFS_PER_SEC:,.0f} floor"
    )


@pytest.mark.parametrize("bench", ["radix", "raytrace"])
def test_trace_generation(benchmark, bench):
    spec = TraceSpec(benchmark=bench, refs=100_000, seed=3)
    benchmark.pedantic(lambda: generate_trace(spec), rounds=3, iterations=1)
