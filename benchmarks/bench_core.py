"""Micro-benchmarks of the simulator's hot paths.

These track the cost of the operations every reference pays (cache
lookup, the full per-reference step, trace generation), so a performance
regression in the engine shows up here rather than as a mysteriously slow
figure bench.
"""

import numpy as np
import pytest

from repro import build_machine, get_trace, system_config
from repro.coherence.cache import SetAssocCache
from repro.params import CacheGeometry
from repro.sim.simulator import Simulator
from repro.trace.record import TraceSpec
from repro.trace.synthetic import generate_trace


def test_cache_lookup_hit(benchmark):
    cache = SetAssocCache(CacheGeometry(16 * 1024, 2))
    for block in range(256):
        cache.insert(block, 1)
    blocks = list(range(256)) * 4

    def lookups():
        for b in blocks:
            cache.lookup(b)

    benchmark(lookups)


def test_cache_insert_evict(benchmark):
    cache = SetAssocCache(CacheGeometry(16 * 1024, 2))
    blocks = list(range(4096))

    def churn():
        for b in blocks:
            cache.insert(b, 1)

    benchmark(churn)


@pytest.mark.parametrize("system", ["base", "vb", "vpp5"])
def test_step_throughput(benchmark, system):
    """Whole-engine throughput: references simulated per benchmark round."""
    trace = get_trace("barnes", refs=40_000)
    config = system_config(system)

    def run_once():
        machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
        Simulator(machine).run(trace)

    benchmark.pedantic(run_once, rounds=3, iterations=1)


@pytest.mark.parametrize("bench", ["radix", "raytrace"])
def test_trace_generation(benchmark, bench):
    spec = TraceSpec(benchmark=bench, refs=100_000, seed=3)
    benchmark.pedantic(lambda: generate_trace(spec), rounds=3, iterations=1)
