"""Micro-benchmarks of the simulator's hot paths.

These track the cost of the operations every reference pays (cache
lookup, the full per-reference step, trace generation), so a performance
regression in the engine shows up here rather than as a mysteriously slow
figure bench.
"""

import numpy as np
import pytest

from repro import build_machine, get_trace, system_config
from repro.coherence.cache import SetAssocCache
from repro.params import CacheGeometry
from repro.sim.batch import ENGINES, make_simulator
from repro.trace.record import Trace, TraceSpec
from repro.trace.synthetic import generate_trace


def test_cache_lookup_hit(benchmark):
    cache = SetAssocCache(CacheGeometry(16 * 1024, 2))
    for block in range(256):
        cache.insert(block, 1)
    blocks = list(range(256)) * 4

    def lookups():
        for b in blocks:
            cache.lookup(b)

    benchmark(lookups)


def test_cache_insert_evict(benchmark):
    cache = SetAssocCache(CacheGeometry(16 * 1024, 2))
    blocks = list(range(4096))

    def churn():
        for b in blocks:
            cache.insert(b, 1)

    benchmark(churn)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("system", ["base", "vb", "vpp5"])
def test_step_throughput(benchmark, system, engine):
    """Whole-engine throughput: references simulated per benchmark round.

    Parametrised over both execution engines.  On this mixed workload the
    batch engine is *not* expected to beat the interpreter — the barnes
    trace is ~64% L1-read-hit, so protocol misses dominate both engines
    (see docs/PERFORMANCE.md) — but each engine is floored independently
    so neither can silently regress.
    """
    trace = get_trace("barnes", refs=40_000)
    config = system_config(system)

    def run_once():
        machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
        make_simulator(engine, machine).run(trace)

    benchmark.pedantic(run_once, rounds=3, iterations=1)
    benchmark.extra_info["refs_per_sec"] = len(trace) / benchmark.stats.stats.min


@pytest.mark.parametrize("engine", ENGINES)
def test_step_throughput_profiled(benchmark, engine):
    """Whole-engine throughput with the stall profiler attached.

    Tracked against its own baseline floor so a regression in the
    profiler's miss-path hooks (e.g. work leaking onto the read-hit fast
    path, or per-event allocation in the window tallies) fails the bench
    gate even though profiling is off by default.  Runs on both engines:
    the profiler hooks the same per-reference miss path either way.
    """
    from repro.obs.profile import StallProfiler

    trace = get_trace("barnes", refs=40_000)
    config = system_config("vpp5")

    def run_once():
        machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
        profiler = StallProfiler(config)
        make_simulator(engine, machine, profiler=profiler).run(trace)
        profiler.finish(len(trace))

    benchmark.pedantic(run_once, rounds=3, iterations=1)
    benchmark.extra_info["refs_per_sec"] = len(trace) / benchmark.stats.stats.min


#: conservative per-engine floors for the L1 read-hit fast path.  The
#: interpreter's inlined loop clears 400k refs/s by a wide margin even on
#: loaded CI machines; the batch engine's vectorised tag-compare path must
#: additionally prove the >=5x speedup the engine exists for.
FAST_PATH_FLOOR_REFS_PER_SEC = 400_000.0
ENGINE_FAST_PATH_FLOORS = {
    "interp": FAST_PATH_FLOOR_REFS_PER_SEC,
    "batch": 5 * FAST_PATH_FLOOR_REFS_PER_SEC,
}


@pytest.mark.parametrize("engine", ENGINES)
def test_run_read_hit_fast_path(benchmark, engine):
    """The hot path in isolation: one processor re-reading an L1-resident
    footprint, so every reference after the first pass is an inlined
    read hit (interp) or a whole-batch vector commit (batch).  Records
    refs/sec and asserts the per-engine optimisation floor."""
    refs = 200_000
    n_blocks = 128  # 4 KB footprint: fits any configured L1
    config = system_config("base")
    block_size = config.cache.block_size
    addrs = (np.arange(refs, dtype=np.int64) % n_blocks) * block_size
    trace = Trace(
        "hitloop",
        np.zeros(refs, dtype=np.int32),
        addrs,
        np.zeros(refs, dtype=np.uint8),
        dataset_bytes=n_blocks * block_size,
    )

    def run_once():
        machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
        make_simulator(engine, machine).run(trace)

    benchmark.pedantic(run_once, rounds=3, iterations=1)
    refs_per_sec = refs / benchmark.stats.stats.min
    benchmark.extra_info["refs_per_sec"] = refs_per_sec
    floor = ENGINE_FAST_PATH_FLOORS[engine]
    assert refs_per_sec >= floor, (
        f"read-hit fast path ({engine}) regressed: {refs_per_sec:,.0f} refs/s "
        f"is below the {floor:,.0f} floor"
    )


@pytest.mark.parametrize("bench", ["radix", "raytrace"])
def test_trace_generation(benchmark, bench):
    spec = TraceSpec(benchmark=bench, refs=100_000, seed=3)
    benchmark.pedantic(lambda: generate_trace(spec), rounds=3, iterations=1)
