"""Regenerate Figure 3 of the paper (see repro.experiments.fig03).

Run: pytest benchmarks/bench_fig03_assoc_vcsize.py --benchmark-only -q
The printed table has the paper's rows (benchmarks) and columns (system
configurations); EXPERIMENTS.md records the expected shape.
"""

from repro.experiments import fig03


def test_fig03(benchmark, show):
    result = benchmark.pedantic(fig03.run, rounds=1, iterations=1)
    show(result)
