"""Regenerate Tables 1-3 of the paper (structural consistency artifacts).

Run: pytest benchmarks/bench_tables.py --benchmark-only -q
"""

from repro.experiments import tables


def test_table1(benchmark, show):
    result = benchmark.pedantic(tables.table1, rounds=1, iterations=1)
    show(result)


def test_table2(benchmark, show):
    result = benchmark.pedantic(tables.table2, rounds=1, iterations=1)
    show(result)


def test_table3(benchmark, show):
    result = benchmark.pedantic(tables.table3, rounds=1, iterations=1)
    show(result)
