"""Benchmarks of the surrogate pipeline: fit cost and ranking throughput.

The `repro explore` contract is that ranking a 100k+ candidate design
space takes seconds, not sweeps — these benches track the two numbers
that promise rests on: the ridge least-squares fit and the vectorised
candidates-per-second ranking rate.
"""

import pytest

from repro.sim.parallel import run_parallel_sweep
from repro.surrogate import DesignSpace, fit_surrogate, rank_candidates
from repro.surrogate.fit import build_dataset, trace_features_for, training_configs
from repro.surrogate.model import SurrogateModel

REFS = 6000
BENCHES = ["barnes", "radix"]

WIDE_SPACE = DesignSpace(
    nc_sizes=tuple(k * 1024 for k in (2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128)),
    pc_denoms=(2, 3, 4, 5, 6, 7, 8, 9),
    thresholds=(1, 2, 4, 8, 16, 32),
    remote_latencies=(15, 30, 60),
)


@pytest.fixture(scope="module")
def calibration():
    configs = training_configs(nc_sizes=(4096, 65536), thresholds=(2, 16))
    results = run_parallel_sweep(configs, BENCHES, refs=REFS, seed=1)
    tfs = trace_features_for(BENCHES, refs=REFS, seed=1)
    return results, tfs


def test_fit_surrogate(benchmark, calibration):
    results, tfs = calibration
    x, y, _keys = build_dataset(results, tfs)
    model = benchmark(lambda: SurrogateModel.fit(x, y))
    assert model.meta["n_cells"] == x.shape[0]


def test_rank_throughput(benchmark, calibration):
    results, tfs = calibration
    model = fit_surrogate(results, tfs)
    cands = WIDE_SPACE.candidates()

    stall, cost = benchmark(lambda: rank_candidates(model, cands, tfs))
    assert stall.shape == cost.shape == (len(cands),)
    rate = len(cands) / benchmark.stats.stats.min
    benchmark.extra_info["candidates_per_sec"] = rate
    benchmark.extra_info["n_candidates"] = len(cands)
