"""Regenerate Figure 5 of the paper (see repro.experiments.fig05).

Run: pytest benchmarks/bench_fig05_indexing.py --benchmark-only -q
The printed table has the paper's rows (benchmarks) and columns (system
configurations); EXPERIMENTS.md records the expected shape.
"""

from repro.experiments import fig05


def test_fig05(benchmark, show):
    result = benchmark.pedantic(fig05.run, rounds=1, iterations=1)
    show(result)
