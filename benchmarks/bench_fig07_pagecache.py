"""Regenerate Figure 7 of the paper (see repro.experiments.fig07).

Run: pytest benchmarks/bench_fig07_pagecache.py --benchmark-only -q
The printed table has the paper's rows (benchmarks) and columns (system
configurations); EXPERIMENTS.md records the expected shape.
"""

from repro.experiments import fig07


def test_fig07(benchmark, show):
    result = benchmark.pedantic(fig07.run, rounds=1, iterations=1)
    show(result)
