"""Regenerate Figure 6 of the paper (see repro.experiments.fig06).

Run: pytest benchmarks/bench_fig06_adaptive.py --benchmark-only -q
The printed table has the paper's rows (benchmarks) and columns (system
configurations); EXPERIMENTS.md records the expected shape.
"""

from repro.experiments import fig06


def test_fig06(benchmark, show):
    result = benchmark.pedantic(fig06.run, rounds=1, iterations=1)
    show(result)
