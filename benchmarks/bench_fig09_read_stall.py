"""Regenerate Figure 9 of the paper (see repro.experiments.fig09).

Run: pytest benchmarks/bench_fig09_read_stall.py --benchmark-only -q
The printed table has the paper's rows (benchmarks) and columns (system
configurations); EXPERIMENTS.md records the expected shape.
"""

from repro.experiments import fig09


def test_fig09(benchmark, show):
    result = benchmark.pedantic(fig09.run, rounds=1, iterations=1)
    show(result)
