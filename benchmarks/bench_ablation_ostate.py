"""Ablation bench: ostate (see repro.experiments.ablations.ostate).

Run: pytest benchmarks/bench_ablation_ostate.py --benchmark-only -q
"""

from repro.experiments import ablations


def test_ablation_ostate(benchmark, show):
    result = benchmark.pedantic(ablations.ostate, rounds=1, iterations=1)
    show(result)
