"""Setup shim for environments whose pip lacks the `wheel` package.

`pip install -e . --no-build-isolation` needs bdist_wheel; offline boxes
without the wheel module can use `python setup.py develop` instead.
Configuration lives entirely in pyproject.toml.
"""
from setuptools import setup

setup()
