#!/usr/bin/env python
"""Gate engine throughput against the committed baseline floors.

Compares the ``refs_per_sec`` figures that ``benchmarks/bench_core.py``
records in its pytest-benchmark JSON output against the floors in
``benchmarks/baseline_core.json``.  A run **fails** when any benchmark
drops more than the tolerance (default 20%) below its floor::

    python -m pytest benchmarks/bench_core.py --benchmark-only \\
        --benchmark-json=bench_core.json
    python scripts/check_bench_regression.py bench_core.json \\
        benchmarks/baseline_core.json

The committed floors deliberately sit well below developer-machine
numbers (about 5x headroom) so shared CI runners never flap, while a real
regression — losing the inlined read-hit loop, re-introducing
per-reference allocation — still lands far below them.

``--update`` rewrites the baseline from the current run, dividing each
measurement by ``--headroom`` (default 5.0) to regain that margin.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


class BenchFileError(Exception):
    """A benchmark or baseline file that cannot be gated against."""


def extract_refs_per_sec(bench_json_path: str) -> Dict[str, float]:
    """Pull ``extra_info.refs_per_sec`` per benchmark from pytest-benchmark
    JSON; benchmarks without one (pure-latency micro-benches) are skipped."""
    try:
        with open(bench_json_path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise BenchFileError(f"cannot read {bench_json_path}: {exc}") from None
    if not isinstance(data, dict):
        raise BenchFileError(
            f"{bench_json_path} is not a pytest-benchmark JSON document"
        )
    out: Dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        rate = bench.get("extra_info", {}).get("refs_per_sec")
        if rate is not None:
            out[bench["name"]] = float(rate)
    return out


def load_floors(baseline_path: str) -> Dict[str, float]:
    """The committed ``refs_per_sec`` floor table, validated.

    Raises :class:`BenchFileError` — with the fix spelled out — instead of
    surfacing a ``KeyError``/``TypeError`` when the file is unreadable,
    has no ``refs_per_sec`` table, or holds non-numeric floors.
    """
    try:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise BenchFileError(f"cannot read baseline {baseline_path}: {exc}") from None
    floors = doc.get("refs_per_sec") if isinstance(doc, dict) else None
    if not isinstance(floors, dict) or not floors:
        raise BenchFileError(
            f"{baseline_path} has no 'refs_per_sec' floor table; "
            "regenerate it with --update"
        )
    bad = [
        name for name, floor in floors.items()
        if isinstance(floor, bool) or not isinstance(floor, (int, float))
    ]
    if bad:
        raise BenchFileError(
            f"{baseline_path} has non-numeric floors for: {', '.join(sorted(bad))}; "
            "regenerate it with --update"
        )
    return {name: float(floor) for name, floor in floors.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="pytest-benchmark JSON from this run")
    parser.add_argument("baseline", help="benchmarks/baseline_core.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.8,
        help="fail when current < floor * tolerance (default %(default)s, "
             "i.e. a >20%% drop below the floor)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the current run instead of gating",
    )
    parser.add_argument(
        "--headroom", type=float, default=5.0,
        help="with --update, store measured/headroom as the new floor "
             "(default %(default)s)",
    )
    args = parser.parse_args(argv)

    try:
        current = extract_refs_per_sec(args.current)
    except BenchFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not current:
        print(f"error: no refs_per_sec entries in {args.current}",
              file=sys.stderr)
        return 2

    if args.update:
        baseline = {
            "_comment": (
                "Throughput floors for benchmarks/bench_core.py, in "
                "references simulated per second.  Floors are measured "
                f"values divided by {args.headroom:g} so loaded CI runners "
                "never flap; scripts/check_bench_regression.py fails a run "
                "that drops more than 20% below a floor."
            ),
            "refs_per_sec": {
                name: round(rate / args.headroom)
                for name, rate in sorted(current.items())
            },
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
        for name, floor in baseline["refs_per_sec"].items():
            print(f"  {name:40s} floor {floor:>12,}")
        return 0

    try:
        floors = load_floors(args.baseline)
    except BenchFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failures = []
    for name, floor in sorted(floors.items()):
        rate = current.get(name)
        if rate is None:
            failures.append(
                f"{name}: committed floor has no measurement in "
                f"{args.current} (benchmark renamed or removed? refresh "
                "the baseline with --update)"
            )
            print(f"MISSING    {name:40s} floor {floor:>12,.0f}")
            continue
        limit = floor * args.tolerance
        status = "ok" if rate >= limit else "REGRESSION"
        print(f"{status:10s} {name:40s} {rate:>12,.0f} refs/s "
              f"(floor {floor:,.0f}, limit {limit:,.0f})")
        if rate < limit:
            failures.append(
                f"{name}: {rate:,.0f} refs/s is below {limit:,.0f} "
                f"({args.tolerance:.0%} of the {floor:,.0f} floor)"
            )

    for name in sorted(set(current) - set(floors)):
        failures.append(
            f"{name}: measured but has no committed floor in "
            f"{args.baseline} (add one with --update)"
        )
        print(f"NO-FLOOR   {name:40s} {current[name]:>12,.0f} refs/s")

    if failures:
        print("\nthroughput regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nthroughput regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
