#!/usr/bin/env python
"""Validate an exported Chrome trace-event file — the CI gate behind
``repro trace export``.

Structurally validates the ``trace.json`` produced by ``repro trace
export`` (the check :func:`repro.obs.timeline.validate_chrome_trace`
implements: the ``traceEvents`` envelope, known phases, names, integer
pid/tid, non-negative timestamps, durations on complete spans) and
prints a short shape summary so the CI log shows *what* was exported,
not just that it parsed::

    python scripts/validate_trace.py trace.json

Exits 0 when the trace is valid, 1 with the problem list otherwise.
``--min-events N`` additionally fails traces carrying fewer than N
non-metadata events (guards against an export that silently traced
nothing).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.obs.timeline import validate_chrome_trace  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="path to an exported trace.json")
    parser.add_argument("--min-events", type=int, default=1,
                        help="fail unless at least N non-metadata events "
                             "are present (default %(default)s)")
    args = parser.parse_args(argv)

    problems = validate_chrome_trace(args.trace)
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1

    with open(args.trace, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    by_phase = {}
    for ev in events:
        by_phase[ev["ph"]] = by_phase.get(ev["ph"], 0) + 1
    clusters = {ev["pid"] for ev in events}
    payload = len(events) - by_phase.get("M", 0)
    meta = doc.get("metadata", {})
    print(f"{args.trace}: valid Chrome trace "
          f"({meta.get('system', '?')}/{meta.get('benchmark', '?')}, "
          f"{len(events)} events: "
          f"{by_phase.get('X', 0)} spans, {by_phase.get('i', 0)} instants, "
          f"{by_phase.get('M', 0)} metadata; {len(clusters)} clusters)")
    if payload < args.min_events:
        print(f"INVALID: only {payload} non-metadata events "
              f"(--min-events {args.min_events})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
