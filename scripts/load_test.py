#!/usr/bin/env python3
"""Load-test the sweep service: zipfian traffic, hit rates, chaos, 503s.

Drives a running ``repro serve`` (or spawns one with ``--spawn``) with
thousands of concurrent job submissions drawn from a **zipfian**
distribution over a pool of distinct sweep specs — the skewed popularity
pattern the service's content-addressed result store is built for, and
the same rank-frequency skew the source paper's network caches exploit.
Stdlib only: the HTTP client is raw :func:`asyncio.open_connection`,
matching the server's own framing (one request per connection,
``Connection: close``).

Two passes by default: the first populates the store (every distinct
spec simulates once), the second measures the steady state (popular
specs should be ~all cache hits).  The report asserts what
``ISSUE.md`` promises:

* cache-hit rate on the second pass (``--min-hit-rate`` gates CI);
* bit-identity: every response for the same spec must carry identical
  ``counters_sha`` digests, cached or freshly simulated;
* submit -> done latency percentiles (p50/p90/p99) and throughput;
* **telemetry reconciliation**: ``GET /metrics`` is scraped before and
  after every pass and the server's own counters must agree with the
  client's tally — accepted ``POST /jobs`` 202s against submissions,
  store hit/miss deltas against per-job cache summaries (exact in a
  clean steady pass, a ``>=`` floor when retries/503s blur the count),
  plus server-side p50/p90/p99 from the request-latency histogram
  reported beside the client's view.  In ``--chaos`` mode the kill can
  lose unsnapshotted increments, so the per-pass deltas are replaced by
  a persistence assertion: after the SIGKILL + restart the reloaded
  ``repro_jobs_submitted_total`` must still cover every job that had
  already completed before the kill.

Every request has a hard timeout and a bounded retry/backoff budget, so
a hung or draining server fails the run with a clear error instead of
hanging CI; ``503`` responses honour the server's ``Retry-After`` hint.

Resilience modes (both imply ``--spawn``):

* ``--chaos``: ``kill -9`` the server mid-pass, restart it on the same
  port and data dir, and assert **zero lost jobs** — every submission
  still completes (resumed from the journal) with bit-identical
  ``counters_sha`` digests, and the follow-up pass still meets the
  cache-hit gate.
* ``--saturate``: spawn the server with a tiny admission budget, verify
  overload answers are ``503`` + ``Retry-After`` (never hangs, never
  dropped connections), that retrying clients all eventually succeed,
  and that ``/healthz`` reports ``ok`` once the backlog drains.

Usage::

    python scripts/load_test.py --base-url http://127.0.0.1:8752 \
        --submissions 1000 --distinct 20
    python scripts/load_test.py --spawn --submissions 1000 \
        --min-hit-rate 0.8 --out load-report.json
    python scripts/load_test.py --chaos --submissions 120 \
        --min-hit-rate 0.8 --out chaos-report.json
    python scripts/load_test.py --saturate --submissions 60
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

#: systems the spec pool draws from (cheap, protocol-diverse)
SYSTEMS = ["base", "nc", "ncd", "vb", "vp", "vbp5", "vxp5", "p5"]
BENCHMARKS = ["radix", "fft", "lu", "ocean", "barnes", "cholesky"]

#: cap on any single retry sleep (Retry-After hints are clamped to this)
MAX_BACKOFF_S = 5.0


class RequestFailed(Exception):
    """A request kept failing after its whole retry budget."""


# ---------------------------------------------------------------------------
# minimal async HTTP client (mirrors the server: one request per connection)
# ---------------------------------------------------------------------------


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[dict] = None,
    timeout: float = 10.0,
) -> Tuple[int, dict, Dict[str, str]]:
    payload = b""
    if body is not None:
        payload = json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(head + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.split(b"\r\n")
    try:
        status = int(lines[0].split(b" ", 2)[1])
    except (IndexError, ValueError):
        # empty or torn response: the server died mid-reply; retryable
        raise ConnectionError("malformed/empty response (server gone?)")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        return status, json.loads(body_blob), headers
    except ValueError:
        return status, {"raw": body_blob.decode("utf-8", "replace")}, headers


async def request_with_retry(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[dict] = None,
    *,
    timeout: float = 10.0,
    attempts: int = 10,
    backoff: float = 0.25,
    stats: Optional["PassStats"] = None,
) -> Tuple[int, dict]:
    """One request with bounded retries: connection faults and 503s.

    A dead/restarting server (connection refused/reset, timeout) and an
    explicit ``503`` are both retried with exponential backoff — the
    latter honouring the server's ``Retry-After`` hint.  Anything else
    (including 4xx/5xx) is returned to the caller verbatim.  Exhausting
    the budget raises :class:`RequestFailed`, so a wedged server fails
    the run loudly instead of hanging it.
    """
    last: object = None
    for attempt in range(attempts):
        try:
            status, payload, headers = await http_request(
                host, port, method, path, body, timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            last = f"{type(exc).__name__}: {exc}"
            if stats is not None:
                stats.conn_retries += 1
            await asyncio.sleep(min(backoff * (2 ** attempt), MAX_BACKOFF_S))
            continue
        if status == 503:
            last = f"503: {payload.get('error', '?')}"
            if stats is not None:
                stats.rejected += 1
            try:
                delay = float(headers.get("retry-after", ""))
            except ValueError:
                delay = backoff * (2 ** attempt)
            await asyncio.sleep(min(max(delay, backoff), MAX_BACKOFF_S))
            continue
        return status, payload
    raise RequestFailed(
        f"{method} {path} failed after {attempts} attempt(s); last: {last}"
    )


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------


def build_spec_pool(distinct: int, refs: int, seed: int) -> List[dict]:
    """``distinct`` single-cell sweep specs, deterministically varied."""
    rng = random.Random(seed)
    pool = []
    for i in range(distinct):
        pool.append(
            {
                "systems": [SYSTEMS[i % len(SYSTEMS)]],
                "benchmarks": [BENCHMARKS[(i // len(SYSTEMS)) % len(BENCHMARKS)]],
                "refs": refs,
                "seed": 1 + rng.randrange(4),
            }
        )
    return pool


def zipf_sequence(
    pool_size: int, n: int, s: float, seed: int
) -> List[int]:
    """``n`` pool indices drawn rank^-s zipfian (rank 0 most popular)."""
    weights = [1.0 / (rank + 1) ** s for rank in range(pool_size)]
    rng = random.Random(seed)
    return rng.choices(range(pool_size), weights=weights, k=n)


def percentile(sorted_values: List[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(p / 100.0 * len(sorted_values)))
    return sorted_values[idx]


# ---------------------------------------------------------------------------
# /metrics scraping + reconciliation
# ---------------------------------------------------------------------------


def parse_prometheus(text: str) -> Dict[str, Dict[tuple, float]]:
    """Prometheus text -> ``{family: {sorted-label-tuple: value}}``.

    Good enough for our own exposition (label values never contain
    commas or escaped quotes); the strict grammar check lives in
    ``scripts/check_metrics_format.py``.
    """
    samples: Dict[str, Dict[tuple, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            blob, _, value_s = rest.rpartition("} ")
            labels = {}
            for pair in blob.split(","):
                if not pair:
                    continue
                key, _, value = pair.partition("=")
                labels[key.strip()] = value.strip().strip('"')
            series = tuple(sorted(labels.items()))
        else:
            name, _, value_s = line.rpartition(" ")
            series = ()
        try:
            samples.setdefault(name, {})[series] = float(value_s)
        except ValueError:
            continue
    return samples


def metric_total(
    samples: Dict[str, Dict[tuple, float]], name: str, **match: str
) -> float:
    """Sum a family over every series whose labels match ``match``."""
    total = 0.0
    for series, value in samples.get(name, {}).items():
        labels = dict(series)
        if all(labels.get(k) == v for k, v in match.items()):
            total += value
    return total


def metric_delta(before, after, name: str, **match: str) -> float:
    return metric_total(after, name, **match) - metric_total(before, name, **match)


def server_latency_percentiles(
    before, after, name: str = "repro_http_request_seconds"
) -> Dict[str, object]:
    """p50/p90/p99 upper bounds from the latency histogram's bucket deltas.

    Aggregates over endpoints; each percentile reports the ``le`` bound
    of the first cumulative bucket covering it (the usual
    histogram_quantile-style answer).
    """

    def buckets(samples) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for series, value in samples.get(f"{name}_bucket", {}).items():
            le = dict(series).get("le")
            if le is not None:
                out[le] = out.get(le, 0.0) + value
        return out

    b0, b1 = buckets(before), buckets(after)
    delta = {le: b1[le] - b0.get(le, 0.0) for le in b1}
    ordered = sorted(
        delta, key=lambda le: float("inf") if le == "+Inf" else float(le)
    )
    total = delta.get("+Inf", 0.0)
    out: Dict[str, object] = {"count": int(total)}
    for p in (50, 90, 99):
        chosen = None
        if total > 0:
            target = p / 100.0 * total
            for le in ordered:
                if delta[le] >= target:
                    chosen = le
                    break
        out[f"p{p}_le"] = chosen
    return out


def scrape_metrics(host: str, port: int, timeout: float = 10.0) -> str:
    """One ``GET /metrics`` (with retry/backoff); returns the raw text."""
    status, payload = asyncio.run(request_with_retry(
        host, port, "GET", "/metrics", timeout=timeout, attempts=5,
    ))
    if status != 200:
        raise RequestFailed(f"GET /metrics answered {status}")
    raw = payload.get("raw", "")
    if not isinstance(raw, str):
        raise RequestFailed("GET /metrics did not return text")
    return raw


def reconcile_pass(
    stats: "PassStats", before, after, strict: bool
) -> Dict[str, object]:
    """Server-side counter deltas vs the client's own tally for one pass.

    ``strict`` (a clean steady pass: no retries, no 503s, no failures)
    demands exact equality; otherwise the server may legitimately have
    seen *more* than the client credited (a retry whose first response
    was lost on the wire), so only the ``>=`` floor is asserted.
    """
    accepted = metric_delta(before, after, "repro_http_requests_total",
                            endpoint="/jobs", method="POST", status="202")
    hits = metric_delta(before, after, "repro_store_hits_total")
    misses = metric_delta(before, after, "repro_store_misses_total")
    simulated = stats.cells_total - stats.cells_hit
    problems: List[str] = []

    def check(label: str, server_side: float, client_side: int) -> None:
        if strict and round(server_side) != client_side:
            problems.append(
                f"{label}: server counted {server_side:g}, "
                f"clients counted {client_side}"
            )
        elif server_side + 1e-9 < client_side:
            problems.append(
                f"{label}: server counted {server_side:g} < "
                f"client floor {client_side}"
            )

    check("accepted submissions (POST /jobs -> 202)", accepted,
          stats.submitted)
    check("store hits", hits, stats.cells_hit)
    check("store misses (simulated cells)", misses, simulated)
    return {
        "strict": strict,
        "accepted_202_delta": accepted,
        "store_hits_delta": hits,
        "store_misses_delta": misses,
        "client_submitted": stats.submitted,
        "client_cells_hit": stats.cells_hit,
        "client_cells_simulated": simulated,
        "server_latency": server_latency_percentiles(before, after),
        "problems": problems,
    }


def export_spans(data_dir: str, out_path: str) -> Optional[str]:
    """Export the largest recorded span tree as Chrome trace JSON.

    Picks the job run directory with the biggest ``spans.jsonl`` and
    shells out to ``repro trace serve-export``; returns the run dir, or
    ``None`` when nothing was exportable.
    """
    jobs_dir = os.path.join(data_dir, "jobs")
    best, best_size = None, -1
    for root, _dirs, files in os.walk(jobs_dir):
        if "spans.jsonl" in files:
            size = os.path.getsize(os.path.join(root, "spans.jsonl"))
            if size > best_size:
                best, best_size = root, size
    if best is None:
        return None
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", "serve-export", best,
         "--out", out_path],
        env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(f"serve-export failed: {proc.stderr.strip()}", file=sys.stderr)
        return None
    return best


# ---------------------------------------------------------------------------
# the test itself
# ---------------------------------------------------------------------------


class PassStats:
    def __init__(self, name: str) -> None:
        self.name = name
        self.latencies: List[float] = []
        self.submitted = 0
        self.failed = 0
        self.rejected = 0  #: 503 answers absorbed by retry/backoff
        self.conn_retries = 0  #: connection-level faults absorbed
        self.cells_total = 0
        self.cells_hit = 0
        #: spec index -> sorted (system, benchmark, counters_sha) triples
        self.digests: Dict[int, Tuple] = {}

    def summary(self, wall_s: float) -> Dict[str, object]:
        lat = sorted(self.latencies)
        return {
            "pass": self.name,
            "submissions": self.submitted,
            "failed": self.failed,
            "rejected_503": self.rejected,
            "connection_retries": self.conn_retries,
            "wall_s": round(wall_s, 3),
            "throughput_jobs_per_s": round(self.submitted / wall_s, 2)
            if wall_s > 0 else 0.0,
            "cells_total": self.cells_total,
            "cells_from_cache": self.cells_hit,
            "cache_hit_rate": round(self.cells_hit / self.cells_total, 4)
            if self.cells_total else 0.0,
            "latency_s": {
                "p50": round(percentile(lat, 50), 4),
                "p90": round(percentile(lat, 90), 4),
                "p99": round(percentile(lat, 99), 4),
                "max": round(lat[-1], 4) if lat else 0.0,
            },
        }


async def run_one(
    server: Dict[str, object],
    spec_idx: int,
    spec: dict,
    stats: PassStats,
    sem: asyncio.Semaphore,
    poll_interval: float,
    request_timeout: float,
    job_timeout: float,
) -> None:
    async with sem:
        t0 = time.perf_counter()
        try:
            status, job = await request_with_retry(
                server["host"], server["port"], "POST", "/jobs", spec,
                timeout=request_timeout, stats=stats,
            )
            if status != 202:
                stats.failed += 1
                return
            job_id = job["id"]
            deadline = time.perf_counter() + job_timeout
            while True:
                status, j = await request_with_retry(
                    server["host"], server["port"], "GET", f"/jobs/{job_id}",
                    timeout=request_timeout, stats=stats,
                )
                if status == 200 and j.get("state") in (
                    "done", "failed", "cancelled"
                ):
                    break
                if time.perf_counter() > deadline:
                    stats.failed += 1
                    return
                await asyncio.sleep(poll_interval)
            latency = time.perf_counter() - t0
            if j.get("state") != "done":
                stats.failed += 1
                return
            _, result = await request_with_retry(
                server["host"], server["port"], "GET", f"/jobs/{job_id}/result",
                timeout=request_timeout, stats=stats,
            )
        except (RequestFailed, OSError, asyncio.TimeoutError,
                KeyError, ValueError):
            stats.failed += 1
            return
    stats.submitted += 1
    stats.latencies.append(latency)
    cache = j.get("cache") or {}
    stats.cells_total += int(cache.get("total_cells", 0))
    stats.cells_hit += int(cache.get("hits", 0))
    digest = tuple(sorted(
        (c["system"], c["benchmark"], c["counters_sha"])
        for c in result.get("cells", [])
    ))
    previous = stats.digests.setdefault(spec_idx, digest)
    if previous != digest:
        raise SystemExit(
            f"BIT-IDENTITY VIOLATION: spec {spec_idx} returned differing "
            f"counter digests within pass {stats.name}"
        )


async def run_pass(
    name: str,
    server: Dict[str, object],
    pool: List[dict],
    sequence: List[int],
    concurrency: int,
    poll_interval: float,
    request_timeout: float,
    job_timeout: float,
    chaos: Optional[Dict[str, object]] = None,
) -> Tuple[PassStats, float]:
    stats = PassStats(name)
    sem = asyncio.Semaphore(concurrency)
    t0 = time.perf_counter()
    tasks = [
        asyncio.ensure_future(run_one(
            server, idx, pool[idx], stats, sem, poll_interval,
            request_timeout, job_timeout,
        ))
        for idx in sequence
    ]
    killer = None
    if chaos is not None:
        killer = asyncio.ensure_future(
            chaos_killer(server, stats, len(sequence), chaos)
        )
    await asyncio.gather(*tasks)
    if killer is not None:
        await killer
    return stats, time.perf_counter() - t0


async def chaos_killer(
    server: Dict[str, object],
    stats: PassStats,
    total: int,
    out: Dict[str, object],
) -> None:
    """SIGKILL the server once real work is in flight, then respawn it.

    Waits until some submissions have completed (so the result store and
    journals hold state worth losing) while others are still running,
    then ``kill -9``s the process and restarts it on the same port and
    data dir.  The restarted server re-enqueues unfinished jobs from
    their journals; clients ride the outage on retry/backoff.
    """
    trigger = max(1, total // 10)
    deadline = time.monotonic() + 60.0
    while stats.submitted < trigger and time.monotonic() < deadline:
        await asyncio.sleep(0.05)
    proc = server["proc"]
    assert proc is not None, "--chaos requires a spawned server"
    t_kill = time.perf_counter()
    proc.kill()  # SIGKILL: no drain, no warning — the crash we promise to survive
    proc.wait()
    out["killed_after_jobs_done"] = stats.submitted
    loop = asyncio.get_running_loop()
    new_proc, _host, _port, banner = await loop.run_in_executor(
        None,
        lambda: spawn_server(
            str(server["data_dir"]), port=int(server["port"]),
            job_workers=int(server["job_workers"]),
        ),
    )
    server["proc"] = new_proc
    out["restart_s"] = round(time.perf_counter() - t_kill, 3)
    out["restart_banner"] = banner


def spawn_server(
    data_dir: str,
    port: Optional[int] = None,
    job_workers: int = 4,
    env_extra: Optional[Dict[str, str]] = None,
) -> Tuple[subprocess.Popen, str, int, List[str]]:
    """Start ``repro serve``; returns (proc, host, port, banner lines).

    ``port=None`` binds an ephemeral port; pass the previous port to
    restart a killed server in place.  ``banner`` is every stdout line
    printed before ``listening on`` (e.g. the job-resume notice).
    """
    env = dict(os.environ, REPRO_SERVICE_DIR=data_dir)
    env.update(env_extra or {})
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(port if port is not None else 0),
         "--job-workers", str(job_workers)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 30
    banner: List[str] = []
    assert proc.stdout is not None
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("listening on http://"):
            hostport = line.strip().rsplit("/", 1)[1]
            host, bound = hostport.rsplit(":", 1)
            return proc, host, int(bound), banner
        banner.append(line.strip())
    proc.kill()
    raise SystemExit("server failed to start (no 'listening on' line)")


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--base-url", default=None,
                    help="a running server (http://HOST:PORT); "
                         "omit with --spawn")
    ap.add_argument("--spawn", action="store_true",
                    help="spawn a repro serve on an ephemeral port with a "
                         "fresh temp data dir, kill it afterwards")
    ap.add_argument("--chaos", action="store_true",
                    help="kill -9 the spawned server mid-pass, restart it, "
                         "and assert zero lost jobs + bit-identity "
                         "(implies --spawn)")
    ap.add_argument("--saturate", action="store_true",
                    help="spawn the server with a tiny admission budget and "
                         "assert overload answers are 503 + Retry-After "
                         "that retrying clients absorb (implies --spawn)")
    ap.add_argument("--submissions", type=int, default=1000,
                    help="job submissions per pass (default %(default)s)")
    ap.add_argument("--distinct", type=int, default=20,
                    help="distinct specs in the zipfian pool "
                         "(default %(default)s)")
    ap.add_argument("--zipf-s", type=float, default=1.1,
                    help="zipf skew exponent (default %(default)s)")
    ap.add_argument("--refs", type=int, default=2000,
                    help="references per cell (default %(default)s)")
    ap.add_argument("--passes", type=int, default=2,
                    help="identical passes over the same sequence "
                         "(default %(default)s)")
    ap.add_argument("--concurrency", type=int, default=64,
                    help="in-flight submissions (default %(default)s)")
    ap.add_argument("--poll-interval", type=float, default=0.05,
                    help="job-status poll interval in seconds")
    ap.add_argument("--request-timeout", type=float, default=10.0,
                    help="per-request timeout in seconds (default "
                         "%(default)s); retried with backoff")
    ap.add_argument("--job-timeout", type=float, default=180.0,
                    help="submit -> done deadline per job in seconds "
                         "(default %(default)s); a job still pending after "
                         "this counts as failed")
    ap.add_argument("--workload-seed", type=int, default=42,
                    help="seed for the pool and the zipf sequence "
                         "(both passes replay the identical sequence)")
    ap.add_argument("--min-hit-rate", type=float, default=None,
                    help="fail (exit 1) if the final pass's cache-hit rate "
                         "is below this")
    ap.add_argument("--out", default=None,
                    help="write the JSON report here (default: stdout only)")
    ap.add_argument("--metrics-out", default=None,
                    help="write the final GET /metrics scrape (Prometheus "
                         "text) here, e.g. for check_metrics_format.py")
    ap.add_argument("--spans-out", default=None,
                    help="export the largest recorded span tree as Chrome "
                         "trace JSON here via 'repro trace serve-export' "
                         "(needs --spawn/--chaos/--saturate)")
    args = ap.parse_args(argv)
    if args.chaos or args.saturate:
        args.spawn = True

    server: Dict[str, object] = {
        "proc": None, "data_dir": None, "job_workers": 4,
    }
    tmp = None
    if args.spawn:
        tmp = tempfile.mkdtemp(prefix="repro-load-")
        env_extra: Dict[str, str] = {}
        if args.saturate:
            # a deliberately tiny admission budget: most of the burst
            # must be shed with 503s and absorbed by client backoff
            env_extra = {
                "REPRO_MAX_QUEUED_JOBS": "2",
                "REPRO_MAX_INFLIGHT_CELLS": "8",
            }
            server["job_workers"] = 1
        proc, host, port, _banner = spawn_server(
            tmp, job_workers=int(server["job_workers"]), env_extra=env_extra,
        )
        server.update(proc=proc, data_dir=tmp)
    elif args.base_url:
        hostport = args.base_url.rstrip("/").rsplit("/", 1)[1]
        host, port_s = hostport.rsplit(":", 1)
        port = int(port_s)
    else:
        ap.error("give --base-url, --spawn, --chaos, or --saturate")
    server.update(host=host, port=port)

    pool = build_spec_pool(args.distinct, args.refs, args.workload_seed)
    sequence = zipf_sequence(
        args.distinct, args.submissions, args.zipf_s, args.workload_seed
    )

    report: Dict[str, object] = {
        "workload": {
            "submissions_per_pass": args.submissions,
            "distinct_specs": args.distinct,
            "zipf_s": args.zipf_s,
            "refs_per_cell": args.refs,
            "passes": args.passes,
            "concurrency": args.concurrency,
            "workload_seed": args.workload_seed,
            "mode": ("chaos" if args.chaos
                     else "saturate" if args.saturate else "steady"),
        },
        "passes": [],
    }
    cross_pass_digests: Dict[int, Tuple] = {}
    metrics_problems: List[str] = []
    final_metrics_text = ""
    try:
        for pass_no in range(1, args.passes + 1):
            chaos_info: Optional[Dict[str, object]] = None
            if args.chaos and pass_no == 1:
                chaos_info = {}
            pre_metrics = parse_prometheus(scrape_metrics(
                host, port, args.request_timeout))
            stats, wall = asyncio.run(run_pass(
                f"pass{pass_no}", server, pool, sequence,
                args.concurrency, args.poll_interval,
                args.request_timeout, args.job_timeout,
                chaos=chaos_info,
            ))
            summary = stats.summary(wall)
            final_metrics_text = scrape_metrics(
                host, port, args.request_timeout)
            post_metrics = parse_prometheus(final_metrics_text)
            if chaos_info is None:
                # reconcile server deltas against the client tally; a
                # chaos pass is exempt (the SIGKILL may lose increments
                # recorded after the last snapshot) and asserts restart
                # persistence instead, below
                strict = (not stats.failed and not stats.rejected
                          and not stats.conn_retries)
                recon = reconcile_pass(stats, pre_metrics, post_metrics,
                                       strict=strict)
                summary["server_metrics"] = recon
                metrics_problems.extend(
                    f"{stats.name}: {p}" for p in recon["problems"]
                )
            else:
                summary["server_metrics"] = {
                    "skipped": "chaos pass (deltas not meaningful "
                               "across a SIGKILL)",
                    "server_latency": server_latency_percentiles(
                        pre_metrics, post_metrics),
                }
                summary["chaos"] = chaos_info
                report["chaos"] = chaos_info
            report["passes"].append(summary)
            print(json.dumps(summary), flush=True)
            # bit-identity must also hold ACROSS passes (cached vs simulated)
            for idx, digest in stats.digests.items():
                prev = cross_pass_digests.setdefault(idx, digest)
                if prev != digest:
                    print(f"BIT-IDENTITY VIOLATION across passes: spec {idx}",
                          file=sys.stderr)
                    return 1
        report["bit_identical_across_passes"] = True
        if args.chaos and "killed_after_jobs_done" in report.get("chaos", {}):
            # the counters reloaded after the kill -9 must still cover
            # every job that had already completed: each terminal
            # transition snapshots the registry before the job is
            # acknowledged done, so this floor survives any kill point
            floor = int(report["chaos"]["killed_after_jobs_done"])
            persisted = metric_total(parse_prometheus(final_metrics_text),
                                     "repro_jobs_submitted_total")
            report["chaos"]["persisted_submitted_total"] = persisted
            if persisted < floor:
                metrics_problems.append(
                    f"restart persistence: repro_jobs_submitted_total "
                    f"{persisted:g} < {floor} jobs already completed "
                    f"before the kill"
                )
        _, stats_resp, _ = asyncio.run(http_request(
            host, port, "GET", "/stats", timeout=args.request_timeout))
        report["server_stats"] = stats_resp
        _, health, _ = asyncio.run(http_request(
            host, port, "GET", "/healthz", timeout=args.request_timeout))
        report["final_health"] = health
        if args.spans_out:
            if server.get("data_dir") is None:
                metrics_problems.append(
                    "--spans-out needs a spawned server (use --spawn)")
            else:
                run_dir = export_spans(str(server["data_dir"]),
                                       args.spans_out)
                if run_dir is None:
                    metrics_problems.append(
                        "--spans-out: no exportable spans.jsonl found")
                else:
                    report["spans_export"] = {
                        "run_dir": run_dir, "out": args.spans_out,
                    }
    finally:
        proc = server.get("proc")
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.out}")
    if args.metrics_out:
        out_dir = os.path.dirname(args.metrics_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(final_metrics_text)
        print(f"final /metrics scrape written to {args.metrics_out}")

    failures: List[str] = list(metrics_problems)
    final = report["passes"][-1]
    total_failed = sum(p["failed"] for p in report["passes"])
    if total_failed:
        failures.append(f"{total_failed} submission(s) failed or were lost")
    if args.min_hit_rate is not None:
        rate = final["cache_hit_rate"]
        if rate < args.min_hit_rate:
            failures.append(
                f"final-pass cache-hit rate {rate:.2%} < "
                f"required {args.min_hit_rate:.2%}"
            )
    if args.saturate:
        total_rejected = sum(p["rejected_503"] for p in report["passes"])
        if not total_rejected:
            failures.append(
                "saturation mode saw zero 503s — the admission budget "
                "never engaged"
            )
    if args.chaos and "restart_s" not in report.get("chaos", {}):
        failures.append("chaos mode never killed/restarted the server")
    if (args.chaos or args.saturate) and (
        report.get("final_health", {}).get("status") != "ok"
    ):
        failures.append(
            f"server health did not recover to ok: {report.get('final_health')}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.min_hit_rate is not None:
        print(f"PASS: final-pass cache-hit rate "
              f"{final['cache_hit_rate']:.2%} >= {args.min_hit_rate:.2%}, "
              f"bit-identical across passes")
    if args.chaos:
        print(f"PASS: survived kill -9 (restart in "
              f"{report['chaos']['restart_s']}s), zero lost jobs")
    if args.saturate:
        print(f"PASS: {sum(p['rejected_503'] for p in report['passes'])} "
              f"503(s) shed and absorbed by retry/backoff; health ok")
    print("PASS: server /metrics telemetry reconciles with the client tally")
    return 0


if __name__ == "__main__":
    sys.exit(main())
