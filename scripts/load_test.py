#!/usr/bin/env python3
"""Load-test the sweep service: zipfian traffic, hit rates, tail latency.

Drives a running ``repro serve`` (or spawns one with ``--spawn``) with
thousands of concurrent job submissions drawn from a **zipfian**
distribution over a pool of distinct sweep specs — the skewed popularity
pattern the service's content-addressed result store is built for, and
the same rank-frequency skew the source paper's network caches exploit.
Stdlib only: the HTTP client is raw :func:`asyncio.open_connection`,
matching the server's own framing (one request per connection,
``Connection: close``).

Two passes by default: the first populates the store (every distinct
spec simulates once), the second measures the steady state (popular
specs should be ~all cache hits).  The report asserts what
``ISSUE.md`` promises:

* cache-hit rate on the second pass (``--min-hit-rate`` gates CI);
* bit-identity: every response for the same spec must carry identical
  ``counters_sha`` digests, cached or freshly simulated;
* submit -> done latency percentiles (p50/p90/p99) and throughput.

Usage::

    python scripts/load_test.py --base-url http://127.0.0.1:8752 \
        --submissions 1000 --distinct 20
    python scripts/load_test.py --spawn --submissions 1000 \
        --min-hit-rate 0.8 --out load-report.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

#: systems the spec pool draws from (cheap, protocol-diverse)
SYSTEMS = ["base", "nc", "ncd", "vb", "vp", "vbp5", "vxp5", "p5"]
BENCHMARKS = ["radix", "fft", "lu", "ocean", "barnes", "cholesky"]


# ---------------------------------------------------------------------------
# minimal async HTTP client (mirrors the server: one request per connection)
# ---------------------------------------------------------------------------


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[dict] = None,
    timeout: float = 30.0,
) -> Tuple[int, dict]:
    payload = b""
    if body is not None:
        payload = json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(head + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    try:
        return status, json.loads(body_blob)
    except ValueError:
        return status, {"raw": body_blob.decode("utf-8", "replace")}


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------


def build_spec_pool(distinct: int, refs: int, seed: int) -> List[dict]:
    """``distinct`` single-cell sweep specs, deterministically varied."""
    rng = random.Random(seed)
    pool = []
    for i in range(distinct):
        pool.append(
            {
                "systems": [SYSTEMS[i % len(SYSTEMS)]],
                "benchmarks": [BENCHMARKS[(i // len(SYSTEMS)) % len(BENCHMARKS)]],
                "refs": refs,
                "seed": 1 + rng.randrange(4),
            }
        )
    return pool


def zipf_sequence(
    pool_size: int, n: int, s: float, seed: int
) -> List[int]:
    """``n`` pool indices drawn rank^-s zipfian (rank 0 most popular)."""
    weights = [1.0 / (rank + 1) ** s for rank in range(pool_size)]
    rng = random.Random(seed)
    return rng.choices(range(pool_size), weights=weights, k=n)


def percentile(sorted_values: List[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(p / 100.0 * len(sorted_values)))
    return sorted_values[idx]


# ---------------------------------------------------------------------------
# the test itself
# ---------------------------------------------------------------------------


class PassStats:
    def __init__(self, name: str) -> None:
        self.name = name
        self.latencies: List[float] = []
        self.submitted = 0
        self.failed = 0
        self.cells_total = 0
        self.cells_hit = 0
        #: spec index -> sorted (system, benchmark, counters_sha) triples
        self.digests: Dict[int, Tuple] = {}

    def summary(self, wall_s: float) -> Dict[str, object]:
        lat = sorted(self.latencies)
        return {
            "pass": self.name,
            "submissions": self.submitted,
            "failed": self.failed,
            "wall_s": round(wall_s, 3),
            "throughput_jobs_per_s": round(self.submitted / wall_s, 2)
            if wall_s > 0 else 0.0,
            "cells_total": self.cells_total,
            "cells_from_cache": self.cells_hit,
            "cache_hit_rate": round(self.cells_hit / self.cells_total, 4)
            if self.cells_total else 0.0,
            "latency_s": {
                "p50": round(percentile(lat, 50), 4),
                "p90": round(percentile(lat, 90), 4),
                "p99": round(percentile(lat, 99), 4),
                "max": round(lat[-1], 4) if lat else 0.0,
            },
        }


async def run_one(
    host: str,
    port: int,
    spec_idx: int,
    spec: dict,
    stats: PassStats,
    sem: asyncio.Semaphore,
    poll_interval: float,
) -> None:
    async with sem:
        t0 = time.perf_counter()
        try:
            status, job = await http_request(host, port, "POST", "/jobs", spec)
            if status != 202:
                stats.failed += 1
                return
            job_id = job["id"]
            while True:
                status, j = await http_request(
                    host, port, "GET", f"/jobs/{job_id}"
                )
                if status == 200 and j.get("state") in ("done", "failed"):
                    break
                await asyncio.sleep(poll_interval)
            latency = time.perf_counter() - t0
            if j.get("state") != "done":
                stats.failed += 1
                return
            _, result = await http_request(
                host, port, "GET", f"/jobs/{job_id}/result"
            )
        except (OSError, asyncio.TimeoutError, KeyError, ValueError):
            stats.failed += 1
            return
    stats.submitted += 1
    stats.latencies.append(latency)
    cache = j.get("cache") or {}
    stats.cells_total += int(cache.get("total_cells", 0))
    stats.cells_hit += int(cache.get("hits", 0))
    digest = tuple(sorted(
        (c["system"], c["benchmark"], c["counters_sha"])
        for c in result.get("cells", [])
    ))
    previous = stats.digests.setdefault(spec_idx, digest)
    if previous != digest:
        raise SystemExit(
            f"BIT-IDENTITY VIOLATION: spec {spec_idx} returned differing "
            f"counter digests within pass {stats.name}"
        )


async def run_pass(
    name: str,
    host: str,
    port: int,
    pool: List[dict],
    sequence: List[int],
    concurrency: int,
    poll_interval: float,
) -> Tuple[PassStats, float]:
    stats = PassStats(name)
    sem = asyncio.Semaphore(concurrency)
    t0 = time.perf_counter()
    await asyncio.gather(*(
        run_one(host, port, idx, pool[idx], stats, sem, poll_interval)
        for idx in sequence
    ))
    return stats, time.perf_counter() - t0


def spawn_server(data_dir: str) -> Tuple[subprocess.Popen, str, int]:
    """Start ``repro serve`` on an ephemeral port; returns (proc, host, port)."""
    env = dict(os.environ, REPRO_SERVICE_DIR=data_dir)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--job-workers", "4"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 30
    assert proc.stdout is not None
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("listening on http://"):
            hostport = line.strip().rsplit("/", 1)[1]
            host, port = hostport.rsplit(":", 1)
            return proc, host, int(port)
    proc.kill()
    raise SystemExit("server failed to start (no 'listening on' line)")


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--base-url", default=None,
                    help="a running server (http://HOST:PORT); "
                         "omit with --spawn")
    ap.add_argument("--spawn", action="store_true",
                    help="spawn a repro serve on an ephemeral port with a "
                         "fresh temp data dir, kill it afterwards")
    ap.add_argument("--submissions", type=int, default=1000,
                    help="job submissions per pass (default %(default)s)")
    ap.add_argument("--distinct", type=int, default=20,
                    help="distinct specs in the zipfian pool "
                         "(default %(default)s)")
    ap.add_argument("--zipf-s", type=float, default=1.1,
                    help="zipf skew exponent (default %(default)s)")
    ap.add_argument("--refs", type=int, default=2000,
                    help="references per cell (default %(default)s)")
    ap.add_argument("--passes", type=int, default=2,
                    help="identical passes over the same sequence "
                         "(default %(default)s)")
    ap.add_argument("--concurrency", type=int, default=64,
                    help="in-flight submissions (default %(default)s)")
    ap.add_argument("--poll-interval", type=float, default=0.05,
                    help="job-status poll interval in seconds")
    ap.add_argument("--workload-seed", type=int, default=42,
                    help="seed for the pool and the zipf sequence "
                         "(both passes replay the identical sequence)")
    ap.add_argument("--min-hit-rate", type=float, default=None,
                    help="fail (exit 1) if the final pass's cache-hit rate "
                         "is below this")
    ap.add_argument("--out", default=None,
                    help="write the JSON report here (default: stdout only)")
    args = ap.parse_args(argv)

    proc = None
    tmp = None
    if args.spawn:
        tmp = tempfile.mkdtemp(prefix="repro-load-")
        proc, host, port = spawn_server(tmp)
    elif args.base_url:
        hostport = args.base_url.rstrip("/").rsplit("/", 1)[1]
        host, port_s = hostport.rsplit(":", 1)
        port = int(port_s)
    else:
        ap.error("give --base-url or --spawn")

    pool = build_spec_pool(args.distinct, args.refs, args.workload_seed)
    sequence = zipf_sequence(
        args.distinct, args.submissions, args.zipf_s, args.workload_seed
    )

    report: Dict[str, object] = {
        "workload": {
            "submissions_per_pass": args.submissions,
            "distinct_specs": args.distinct,
            "zipf_s": args.zipf_s,
            "refs_per_cell": args.refs,
            "passes": args.passes,
            "concurrency": args.concurrency,
            "workload_seed": args.workload_seed,
        },
        "passes": [],
    }
    cross_pass_digests: Dict[int, Tuple] = {}
    try:
        for pass_no in range(1, args.passes + 1):
            stats, wall = asyncio.run(run_pass(
                f"pass{pass_no}", host, port, pool, sequence,
                args.concurrency, args.poll_interval,
            ))
            summary = stats.summary(wall)
            report["passes"].append(summary)
            print(json.dumps(summary), flush=True)
            # bit-identity must also hold ACROSS passes (cached vs simulated)
            for idx, digest in stats.digests.items():
                prev = cross_pass_digests.setdefault(idx, digest)
                if prev != digest:
                    print(f"BIT-IDENTITY VIOLATION across passes: spec {idx}",
                          file=sys.stderr)
                    return 1
        report["bit_identical_across_passes"] = True
        _, stats_resp = asyncio.run(
            http_request(host, port, "GET", "/stats"))
        report["server_stats"] = stats_resp
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.out}")

    final = report["passes"][-1]
    if final["failed"]:
        print(f"FAIL: {final['failed']} submission(s) failed", file=sys.stderr)
        return 1
    if args.min_hit_rate is not None:
        rate = final["cache_hit_rate"]
        if rate < args.min_hit_rate:
            print(f"FAIL: final-pass cache-hit rate {rate:.2%} < "
                  f"required {args.min_hit_rate:.2%}", file=sys.stderr)
            return 1
        print(f"PASS: final-pass cache-hit rate {rate:.2%} >= "
              f"{args.min_hit_rate:.2%}, bit-identical across passes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
