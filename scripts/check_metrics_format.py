#!/usr/bin/env python
"""Validate a Prometheus text-format 0.0.4 scrape — the CI gate behind
``GET /metrics``.

Checks the exposition the service's :class:`repro.obs.registry.
WallClockRegistry` renders (and that any real Prometheus scraper would
have to parse):

* every non-comment line matches the sample grammar
  ``name{label="value",...} value`` with valid metric/label identifiers
  and properly escaped label values;
* every sampled family carries a ``# TYPE`` line *before* its first
  sample, and ``# HELP``/``# TYPE`` lines are well-formed and unique;
* no series (name + label set) is emitted twice;
* histograms are coherent: every ``_bucket`` has an ``le`` label, the
  ``+Inf`` bucket is present, cumulative bucket counts never decrease
  within a series, and ``+Inf`` equals the family's ``_count``.

Usage::

    python scripts/check_metrics_format.py load-metrics.txt

Exits 0 when the scrape is valid, 1 with the problem list otherwise.
``--min-samples N`` additionally fails scrapes carrying fewer than N
samples (guards against a server that exposed an empty registry).
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Dict, List, Tuple

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
VALUE_RE = re.compile(r"^(?:[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?"
                      r"|[+-]?Inf|NaN)$")


class ParseError(ValueError):
    pass


def parse_labels(blob: str) -> List[Tuple[str, str]]:
    """Parse ``a="x",b="y"`` with full escape handling; order-preserving."""
    pairs: List[Tuple[str, str]] = []
    i = 0
    while i < len(blob):
        match = re.match(r"([a-zA-Z_][a-zA-Z0-9_]*)=\"", blob[i:])
        if not match:
            raise ParseError(f"bad label syntax at ...{blob[i:]!r}")
        name = match.group(1)
        i += match.end()
        value = []
        while True:
            if i >= len(blob):
                raise ParseError("unterminated label value")
            ch = blob[i]
            if ch == "\\":
                if i + 1 >= len(blob):
                    raise ParseError("dangling escape in label value")
                esc = blob[i + 1]
                if esc == "n":
                    value.append("\n")
                elif esc in ("\\", '"'):
                    value.append(esc)
                else:
                    raise ParseError(f"invalid escape \\{esc} in label value")
                i += 2
            elif ch == '"':
                i += 1
                break
            elif ch == "\n":
                raise ParseError("raw newline in label value")
            else:
                value.append(ch)
                i += 1
        pairs.append((name, "".join(value)))
        if i < len(blob):
            if blob[i] != ",":
                raise ParseError(f"expected ',' between labels, got {blob[i]!r}")
            i += 1
    return pairs


def base_family(name: str) -> str:
    """The family a sample belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(text: str) -> Tuple[List[str], Dict[str, str], int]:
    """Returns (problems, family -> TYPE, sample count)."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    seen_series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int] = {}
    #: (family, non-le labels) -> list of (le, cumulative count)
    buckets: Dict[Tuple[str, tuple], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, tuple], float] = {}
    samples = 0

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: legal, ignored
            kind, name = parts[1], parts[2]
            if not METRIC_NAME_RE.match(name):
                problems.append(f"line {lineno}: bad metric name in # {kind}")
                continue
            table = types if kind == "TYPE" else helps
            if name in table:
                problems.append(f"line {lineno}: duplicate # {kind} {name}")
            if kind == "TYPE":
                value = parts[3].strip() if len(parts) > 3 else ""
                if value not in ("counter", "gauge", "histogram", "summary",
                                 "untyped"):
                    problems.append(
                        f"line {lineno}: unknown TYPE {value!r} for {name}")
                types[name] = value
            else:
                helps[name] = parts[3] if len(parts) > 3 else ""
            continue

        samples += 1
        if "{" in line:
            name, rest = line.split("{", 1)
            blob, brace, value_blob = rest.rpartition("}")
            if not brace:
                problems.append(f"line {lineno}: unbalanced braces")
                continue
            try:
                labels = parse_labels(blob)
            except ParseError as exc:
                problems.append(f"line {lineno}: {exc}")
                continue
        else:
            name, _, value_blob = line.partition(" ")
            labels = []
        if not METRIC_NAME_RE.match(name):
            problems.append(f"line {lineno}: bad metric name {name!r}")
            continue
        for label_name, _ in labels:
            if not LABEL_NAME_RE.match(label_name):
                problems.append(
                    f"line {lineno}: bad label name {label_name!r}")
        fields = value_blob.split()
        if not fields or len(fields) > 2 or not VALUE_RE.match(fields[0]):
            problems.append(f"line {lineno}: bad sample value {value_blob!r}")
            continue
        value = float(fields[0])

        family = base_family(name)
        if family not in types and name not in types:
            problems.append(
                f"line {lineno}: sample {name} before any # TYPE line")
        series = (name, tuple(sorted(labels)))
        if series in seen_series:
            problems.append(
                f"line {lineno}: duplicate series {name}"
                f"{dict(labels)} (first at line {seen_series[series]})")
        seen_series[series] = lineno

        if types.get(family) == "histogram":
            bare = tuple(sorted(
                (k, v) for k, v in labels if k != "le"
            ))
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    problems.append(
                        f"line {lineno}: histogram bucket without le label")
                    continue
                bound = float("inf") if le == "+Inf" else float(le)
                buckets.setdefault((family, bare), []).append((bound, value))
            elif name.endswith("_count"):
                counts[(family, bare)] = value

    for (family, bare), series in buckets.items():
        label_blob = dict(bare)
        bounds = [b for b, _ in series]
        if bounds != sorted(bounds):
            problems.append(
                f"{family}{label_blob}: buckets not in increasing le order")
        values = [v for _, v in series]
        if any(b > a for a, b in zip(values[1:], values)):
            problems.append(
                f"{family}{label_blob}: cumulative bucket counts decrease")
        if not bounds or bounds[-1] != float("inf"):
            problems.append(f"{family}{label_blob}: no +Inf bucket")
        elif (family, bare) in counts and counts[(family, bare)] != values[-1]:
            problems.append(
                f"{family}{label_blob}: +Inf bucket {values[-1]:g} != "
                f"_count {counts[(family, bare)]:g}")
    for key in counts:
        if key not in buckets:
            problems.append(f"{key[0]}{dict(key[1])}: _count without buckets")
    return problems, types, samples


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scrape", help="path to a saved GET /metrics body")
    parser.add_argument("--min-samples", type=int, default=1,
                        help="fail unless at least N samples are present "
                             "(default %(default)s)")
    args = parser.parse_args(argv)

    with open(args.scrape, "r", encoding="utf-8") as fh:
        text = fh.read()
    problems, types, samples = check(text)
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1
    if samples < args.min_samples:
        print(f"INVALID: only {samples} sample(s) "
              f"(--min-samples {args.min_samples})", file=sys.stderr)
        return 1
    by_type: Dict[str, int] = {}
    for kind in types.values():
        by_type[kind] = by_type.get(kind, 0) + 1
    shape = ", ".join(f"{n} {k}" for k, n in sorted(by_type.items()))
    print(f"{args.scrape}: valid Prometheus text format 0.0.4 "
          f"({len(types)} families: {shape}; {samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
