#!/usr/bin/env python3
"""Generate ``docs/CLI.md`` from the argparse tree; ``--check`` gates drift.

The reference is derived, never hand-written: every subcommand of
:func:`repro.cli.build_parser` contributes its help text, usage line,
and full option table, plus the environment variables the package reads
(collected from the modules that define them).  CI runs ``--check`` so
the committed file can never drift from the actual parser — change a
flag, regenerate, or the docs job fails.

Usage::

    python scripts/gen_cli_docs.py            # rewrite docs/CLI.md
    python scripts/gen_cli_docs.py --check    # exit 1 if CLI.md is stale
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

# argparse wraps help to the terminal width; pin it so the generated
# file is byte-identical regardless of where it is generated
os.environ["COLUMNS"] = "80"

from repro.cli import build_parser  # noqa: E402

OUT_PATH = REPO / "docs" / "CLI.md"

#: (variable, consumed by, meaning) — the package's environment surface.
#: Names are imported where a module exports the constant, so a rename
#: breaks this script rather than silently documenting a dead variable.
def _env_rows():
    from repro.obs.manifest import MANIFEST_ENV
    from repro.service.store import SERVICE_DIR_ENV

    return [
        ("REPRO_JOBS", "`repro sweep`, `repro report`",
         "default worker-process count for sweeps"),
        ("REPRO_ENGINE", "all simulation paths",
         "default execution backend: `interp` or `batch`"),
        ("REPRO_TRACE_CACHE", "`repro.trace.io`",
         "on-disk trace cache directory (shared across processes)"),
        (MANIFEST_ENV, "`repro.obs.manifest`",
         "directory where every sweep drops its run manifest"),
        (SERVICE_DIR_ENV, "`repro serve`",
         "service state directory: result store + job journals"),
        ("REPRO_STORE_MAX_BYTES", "`repro serve`",
         "result-store size budget; LRU-evicts above it (0 = unbounded)"),
        ("REPRO_MAX_QUEUED_JOBS", "`repro serve`",
         "admission control: queued-job bound before 503s (0 = off)"),
        ("REPRO_MAX_INFLIGHT_CELLS", "`repro serve`",
         "admission control: queued+running cell bound (0 = off)"),
        ("REPRO_JOB_TTL", "`repro serve`",
         "seconds before terminal jobs are garbage-collected"),
        ("REPRO_GC_INTERVAL", "`repro serve`",
         "seconds between terminal-job GC sweeps"),
        ("REPRO_DRAIN_TIMEOUT", "`repro serve`",
         "graceful-drain budget in seconds on SIGTERM/SIGINT"),
        ("REPRO_REQUEST_TIMEOUT", "`repro serve`",
         "per-request read/write timeout in seconds"),
        ("REPRO_MAX_RETRIES", "`repro.sim.parallel`",
         "per-cell retry budget for fault-tolerant sweeps"),
        ("REPRO_CELL_TIMEOUT", "`repro.sim.parallel`",
         "per-cell wall-clock budget in seconds"),
        ("REPRO_RETRY_BACKOFF", "`repro.sim.parallel`",
         "base backoff in seconds between cell retries"),
        ("REPRO_FAULTS", "`repro.sim.parallel`",
         "fault-injection spec for chaos testing (see docs/ROBUSTNESS.md)"),
        ("REPRO_PROFILE", "`repro.obs.profile`",
         "attach the stall profiler to every run"),
        ("REPRO_PROFILE_WINDOW", "`repro.obs.profile`",
         "references per profiler time-series window"),
        ("REPRO_BENCH_REFS", "`benchmarks/bench_core.py`",
         "reference count for the perf-gate benchmarks"),
        ("REPRO_GIT_SHA", "`repro.obs.manifest`",
         "overrides the git SHA recorded in manifests"),
    ]


def _options_block(parser: argparse.ArgumentParser) -> str:
    formatter = parser._get_formatter()
    for group in parser._action_groups:
        formatter.start_section(group.title)
        formatter.add_arguments(group._group_actions)
        formatter.end_section()
    return formatter.format_help().rstrip()


def generate() -> str:
    parser = build_parser()
    sub_actions = [
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    ]
    assert len(sub_actions) == 1, "expected exactly one subparser group"
    subcommands = sub_actions[0].choices

    lines = [
        "# CLI reference",
        "",
        "<!-- GENERATED FILE - DO NOT EDIT.",
        "     Regenerate with: python scripts/gen_cli_docs.py",
        "     CI fails if this file drifts from the argparse tree. -->",
        "",
        f"`{parser.prog}` — {parser.description}",
        "",
        "Every invocation is `repro <subcommand> [options]`.  Exit status "
        "is `0` on success,",
        "`2` on any expected error (bad arguments, unknown system, "
        "invalid spec), and",
        "`1` when a verification or gate command finds a failure.",
        "",
        "## Subcommands",
        "",
    ]
    for name, sub in subcommands.items():
        lines.append(f"- [`repro {name}`](#repro-{name})")
    lines.append("")

    for name, sub in subcommands.items():
        lines.append(f"## `repro {name}`")
        lines.append("")
        help_text = next(
            (a.help for a in sub_actions[0]._choices_actions
             if a.dest == name), "",
        )
        if help_text:
            lines.append(help_text[0].upper() + help_text[1:] + ".")
            lines.append("")
        lines.append("```")
        lines.append(_options_block(sub))
        lines.append("```")
        lines.append("")

    lines.extend([
        "## Environment variables",
        "",
        "| Variable | Consumed by | Meaning |",
        "|---|---|---|",
    ])
    for var, consumer, meaning in _env_rows():
        lines.append(f"| `{var}` | {consumer} | {meaning} |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--check", action="store_true",
                    help="compare against the committed docs/CLI.md; "
                         "exit 1 on drift instead of writing")
    args = ap.parse_args(argv)
    text = generate()
    if args.check:
        try:
            committed = OUT_PATH.read_text(encoding="utf-8")
        except OSError:
            print(f"MISSING: {OUT_PATH} — run scripts/gen_cli_docs.py",
                  file=sys.stderr)
            return 1
        if committed != text:
            print(f"STALE: {OUT_PATH} does not match the argparse tree — "
                  f"run scripts/gen_cli_docs.py and commit the result",
                  file=sys.stderr)
            return 1
        print(f"OK: {OUT_PATH} matches the argparse tree")
        return 0
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(text, encoding="utf-8")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
