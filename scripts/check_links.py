#!/usr/bin/env python
"""Check that every relative link in the repo's markdown files resolves.

Scans all tracked ``*.md`` files for inline links/images
(``[text](target)``) and verifies that relative targets exist on disk.
External links (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#section``) are not checked — no network, no false negatives.  Used
by the CI docs job; run locally with::

    python scripts/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: inline markdown link or image: [text](target) — target has no spaces
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_SCHEMES = ("http://", "https://", "mailto:")
#: directories that never hold docs
_PRUNE = {".git", "__pycache__", ".pytest_cache", "node_modules", ".eggs"}


def markdown_files() -> list:
    return [
        p
        for p in sorted(REPO.rglob("*.md"))
        if not (_PRUNE & set(p.relative_to(REPO).parts))
    ]


def check_file(path: Path) -> list:
    problems = []
    text = path.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
                continue
            # strip an in-page anchor off a file target
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: broken link -> {target}"
                )
    return problems


def main() -> int:
    files = markdown_files()
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown files: {len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
