#!/usr/bin/env python3
"""Run every experiment driver at full fidelity and dump the tables.

Writes results/experiments_output.txt, the raw material for EXPERIMENTS.md.
Usage: REPRO_BENCH_REFS=400000 python scripts/run_experiments.py
"""
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "results/experiments_output.txt"
    with open(out_path, "w") as f:
        for name, run in ALL_EXPERIMENTS.items():
            t0 = time.time()
            result = run()
            elapsed = time.time() - t0
            block = f"{result}\n[{name} regenerated in {elapsed:.1f}s]\n\n"
            f.write(block)
            f.flush()
            print(f"{name} done in {elapsed:.1f}s", flush=True)


if __name__ == "__main__":
    main()
