#!/usr/bin/env python
"""Chaos check: prove the sweep's recovery paths under injected faults.

Runs the same small systems x benchmarks sweep three times:

1. **fault-free** — the reference counters;
2. **under a seeded fault schedule** covering every kind the harness
   injects (transient cell errors, trace-cache I/O errors and
   corruption, worker kills, slow cells under a tight timeout), with a
   ``--resume`` run directory so every survived cell is journalled;
3. **resumed** against the same run directory — every cell must be
   restored from the journal, none re-simulated.

The check fails (non-zero exit) unless

* the faulted run's counters are bit-identical to the fault-free run's
  for every cell (recovery never changes results),
* the expected recovery actions actually fired (a chaos job that
  injects nothing proves nothing), and
* the resumed run restores all cells from the journal.

Used by the CI ``chaos`` job; run locally with::

    python scripts/chaos_check.py [--refs 6000] [--jobs 2] [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

#: every fault kind at a rate that guarantees several firings on a
#: 2x2 matrix, transient enough that the default retry budget recovers.
#: cell/slow are gated @2 so a cell also selected by kill (which fires
#: first and eats attempt 0) still exercises them on its retry.
FAULT_SPEC = "seed=7;cell=0.5@2;io=0.5;corrupt=0.5;kill=0.4@1;slow=0.4@2:5.0"
SYSTEMS = ["base", "vb"]
BENCHES = ["fft", "lu"]

#: at least one of each family must have fired, or the chaos run was a no-op
REQUIRED_EVENT_FAMILIES = {
    "retry": ("cell_retry", "cell_timeout"),
    "worker-loss": ("worker_lost", "cell_redispatch"),
    "trace-cache": ("trace_cache_skipped", "fault_injected", "trace_quarantined"),
    "recovered": ("cell_recovered",),
}


def run_sweep(refs, scale, jobs, run_dir=None, recovery=None):
    from repro.sim.runner import clear_trace_cache, sweep

    clear_trace_cache()
    return sweep(
        SYSTEMS,
        BENCHES,
        refs=refs,
        scale=scale,
        jobs=jobs,
        run_dir=run_dir,
        cell_timeout=2.0,
        recovery=recovery,
    )


def counters_map(results):
    return {
        f"{s}/{b}": r.counters.as_dict() for (s, b), r in results.items()
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--refs", type=int, default=6_000)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--out-dir", default="chaos-artifacts",
                        help="journal + manifest artifacts land here")
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    run_dir = out_dir / "run"

    # the trace cache must be private to the check: the corrupt/io faults
    # mangle entries, and we re-read them across phases on purpose
    cache_dir = tempfile.mkdtemp(prefix="chaos-trace-cache-")
    os.environ["REPRO_TRACE_CACHE"] = cache_dir
    os.environ["REPRO_RETRY_BACKOFF"] = "0"
    os.environ["REPRO_MANIFEST_DIR"] = str(out_dir)
    os.environ.pop("REPRO_FAULTS", None)

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.faults import FAULTS_ENV, FaultPlan
    from repro.sim.parallel import RecoveryLog
    from repro.obs.manifest import maybe_write_sweep_manifest

    failures = []

    # ---- phase 1: fault-free reference ---------------------------------
    print(f"[1/3] fault-free sweep ({args.refs} refs, jobs={args.jobs})")
    reference = run_sweep(args.refs, args.scale, args.jobs)

    # ---- phase 2: the same sweep under injected faults -----------------
    # empty the disk trace cache so the chaos sweep stores traces afresh —
    # that write path is where the io/corrupt faults live
    from repro.trace.io import clear_disk_trace_cache

    clear_disk_trace_cache()
    plan = FaultPlan.parse(FAULT_SPEC)
    os.environ[FAULTS_ENV] = plan.spec()
    print(f"[2/3] chaos sweep under {plan.spec()!r}")
    recovery = RecoveryLog()
    chaotic = run_sweep(
        args.refs, args.scale, args.jobs, run_dir=str(run_dir),
        recovery=recovery,
    )
    os.environ.pop(FAULTS_ENV, None)
    print(f"      recovery: {recovery.counts or '(none)'}")
    maybe_write_sweep_manifest(
        chaotic,
        command=f"chaos_check --refs {args.refs} --jobs {args.jobs}",
        refs=args.refs,
        seed=1,
        scale=args.scale,
        jobs=args.jobs,
        wall_s=0.0,
        directory=out_dir,
        name="chaos-sweep",
        recovery=recovery,
    )

    if list(chaotic) != list(reference):
        failures.append("chaos sweep returned different cells than reference")
    for key in reference:
        if key in chaotic and chaotic[key].counters != reference[key].counters:
            failures.append(f"counters diverged under faults: {key}")
    for family, kinds in REQUIRED_EVENT_FAMILIES.items():
        if not any(recovery.counts.get(kind, 0) for kind in kinds):
            failures.append(
                f"no {family} recovery fired (expected one of {', '.join(kinds)})"
            )

    # ---- phase 3: resume from the journal ------------------------------
    print("[3/3] resume from the chaos run's journal")
    resumed_recovery = RecoveryLog()
    resumed = run_sweep(
        args.refs, args.scale, args.jobs, run_dir=str(run_dir),
        recovery=resumed_recovery,
    )
    for key in reference:
        if key in resumed and resumed[key].counters != reference[key].counters:
            failures.append(f"counters diverged on resume: {key}")
    if not resumed_recovery.counts.get("cells_resumed"):
        failures.append("resume re-simulated cells instead of restoring them")

    (out_dir / "chaos-summary.json").write_text(
        json.dumps(
            {
                "fault_spec": plan.spec(),
                "refs": args.refs,
                "jobs": args.jobs,
                "recovery": recovery.summary(),
                "resume_recovery": resumed_recovery.summary(),
                "reference_counters": counters_map(reference),
                "failures": failures,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    if failures:
        for failure in failures:
            print(f"CHAOS FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"chaos ok: {len(reference)} cells bit-identical across fault-free, "
        f"faulted, and resumed runs; "
        f"{sum(recovery.counts.values())} recovery action(s) survived"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
