"""The differential oracle: an independent flat-memory reference simulator.

:class:`OracleSimulator` re-implements the paper's protocol from the
specification, *not* from :mod:`repro.sim.simulator`'s code: naive
per-block scans instead of tag maps, plain lists/dicts/sets instead of
hot-path aliases, an explicit per-block ownership table instead of the
packed presence bitmaps, and none of the optimised simulator's inlining.
Where the optimised simulator tracks only coherence *states*, the oracle
additionally carries a **sequential-consistency value model**: every
write bumps a global per-block version, every cached copy remembers the
version of the data it holds, and every supply point (L1 hit, bus
cache-to-cache transfer, NC/PC/memory service) asserts the supplying
copy holds the *latest* version.  A protocol bug that leaves stale data
reachable — the kind a pure state model cannot see — fails here.

:func:`diff_cell` runs the optimised simulator and the oracle over the
same generated trace and diffs every event counter and the complete
final machine state (caches, NC, PC, directory, placement, relocation
counters).  On a mismatch the cell is re-run in lockstep to localise the
*first* diverging reference, and an
:class:`~repro.errors.OracleDivergenceError` reports it.
:func:`diff_parallel_sweep` additionally asserts that a serial sweep and
a ``jobs=N`` parallel sweep of the same matrix are bit-identical.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..coherence.states import MESIR, NCState, PCBlockState
from ..errors import (
    ConfigurationError,
    OracleDivergenceError,
    ProtocolError,
    VerificationError,
)
from ..params import (
    BusProtocol,
    NCIndexing,
    NCKind,
    RelocationCounters,
    SystemConfig,
    ThresholdPolicy,
)
from ..stats import Counters
from ..trace.record import Trace

_S = int(MESIR.S)
_E = int(MESIR.E)
_M = int(MESIR.M)
_R = int(MESIR.R)
_NC_CLEAN = int(NCState.CLEAN)
_NC_DIRTY = int(NCState.DIRTY)
_PC_INVALID = int(PCBlockState.INVALID)
_PC_CLEAN = int(PCBlockState.CLEAN)
_PC_DIRTY = int(PCBlockState.DIRTY)


class _Line:
    """One cached copy: block, coherence state, and data version."""

    __slots__ = ("block", "state", "version")

    def __init__(self, block: int, state: int, version: int) -> None:
        self.block = block
        self.state = state
        self.version = version


class _Frame:
    """One page-cache frame with per-block states and data versions."""

    __slots__ = ("page", "states", "versions", "last_miss", "hits")

    def __init__(self, page: int, blocks_per_page: int, now: int) -> None:
        self.page = page
        self.states = [_PC_INVALID] * blocks_per_page
        self.versions = [0] * blocks_per_page
        self.last_miss = now
        self.hits = 0


class _Threshold:
    """Per-node relocation threshold (fixed or adaptive), re-implemented."""

    def __init__(
        self, adaptive: bool, initial: int, increment: int, break_even: int, window: int
    ) -> None:
        self.adaptive = adaptive
        self.value = initial
        self.increment = increment
        self.break_even = break_even
        self.window = max(1, window)
        self.indicator = 0
        self.reuses = 0

    def on_frame_reuse(self, frame_hits: int) -> bool:
        if not self.adaptive:
            return False
        self.indicator += frame_hits - self.break_even
        self.reuses += 1
        if self.reuses < self.window:
            return False
        thrashing = self.indicator < 0
        self.reuses = 0
        self.indicator = 0
        if thrashing:
            self.value += self.increment
            return True
        return False


class OracleSimulator:
    """Reference MESIR/NC/PC simulator with a value (version) model.

    Deliberately unoptimised; see the module docstring.  ``step`` raises
    :class:`VerificationError` the moment any copy supplies data that is
    not the block's latest written version, or any protocol-illegal
    situation arises (dirty copy hit by an invalidation, flush of a
    non-existent owner, write-back by a non-owner, ...).
    """

    def __init__(self, config: SystemConfig, dataset_bytes: int = 0) -> None:
        if config.protocol is not BusProtocol.MESIR:
            raise ConfigurationError(
                "the differential oracle models plain MESIR only; "
                f"got {config.protocol}"
            )
        self.config = config
        self.counters = Counters()
        self.now = 0

        self.block_bits = config.block_bits
        self.bpp_bits = config.page_bits - config.block_bits
        self.bpp_mask = (1 << self.bpp_bits) - 1
        self.blocks_per_page = config.blocks_per_page
        self.n_nodes = config.n_nodes
        self.ppn = config.procs_per_node
        self.n_procs = config.n_procs

        # L1s: per pid, a list of sets; each set a list of _Line, LRU order
        self.l1_assoc = config.cache.assoc
        self.l1_sets = config.cache.n_sets
        self.l1: List[List[List[_Line]]] = [
            [[] for _ in range(self.l1_sets)] for _ in range(self.n_procs)
        ]

        # network cache, one per node
        kind = config.nc.kind
        self.nc_kind = kind
        self.nc_exclusive = kind is NCKind.VICTIM
        self.nc_inclusion: Optional[str] = {
            NCKind.DIRTY_INCLUSION: "dirty",
            NCKind.DRAM_FULL_INCLUSION: "full",
        }.get(kind)
        self.nc_infinite = kind in (NCKind.INFINITE_SRAM, NCKind.INFINITE_DRAM)
        if kind is NCKind.NONE:
            self.nc_sets: Optional[List[List[List[_Line]]]] = None
            self.nc_inf: Optional[List[Dict[int, _Line]]] = None
            self.nc_shift = 0
            self.nc_n_sets = 0
            self.nc_assoc = 0
        elif self.nc_infinite:
            self.nc_sets = None
            self.nc_inf = [{} for _ in range(self.n_nodes)]
            self.nc_shift = 0
            self.nc_n_sets = 0
            self.nc_assoc = 0
        else:
            geometry = config.nc.geometry(config.block_size)
            self.nc_n_sets = geometry.n_sets
            self.nc_assoc = geometry.assoc
            self.nc_shift = (
                self.bpp_bits if config.nc.indexing is NCIndexing.PAGE else 0
            )
            self.nc_sets = [
                [[] for _ in range(self.nc_n_sets)] for _ in range(self.n_nodes)
            ]
            self.nc_inf = None

        # page cache, relocation counters, thresholds
        pc_cfg = config.pc
        self.decrement_on_inval = pc_cfg.decrement_on_invalidation
        if pc_cfg.enabled:
            frames = pc_cfg.frames_for_dataset(dataset_bytes, config.page_size)
            self.pc_capacity = frames
            self.pc_hit_max = pc_cfg.hit_counter_max
            self.pc: Optional[List[Dict[int, _Frame]]] = [
                {} for _ in range(self.n_nodes)
            ]
            adaptive = pc_cfg.threshold_policy is ThresholdPolicy.ADAPTIVE
            self.thresholds: Optional[List[_Threshold]] = [
                _Threshold(
                    adaptive,
                    pc_cfg.initial_threshold,
                    pc_cfg.threshold_increment,
                    pc_cfg.break_even,
                    pc_cfg.window_factor * frames,
                )
                for _ in range(self.n_nodes)
            ]
            if pc_cfg.counters is RelocationCounters.DIRECTORY:
                self.dir_counts: Optional[Dict[Tuple[int, int], int]] = {}
                self.nc_counts: Optional[List[List[int]]] = None
                self.nc_count_sharing = 1
            else:  # NC_SET (vxp)
                self.dir_counts = None
                self.nc_count_sharing = pc_cfg.nc_counter_sharing
                n_counters = (
                    self.nc_n_sets + self.nc_count_sharing - 1
                ) // self.nc_count_sharing
                self.nc_counts = [[0] * n_counters for _ in range(self.n_nodes)]
        else:
            self.pc = None
            self.thresholds = None
            self.dir_counts = None
            self.nc_counts = None
            self.pc_capacity = 0
            self.pc_hit_max = 0
            self.nc_count_sharing = 1

        # directory: block -> [sharer set, owner or None]
        self.directory: Dict[int, List[Any]] = {}
        # first-touch placement: page -> home node
        self.homes: Dict[int, int] = {}
        # value model: latest written version per block, memory's version
        self.latest: Dict[int, int] = {}
        self.memory: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # value model
    # ------------------------------------------------------------------

    def _latest(self, block: int) -> int:
        return self.latest.get(block, 0)

    def _bump(self, block: int) -> int:
        version = self.latest.get(block, 0) + 1
        self.latest[block] = version
        return version

    def _assert_fresh(self, block: int, version: int, where: str) -> None:
        latest = self._latest(block)
        if version != latest:
            raise VerificationError(
                f"stale data supplied for block {block:#x} {where}: "
                f"got version {version}, latest write is {latest}"
            )

    # ------------------------------------------------------------------
    # naive structure helpers
    # ------------------------------------------------------------------

    def _node_of(self, pid: int) -> int:
        return pid // self.ppn

    def _node_pids(self, node: int) -> range:
        return range(node * self.ppn, (node + 1) * self.ppn)

    def _l1_set(self, pid: int, block: int) -> List[_Line]:
        return self.l1[pid][block & (self.l1_sets - 1)]

    def _l1_find(self, pid: int, block: int) -> Optional[_Line]:
        for line in self._l1_set(pid, block):
            if line.block == block:
                return line
        return None

    def _l1_promote(self, pid: int, block: int, line: _Line) -> None:
        bucket = self._l1_set(pid, block)
        if bucket[-1] is not line:
            bucket.remove(line)
            bucket.append(line)

    def _l1_remove(self, pid: int, block: int) -> Optional[_Line]:
        bucket = self._l1_set(pid, block)
        for line in bucket:
            if line.block == block:
                bucket.remove(line)
                return line
        return None

    # ---- NC helpers (all flavours) ----------------------------------------

    def _nc_set_index(self, block: int) -> int:
        return (block >> self.nc_shift) & (self.nc_n_sets - 1)

    def _nc_find(self, node: int, block: int) -> Optional[_Line]:
        if self.nc_inf is not None:
            return self.nc_inf[node].get(block)
        if self.nc_sets is None:
            return None
        for line in self.nc_sets[node][self._nc_set_index(block)]:
            if line.block == block:
                return line
        return None

    def _nc_promote(self, node: int, block: int, line: _Line) -> None:
        if self.nc_sets is None:
            return
        bucket = self.nc_sets[node][self._nc_set_index(block)]
        if bucket[-1] is not line:
            bucket.remove(line)
            bucket.append(line)

    def _nc_remove(self, node: int, block: int) -> Optional[_Line]:
        if self.nc_inf is not None:
            return self.nc_inf[node].pop(block, None)
        if self.nc_sets is None:
            return None
        bucket = self.nc_sets[node][self._nc_set_index(block)]
        for line in bucket:
            if line.block == block:
                bucket.remove(line)
                return line
        return None

    def _nc_insert(
        self, node: int, block: int, state: int, version: int
    ) -> Optional[_Line]:
        """Insert as MRU; return the evicted LRU line, if any."""
        if self.nc_inf is not None:
            self.nc_inf[node][block] = _Line(block, state, version)
            return None
        assert self.nc_sets is not None
        bucket = self.nc_sets[node][self._nc_set_index(block)]
        evicted = None
        if len(bucket) >= self.nc_assoc:
            evicted = bucket.pop(0)
        bucket.append(_Line(block, state, version))
        return evicted

    # ---- PC helpers ---------------------------------------------------------

    def _pc_frame(self, node: int, page: int) -> Optional[_Frame]:
        if self.pc is None:
            return None
        return self.pc[node].get(page)

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def run(self, trace: Trace) -> Counters:
        if trace.placement:
            for page, home in trace.placement.items():
                self.homes.setdefault(page, home)
        block_bits = self.block_bits
        for pid, addr, is_write in zip(
            trace.pids.tolist(), trace.addrs.tolist(), trace.writes.tolist()
        ):
            self.step(pid, addr >> block_bits, bool(is_write))
        return self.counters

    def step(self, pid: int, block: int, is_write: bool) -> None:
        """Process one shared reference (note: takes a *block*, not an
        address — the oracle has no reason to re-derive it)."""
        c = self.counters
        self.now += 1
        if is_write:
            c.writes += 1
        else:
            c.reads += 1

        line = self._l1_find(pid, block)
        if line is not None:
            self._l1_promote(pid, block, line)
            if not is_write:
                c.l1_read_hits += 1
                self._assert_fresh(block, line.version, f"on L1 read hit (pid {pid})")
                return
            c.l1_write_hits += 1
            if line.state == _M:
                line.version = self._bump(block)
                return
            if line.state == _E:
                line.state = _M
                line.version = self._bump(block)
                return
            # S or R: upgrade transaction
            self._upgrade(pid, block, line)
            return

        self._miss(pid, block, is_write)

    # ------------------------------------------------------------------
    # write upgrades
    # ------------------------------------------------------------------

    def _upgrade(self, pid: int, block: int, line: _Line) -> None:
        c = self.counters
        node = self._node_of(pid)
        page = block >> self.bpp_bits
        home = self.homes.get(page)
        if home is None:
            raise VerificationError(
                f"upgrade of block {block:#x} whose page was never placed"
            )

        # every other copy inside the cluster dies
        for other in self._node_pids(node):
            if other != pid:
                self._l1_remove(other, block)

        if home != node:
            if self.nc_exclusive:
                self._nc_remove(node, block)  # a polluting clean copy dies
            elif self.nc_inclusion is not None:
                nc_line = self._nc_find(node, block)
                if nc_line is not None and nc_line.state == _NC_DIRTY:
                    nc_line.state = _NC_CLEAN  # stale-clean; ownership moves up
                if nc_line is None:
                    evicted = self._nc_insert(
                        node, block, _NC_CLEAN, self._latest(block)
                    )
                    if evicted is not None:
                        self._handle_nc_eviction(node, evicted)
            elif self.nc_infinite:
                self._nc_remove(node, block)

        frame = self._pc_frame(node, page)
        if frame is not None and home != node:
            frame.states[block & self.bpp_mask] = _PC_INVALID

        self._directory_upgrade(node, block, page)
        if home == node:
            c.local_upgrades += 1
        else:
            c.remote_upgrades += 1

        self._assert_fresh(block, line.version, f"on write upgrade (pid {pid})")
        line.state = _M
        line.version = self._bump(block)

    def _directory_upgrade(self, node: int, block: int, page: int) -> None:
        """Mirror of ``Directory.upgrade`` + the simulator's delivery loop."""
        c = self.counters
        entry = self.directory.get(block)
        if entry is None:
            entry = [ {node}, None ]
            self.directory[block] = entry
        sharers: Set[int] = entry[0]
        owner: Optional[int] = entry[1]
        if owner is not None and owner != node:
            raise VerificationError(
                f"upgrade of block {block:#x} by cluster {node} while "
                f"cluster {owner} owns it dirty"
            )
        others = sorted(sharers - {node})
        for cl in others:
            self._invalidate_cluster(cl, block, page)
        c.remote_invalidations += len(others)
        entry[0] = {node}
        entry[1] = node

    # ------------------------------------------------------------------
    # miss handling
    # ------------------------------------------------------------------

    def _miss(self, pid: int, block: int, is_write: bool) -> None:
        node = self._node_of(pid)
        page = block >> self.bpp_bits
        home = self.homes.get(page)
        if home is None:
            self.homes[page] = home = node  # first touch
        local = home == node

        # 1. cluster bus snoop: peer caches
        holders = [
            (other, line)
            for other in self._node_pids(node)
            if other != pid
            for line in [self._l1_find(other, block)]
            if line is not None
        ]
        if holders:
            self._supply_from_peers(pid, node, block, page, home, is_write, holders)
            return

        if not local:
            # 2. the network cache
            if self._try_nc(pid, node, block, page, is_write):
                return
            # 3. a relocated page's frame
            if self._try_pc(pid, node, block, page, is_write):
                return

        # 4. home memory
        if local:
            self._local_memory_access(pid, node, block, page, is_write)
        else:
            self._remote_access(pid, node, block, page, home, is_write)

    # ---- 1: peer caches ---------------------------------------------------

    def _supply_from_peers(
        self,
        pid: int,
        node: int,
        block: int,
        page: int,
        home: int,
        is_write: bool,
        holders: List[Tuple[int, _Line]],
    ) -> None:
        c = self.counters
        local = home == node
        for _, line in holders:
            self._assert_fresh(
                block, line.version, f"on bus c2c supply in cluster {node}"
            )

        if is_write:
            for other, _ in holders:
                self._l1_remove(other, block)
            if not local:
                if self.nc_exclusive:
                    self._nc_remove(node, block)
                elif self.nc_inclusion is not None:
                    nc_line = self._nc_find(node, block)
                    if nc_line is not None:
                        # service_write: LRU-promote, stale-clean the copy
                        self._nc_promote(node, block, nc_line)
                        nc_line.state = _NC_CLEAN
                    else:
                        evicted = self._nc_insert(
                            node, block, _NC_CLEAN, self._latest(block)
                        )
                        if evicted is not None:
                            self._handle_nc_eviction(node, evicted)
                elif self.nc_infinite:
                    nc_line = self._nc_find(node, block)
                    if nc_line is not None:
                        nc_line.state = _NC_CLEAN
            frame = self._pc_frame(node, page)
            if frame is not None and not local:
                frame.states[block & self.bpp_mask] = _PC_INVALID
            self._directory_upgrade(node, block, page)
            version = self._bump(block)
            self._fill(pid, node, block, page, _M, version)
            if local:
                c.local_write_misses += 1
            else:
                c.write_cluster_hits += 1
            return

        # read: cache-to-cache supply; a dirty supplier downgrades to S and
        # its write-back is disposed of within the cluster (plain MESIR)
        for other, line in holders:
            if line.state == _M:
                line.state = _S
                self._dispose_dirty_victim(node, block, page, line.version)
            elif line.state == _E:
                line.state = _S
        self._fill(pid, node, block, page, _S, self._latest(block))
        if local:
            c.local_read_misses += 1
        else:
            c.read_cluster_hits += 1

    def _dispose_dirty_victim(
        self, node: int, block: int, page: int, version: int
    ) -> None:
        """A dirty copy left an L1 (victimised or bus-downgraded): place
        its write-back.  Shared by the victim path and the downgrade path —
        the disposal rules are identical."""
        c = self.counters
        home = self.homes.get(page)
        if home == node:
            # the local memory write happens physically even when the
            # directory never recorded an owner (silent E->M at home)
            self.memory[block] = version
            entry = self.directory.get(block)
            if entry is not None and entry[1] == node:
                entry[1] = None
            return
        frame = self._pc_frame(node, page)
        if frame is not None:
            offset = block & self.bpp_mask
            frame.states[offset] = _PC_DIRTY
            frame.versions[offset] = version
            c.writebacks_absorbed += 1
            # the write-back rode the cluster bus: a (stale-clean) NC copy
            # of the block snoops the data and refreshes
            nc_line = self._nc_find(node, block)
            if nc_line is not None:
                nc_line.version = version
            return
        absorbed = False
        evicted: Optional[_Line] = None
        if self.nc_exclusive:
            nc_line = self._nc_find(node, block)
            if nc_line is not None:
                nc_line.state = _NC_DIRTY
                nc_line.version = version
            else:
                evicted = self._nc_insert(node, block, _NC_DIRTY, version)
            absorbed = True
        elif self.nc_inclusion is not None:
            nc_line = self._nc_find(node, block)
            if nc_line is not None:
                nc_line.state = _NC_DIRTY
                nc_line.version = version
                absorbed = True
        elif self.nc_infinite:
            nc_line = self._nc_find(node, block)
            if nc_line is None:
                self._nc_insert(node, block, _NC_DIRTY, version)
            else:
                nc_line.state = _NC_DIRTY
                nc_line.version = version
            absorbed = True
        if absorbed:
            c.writebacks_absorbed += 1
            self._record_nc_victimization(node, block)
            if evicted is not None:
                self._handle_nc_eviction(node, evicted)
            return
        c.writebacks_remote += 1
        self._directory_writeback(node, block, version)

    def _directory_writeback(self, node: int, block: int, version: int) -> None:
        entry = self.directory.get(block)
        if entry is None or entry[1] != node:
            raise VerificationError(
                f"write-back of block {block:#x} by cluster {node}, but the "
                f"oracle directory owner is {None if entry is None else entry[1]}"
            )
        entry[1] = None
        self.memory[block] = version

    # ---- 2: network cache ---------------------------------------------------

    def _try_nc(self, pid: int, node: int, block: int, page: int, is_write: bool) -> bool:
        c = self.counters
        if self.nc_kind is NCKind.NONE:
            return False

        if self.nc_exclusive:
            line = self._nc_remove(node, block)
            if line is None:
                return False
            self._assert_fresh(block, line.version, f"on victim-NC hit (node {node})")
            if is_write:
                if line.state == _NC_CLEAN:
                    self._directory_upgrade(node, block, page)
                frame = self._pc_frame(node, page)
                if frame is not None:
                    frame.states[block & self.bpp_mask] = _PC_INVALID
                version = self._bump(block)
                self._fill(pid, node, block, page, _M, version)
                c.write_nc_hits += 1
            else:
                fill = _M if line.state == _NC_DIRTY else _R
                self._fill(pid, node, block, page, fill, line.version)
                c.read_nc_hits += 1
            return True

        line = self._nc_find(node, block)
        if line is None:
            return False
        self._nc_promote(node, block, line)  # service_* use an LRU lookup
        self._assert_fresh(block, line.version, f"on NC hit (node {node})")
        if is_write:
            state = line.state
            line.state = _NC_CLEAN  # ownership moves up; the copy is stale
            if state == _NC_CLEAN:
                self._directory_upgrade(node, block, page)
            frame = self._pc_frame(node, page)
            if frame is not None:
                frame.states[block & self.bpp_mask] = _PC_INVALID
            version = self._bump(block)
            self._fill(pid, node, block, page, _M, version)
            c.write_nc_hits += 1
        else:
            self._fill(pid, node, block, page, _S, line.version)
            c.read_nc_hits += 1
        return True

    # ---- 3: page cache ---------------------------------------------------------

    def _try_pc(self, pid: int, node: int, block: int, page: int, is_write: bool) -> bool:
        frame = self._pc_frame(node, page)
        if frame is None:
            return False
        offset = block & self.bpp_mask
        state = frame.states[offset]
        if state == _PC_INVALID:
            return False
        c = self.counters
        frame.last_miss = self.now
        if frame.hits < self.pc_hit_max:
            frame.hits += 1
        self._assert_fresh(
            block, frame.versions[offset], f"on PC hit (node {node})"
        )
        if is_write:
            if state == _PC_CLEAN:
                self._directory_upgrade(node, block, page)
            frame.states[offset] = _PC_INVALID  # ownership moves to the L1
            version = self._bump(block)
            self._fill(pid, node, block, page, _M, version)
            c.write_pc_hits += 1
        else:
            self._fill(pid, node, block, page, _S, frame.versions[offset])
            c.read_pc_hits += 1
        return True

    # ---- 4a: local home memory ---------------------------------------------------

    def _local_memory_access(
        self, pid: int, node: int, block: int, page: int, is_write: bool
    ) -> None:
        c = self.counters
        entry = self.directory.get(block)
        if entry is None:
            entry = [set(), None]
            self.directory[block] = entry
        sharers: Set[int] = entry[0]
        owner: Optional[int] = entry[1]
        if owner == node:
            raise VerificationError(
                f"cluster {node} re-requested local block {block:#x} it owns dirty"
            )
        if is_write:
            others = sorted(sharers - {node})
            entry[0] = {node}
            entry[1] = node
        else:
            others = []
            sharers.add(node)
            entry[1] = None

        data_version = self.memory.get(block, 0)
        if owner is not None:
            data_version = self._flush_owner(owner, block, page, is_write)
        if others:
            for cl in others:
                if cl != owner:
                    self._invalidate_cluster(cl, block, page)
            c.remote_invalidations += len(others) - (owner in others)

        self._assert_fresh(block, data_version, f"from local memory (node {node})")
        if is_write:
            version = self._bump(block)
            self._fill(pid, node, block, page, _M, version)
            c.local_write_misses += 1
        else:
            only_us = entry[0] == {node}
            self._fill(pid, node, block, page, _E if only_us else _S, data_version)
            c.local_read_misses += 1

    # ---- 4b: remote access ----------------------------------------------------------

    def _remote_access(
        self, pid: int, node: int, block: int, page: int, home: int, is_write: bool
    ) -> None:
        c = self.counters
        entry = self.directory.get(block)
        if entry is None:
            entry = [set(), None]
            self.directory[block] = entry
        sharers: Set[int] = entry[0]
        owner: Optional[int] = entry[1]
        if owner == node:
            raise VerificationError(
                f"cluster {node} re-requested block {block:#x} it owns dirty"
            )
        is_capacity = node in sharers
        if is_write:
            others = sorted(sharers - {node})
            entry[0] = {node}
            entry[1] = node
        else:
            others = []
            sharers.add(node)
            entry[1] = None

        data_version = self.memory.get(block, 0)
        if owner is not None:
            data_version = self._flush_owner(owner, block, page, is_write)
        else:
            # the home cluster may hold the block E (sole-sharer grant) or M
            # (silent E->M); the remote request rides the home bus and
            # snoops them — the M data is written to home memory (read) or
            # forwarded (write)
            for hpid in self._node_pids(home):
                hline = self._l1_find(hpid, block)
                if hline is not None and hline.state in (_M, _E):
                    data_version = hline.version
                    if is_write:
                        self._l1_remove(hpid, block)
                    else:
                        hline.state = _S
                        self.memory[block] = hline.version
                    break  # E/M are exclusive

        if others:
            for cl in others:
                if cl != owner:
                    self._invalidate_cluster(cl, block, page)
            c.remote_invalidations += len(others) - (
                1 if (owner is not None and owner in others) else 0
            )

        if is_capacity:
            c.remote_capacity += 1
        else:
            c.remote_necessary += 1
        if is_write:
            c.write_remote += 1
        else:
            c.read_remote += 1

        frames = self.pc[node] if self.pc is not None else None
        page_resident = frames is not None and page in frames

        # R-NUMA directory relocation counters
        if (
            is_capacity
            and self.dir_counts is not None
            and frames is not None
            and not page_resident
        ):
            assert self.thresholds is not None
            key = (page, node)
            count = self.dir_counts.get(key, 0) + 1
            self.dir_counts[key] = count
            if count > self.thresholds[node].value:
                self._relocate_page(node, page)
                self.dir_counts.pop(key, None)
                page_resident = True

        self._assert_fresh(block, data_version, f"on remote fetch (node {node})")
        if page_resident:
            assert frames is not None
            frame = frames[page]
            offset = block & self.bpp_mask
            if is_write:
                frame.last_miss = self.now
                version = self._bump(block)
                self._fill(pid, node, block, page, _M, version)
            else:
                frame.states[offset] = _PC_CLEAN
                frame.versions[offset] = data_version
                frame.last_miss = self.now
                c.pc_fills += 1
                self._fill(pid, node, block, page, _S, data_version)
        else:
            if self.nc_inclusion is not None or self.nc_infinite:
                # allocate-on-miss NCs take a frame for the fetched block
                if self._nc_find(node, block) is None:
                    evicted = self._nc_insert(node, block, _NC_CLEAN, data_version)
                    if evicted is not None:
                        self._handle_nc_eviction(node, evicted)
            if is_write:
                version = self._bump(block)
                self._fill(pid, node, block, page, _M, version)
            else:
                self._fill(pid, node, block, page, _R, data_version)

    # ------------------------------------------------------------------
    # fills and victim disposal
    # ------------------------------------------------------------------

    def _fill(
        self, pid: int, node: int, block: int, page: int, state: int, version: int
    ) -> None:
        bucket = self._l1_set(pid, block)
        evicted = None
        if len(bucket) >= self.l1_assoc:
            evicted = bucket.pop(0)
        bucket.append(_Line(block, state, version))
        if evicted is not None:
            self._handle_l1_victim(node, evicted)

    def _handle_l1_victim(self, node: int, line: _Line) -> None:
        state = line.state
        if state == _S or state == _E:
            return
        block = line.block
        page = block >> self.bpp_bits

        if state == _M:
            self._dispose_dirty_victim(node, block, page, line.version)
            return

        if state == _R:
            # replacement transaction for the last clean copy in the node
            for pid in self._node_pids(node):
                peer = self._l1_find(pid, block)
                if peer is not None and peer.state == _S:
                    peer.state = _R  # a peer inherits mastership
                    return
            frame = self._pc_frame(node, page)
            if frame is not None:
                offset = block & self.bpp_mask
                if frame.states[offset] == _PC_INVALID:
                    frame.states[offset] = _PC_CLEAN
                    frame.versions[offset] = line.version
                return
            accepted = False
            evicted: Optional[_Line] = None
            if self.nc_exclusive:
                nc_line = self._nc_find(node, block)
                if nc_line is not None:
                    nc_line.version = line.version  # same data; refresh
                else:
                    evicted = self._nc_insert(node, block, _NC_CLEAN, line.version)
                accepted = True
            elif self.nc_inclusion is not None:
                nc_line = self._nc_find(node, block)
                if nc_line is not None:
                    nc_line.version = line.version
                    accepted = True
            elif self.nc_infinite:
                if self._nc_find(node, block) is None:
                    self._nc_insert(node, block, _NC_CLEAN, line.version)
                accepted = True
            if accepted:
                self._record_nc_victimization(node, block)
            if evicted is not None:
                self._handle_nc_eviction(node, evicted)
            return

        raise VerificationError(f"victimised line in impossible state {state}")

    def _handle_nc_eviction(self, node: int, evicted: _Line) -> None:
        c = self.counters
        c.nc_evictions += 1
        block = evicted.block
        dirty = evicted.state == _NC_DIRTY
        version = evicted.version
        if self.nc_inclusion == "dirty":
            for pid in self._node_pids(node):
                line = self._l1_find(pid, block)
                if line is not None and line.state == _M:
                    self._l1_remove(pid, block)
                    c.nc_inclusion_evictions += 1
                    dirty = True
                    version = line.version
                    break  # at most one dirty copy within the cluster
        elif self.nc_inclusion == "full":
            for pid in self._node_pids(node):
                line = self._l1_remove(pid, block)
                if line is not None:
                    c.nc_inclusion_evictions += 1
                    if line.state == _M:
                        dirty = True
                        version = line.version

        page = block >> self.bpp_bits
        frame = self._pc_frame(node, page)
        if dirty:
            if frame is not None:
                offset = block & self.bpp_mask
                frame.states[offset] = _PC_DIRTY
                frame.versions[offset] = version
                c.writebacks_absorbed += 1
            else:
                c.writebacks_remote += 1
                self._directory_writeback(node, block, version)
        else:
            if frame is not None:
                offset = block & self.bpp_mask
                if frame.states[offset] == _PC_INVALID:
                    frame.states[offset] = _PC_CLEAN
                    frame.versions[offset] = version

    # ------------------------------------------------------------------
    # inter-cluster actions
    # ------------------------------------------------------------------

    def _invalidate_cluster(self, cl: int, block: int, page: int) -> None:
        found = False
        for pid in self._node_pids(cl):
            line = self._l1_remove(pid, block)
            if line is not None:
                found = True
                if line.state == _M:
                    raise VerificationError(
                        f"invalidation found a dirty copy of {block:#x} in "
                        f"cluster {cl}"
                    )
        nc_line = self._nc_remove(cl, block)
        if nc_line is not None:
            found = True
            if nc_line.state == _NC_DIRTY:
                raise VerificationError(
                    f"invalidation found a dirty NC copy of {block:#x} in "
                    f"cluster {cl}"
                )
        frame = self._pc_frame(cl, page)
        if frame is not None:
            offset = block & self.bpp_mask
            if frame.states[offset] != _PC_INVALID:
                found = True
                if frame.states[offset] == _PC_DIRTY:
                    raise VerificationError(
                        f"invalidation found a dirty PC copy of {block:#x} in "
                        f"cluster {cl}"
                    )
            frame.states[offset] = _PC_INVALID
        if not found and self.decrement_on_inval:
            if self.dir_counts is not None:
                key = (page, cl)
                count = self.dir_counts.get(key, 0)
                if count > 1:
                    self.dir_counts[key] = count - 1
                elif count == 1:
                    del self.dir_counts[key]
            elif self.nc_counts is not None and self.nc_exclusive:
                i = self._nc_set_index(block) // self.nc_count_sharing
                if self.nc_counts[cl][i] > 0:
                    self.nc_counts[cl][i] -= 1

    def _flush_owner(self, cl: int, block: int, page: int, for_write: bool) -> int:
        """The recorded owner surrenders its dirty copy; returns the data
        version it supplied (always the latest write, or the oracle fails)."""
        c = self.counters
        offset = block & self.bpp_mask
        found = False
        version = 0
        for pid in self._node_pids(cl):
            line = self._l1_find(pid, block)
            if line is not None and line.state == _M:
                version = line.version
                if for_write:
                    self._l1_remove(pid, block)
                else:
                    line.state = _S
                    # the sharing write-back rides the cluster bus: a stale
                    # NC copy below the L1 snoops it and cleans/refreshes
                    nc_line = self._nc_find(cl, block)
                    if nc_line is not None:
                        if nc_line.state == _NC_DIRTY:
                            nc_line.state = _NC_CLEAN
                        nc_line.version = version
                found = True
                break
        if not found:
            nc_line = self._nc_find(cl, block)
            if nc_line is not None and nc_line.state == _NC_DIRTY:
                version = nc_line.version
                if for_write:
                    self._nc_remove(cl, block)
                else:
                    nc_line.state = _NC_CLEAN
                found = True
        if not found:
            frame = self._pc_frame(cl, page)
            if frame is not None and frame.states[offset] == _PC_DIRTY:
                version = frame.versions[offset]
                if for_write:
                    frame.states[offset] = _PC_INVALID
                else:
                    frame.states[offset] = _PC_CLEAN
                found = True
        if not found:
            raise VerificationError(
                f"directory says cluster {cl} owns block {block:#x} dirty, "
                "but the oracle finds no dirty copy there"
            )
        self._assert_fresh(block, version, f"on owner flush (cluster {cl})")
        if for_write:
            # every remaining (clean) copy in the owner cluster dies too
            for pid in self._node_pids(cl):
                self._l1_remove(pid, block)
            self._nc_remove(cl, block)
            frame = self._pc_frame(cl, page)
            if frame is not None:
                frame.states[offset] = _PC_INVALID
        else:
            c.writebacks_remote += 1
            self.memory[block] = version
        return version

    # ------------------------------------------------------------------
    # page relocation
    # ------------------------------------------------------------------

    def _record_nc_victimization(self, node: int, block: int) -> None:
        self.counters.nc_insertions += 1
        if self.nc_counts is None:
            return
        assert self.nc_sets is not None and self.thresholds is not None
        set_idx = self._nc_set_index(block)
        i = set_idx // self.nc_count_sharing
        counts = self.nc_counts[node]
        counts[i] += 1
        if counts[i] <= self.thresholds[node].value:
            return
        set_blocks = [line.block for line in self.nc_sets[node][set_idx]]
        frames = self.pc[node] if self.pc is not None else {}
        exclude = {
            b >> self.bpp_bits for b in set_blocks if (b >> self.bpp_bits) in frames
        }
        # predominant page: max count, ties broken toward first occurrence
        tally: Dict[int, int] = {}
        for b in set_blocks:
            p = b >> self.bpp_bits
            if p not in exclude:
                tally[p] = tally.get(p, 0) + 1
        counts[i] = 0
        if tally:
            page = max(tally.items(), key=lambda kv: kv[1])[0]
            self._relocate_page(node, page)

    def _relocate_page(self, node: int, page: int) -> None:
        c = self.counters
        assert self.pc is not None and self.thresholds is not None
        frames = self.pc[node]
        if page in frames:
            raise VerificationError(f"page {page:#x} relocated twice (node {node})")
        c.pc_relocations += 1
        evicted: Optional[_Frame] = None
        if len(frames) >= self.pc_capacity:
            evicted = min(frames.values(), key=lambda f: f.last_miss)
            del frames[evicted.page]
        frames[page] = _Frame(page, self.blocks_per_page, self.now)
        if evicted is not None:
            c.pc_evictions += 1
            self._flush_page_from_cluster(node, evicted)
            if self.thresholds[node].on_frame_reuse(evicted.hits):
                for frame in frames.values():
                    frame.hits = 0

    def _flush_page_from_cluster(self, node: int, frame: _Frame) -> None:
        c = self.counters
        base = frame.page << self.bpp_bits
        for offset in range(self.blocks_per_page):
            block = base + offset
            dirty = frame.states[offset] == _PC_DIRTY
            version = frame.versions[offset]
            for pid in self._node_pids(node):
                line = self._l1_remove(pid, block)
                if line is not None and line.state == _M:
                    dirty = True
                    version = line.version
            nc_line = self._nc_remove(node, block)
            if nc_line is not None and nc_line.state == _NC_DIRTY:
                dirty = True
                version = nc_line.version
            if dirty:
                c.pc_flush_writebacks += 1
                self._directory_writeback(node, block, version)

    # ------------------------------------------------------------------
    # final-state snapshot (for diffing against the real machine)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Canonical final state, shape-compatible with
        :func:`machine_snapshot` on the optimised simulator's machine."""
        l1s = tuple(
            tuple(
                tuple((line.block, int(line.state)) for line in bucket)
                for bucket in self.l1[pid]
            )
            for pid in range(self.n_procs)
        )
        if self.nc_inf is not None:
            ncs: Tuple[Any, ...] = tuple(
                tuple(sorted((b, int(ln.state)) for b, ln in self.nc_inf[n].items()))
                for n in range(self.n_nodes)
            )
        elif self.nc_sets is not None:
            ncs = tuple(
                tuple(
                    tuple((line.block, int(line.state)) for line in bucket)
                    for bucket in self.nc_sets[n]
                )
                for n in range(self.n_nodes)
            )
        else:
            ncs = tuple(() for _ in range(self.n_nodes))
        if self.pc is not None:
            pcs: Optional[Tuple[Any, ...]] = tuple(
                tuple(
                    sorted(
                        (f.page, tuple(f.states), f.last_miss, f.hits)
                        for f in self.pc[n].values()
                    )
                )
                for n in range(self.n_nodes)
            )
        else:
            pcs = None
        directory = {
            block: (sum(1 << cl for cl in entry[0]), -1 if entry[1] is None else entry[1])
            for block, entry in self.directory.items()
        }
        dir_counts = (
            {(page << 6) | cl: n for (page, cl), n in self.dir_counts.items()}
            if self.dir_counts is not None
            else None
        )
        return {
            "l1s": l1s,
            "ncs": ncs,
            "pcs": pcs,
            "directory": directory,
            "placement": dict(self.homes),
            "dir_counts": dir_counts,
            "nc_counts": (
                tuple(tuple(c) for c in self.nc_counts)
                if self.nc_counts is not None
                else None
            ),
            "thresholds": (
                tuple(t.value for t in self.thresholds)
                if self.thresholds is not None
                else None
            ),
        }


def machine_snapshot(machine) -> Dict[str, Any]:
    """The optimised simulator's final state in the oracle's snapshot shape."""
    from ..rdc.infinite import InfiniteNC
    from ..rdc.none import NullNC

    l1s = tuple(
        tuple(
            tuple((line.block, int(line.state)) for line in lines)
            for lines in l1._sets
        )
        for node in machine.nodes
        for l1 in node.l1s
    )
    ncs = []
    for node in machine.nodes:
        nc = node.nc
        if isinstance(nc, NullNC):
            ncs.append(())
        elif isinstance(nc, InfiniteNC):
            ncs.append(tuple(sorted((b, int(s)) for b, s in nc._lines.items())))
        else:
            ncs.append(
                tuple(
                    tuple((line.block, int(line.state)) for line in lines)
                    for lines in nc._cache._sets
                )
            )
    if machine.nodes and machine.nodes[0].pc is not None:
        pcs: Optional[Tuple[Any, ...]] = tuple(
            tuple(
                sorted(
                    (f.page, tuple(f.states), f.last_miss, f.hits)
                    for f in node.pc._frames.values()
                )
            )
            for node in machine.nodes
        )
    else:
        pcs = None
    directory = {
        block: (entry[0], entry[1]) for block, entry in machine.directory._entries.items()
    }
    nc_counts = None
    if machine.nodes and machine.nodes[0].nc_counters is not None:
        nc_counts = tuple(tuple(node.nc_counters._counts) for node in machine.nodes)
    thresholds = None
    if machine.nodes and machine.nodes[0].threshold is not None:
        thresholds = tuple(node.threshold.value for node in machine.nodes)
    return {
        "l1s": l1s,
        "ncs": tuple(ncs),
        "pcs": pcs,
        "directory": directory,
        "placement": dict(machine.placement._home),
        "dir_counts": (
            dict(machine.dir_counters._counts)
            if machine.dir_counters is not None
            else None
        ),
        "nc_counts": nc_counts,
        "thresholds": thresholds,
    }


# ---------------------------------------------------------------------------
# diff engines
# ---------------------------------------------------------------------------


def _counter_diff(a: Dict[str, int], b: Dict[str, int]) -> List[str]:
    return [
        f"{key}: simulator={a[key]} oracle={b[key]}" for key in a if a[key] != b[key]
    ]


def _localise_divergence(
    config: SystemConfig, trace: Trace
) -> Tuple[int, List[str]]:
    """Re-run simulator and oracle in lockstep; find the first diverging
    reference (by counter comparison after every step)."""
    from ..sim.simulator import Simulator
    from ..system.builder import build_machine

    sim = Simulator(build_machine(config, dataset_bytes=trace.dataset_bytes))
    oracle = OracleSimulator(config, dataset_bytes=trace.dataset_bytes)
    if trace.placement:
        for page, home in trace.placement.items():
            sim.machine.placement.touch(page, home)
            oracle.homes.setdefault(page, home)
    block_bits = config.block_bits
    for i, (pid, addr, is_write) in enumerate(
        zip(trace.pids.tolist(), trace.addrs.tolist(), trace.writes.tolist())
    ):
        sim.step(pid, addr, bool(is_write))
        oracle.step(pid, addr >> block_bits, bool(is_write))
        diffs = _counter_diff(sim.counters.as_dict(), oracle.counters.as_dict())
        if diffs:
            return i, diffs
    return len(trace), _counter_diff(
        sim.counters.as_dict(), oracle.counters.as_dict()
    )


def diff_cell(
    system: str,
    benchmark: str,
    refs: int = 10_000,
    seed: int = 1,
    scale: float = 0.03125,
    config: Optional[SystemConfig] = None,
) -> Dict[str, int]:
    """Diff all three engines — interpreter, batch, oracle — on one cell.

    Runs each over the identical generated trace, compares all event
    counters and the complete final machine state; raises
    :class:`OracleDivergenceError` (localised to the first diverging
    reference) on any mismatch.  The batch engine
    (:class:`repro.sim.batch.BatchSimulator`) is held to the same
    standard as the interpreter: counter-for-counter and final-machine-
    state equality.  Returns the agreed counters on success.
    """
    from ..sim.runner import get_trace
    from ..system.builder import system_config

    if config is None:
        config = system_config(system)
    trace = get_trace(benchmark, refs=refs, seed=seed, scale=scale)

    from ..sim.simulator import Simulator
    from ..system.builder import build_machine

    machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
    sim = Simulator(machine)
    try:
        sim.run(trace)
        sim.counters.check()
    except (ProtocolError, AssertionError) as exc:
        raise OracleDivergenceError(
            system, benchmark, f"optimised simulator failed: {exc}"
        ) from exc

    oracle = OracleSimulator(config, dataset_bytes=trace.dataset_bytes)
    try:
        oracle.run(trace)
    except VerificationError as exc:
        raise OracleDivergenceError(
            system, benchmark, f"oracle value-model failure: {exc}"
        ) from exc
    oracle.counters.check()

    diffs = _counter_diff(sim.counters.as_dict(), oracle.counters.as_dict())
    if diffs:
        first, local_diffs = _localise_divergence(config, trace)
        raise OracleDivergenceError(
            system,
            benchmark,
            "counter mismatch: " + "; ".join(local_diffs or diffs),
            first_divergence=first,
        )

    sim_state = machine_snapshot(machine)
    oracle_state = oracle.snapshot()
    for key in sim_state:
        if sim_state[key] != oracle_state[key]:
            raise OracleDivergenceError(
                system,
                benchmark,
                f"final machine state differs in {key!r}: "
                f"simulator={sim_state[key]!r} oracle={oracle_state[key]!r}",
            )

    # third engine: the vectorised batch backend over a fresh machine
    from ..sim.batch import BatchSimulator

    batch_machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
    batch = BatchSimulator(batch_machine)
    try:
        batch.run(trace)
        batch.counters.check()
    except (ProtocolError, AssertionError) as exc:
        raise OracleDivergenceError(
            system, benchmark, f"batch engine failed: {exc}"
        ) from exc
    a = batch.counters.as_dict()
    b = sim.counters.as_dict()
    diffs = [f"{k}: batch={a[k]} interp={b[k]}" for k in a if a[k] != b[k]]
    if diffs:
        raise OracleDivergenceError(
            system,
            benchmark,
            "batch engine counter mismatch vs interpreter: " + "; ".join(diffs),
        )
    batch_state = machine_snapshot(batch_machine)
    for key in sim_state:
        if batch_state[key] != sim_state[key]:
            raise OracleDivergenceError(
                system,
                benchmark,
                f"batch engine final machine state differs in {key!r}: "
                f"batch={batch_state[key]!r} interp={sim_state[key]!r}",
            )
    return sim.counters.as_dict()


def diff_parallel_sweep(
    systems: Iterable[str],
    benchmarks: Iterable[str],
    refs: int = 10_000,
    seed: int = 1,
    scale: float = 0.03125,
    jobs: int = 2,
) -> int:
    """Assert a serial sweep and a ``jobs=N`` parallel sweep are
    bit-identical; returns the number of compared cells.

    Both sweeps run with the stall profiler enabled (via the same
    ``$REPRO_PROFILE`` inheritance a ``--profile`` sweep uses), so the
    comparison covers counters **and** the full metrics snapshot —
    profile counters, stall histograms, and windowed series included.
    Each cell's attributed stall is additionally checked for the Eq. 1
    conservation invariant: the per-component sum must equal
    ``remote_read_stall(counters, config)`` exactly.
    """
    import os

    from ..obs.profile import PROFILE_ENV, attributed_stall
    from ..sim.latency import remote_read_stall
    from ..sim.runner import sweep

    systems = list(systems)
    benchmarks = list(benchmarks)
    saved = os.environ.get(PROFILE_ENV)
    os.environ[PROFILE_ENV] = "1"
    try:
        serial = sweep(systems, benchmarks, refs=refs, seed=seed, scale=scale, jobs=1)
        parallel = sweep(
            systems, benchmarks, refs=refs, seed=seed, scale=scale, jobs=jobs
        )
    finally:
        if saved is None:
            os.environ.pop(PROFILE_ENV, None)
        else:
            os.environ[PROFILE_ENV] = saved
    if set(serial) != set(parallel):
        raise OracleDivergenceError(
            ",".join(systems),
            ",".join(benchmarks),
            f"parallel sweep returned different cells: "
            f"{sorted(set(serial) ^ set(parallel))}",
        )
    for key in serial:
        a = serial[key].counters.as_dict()
        b = parallel[key].counters.as_dict()
        diffs = [f"{k}: serial={a[k]} parallel={b[k]}" for k in a if a[k] != b[k]]
        if diffs:
            raise OracleDivergenceError(
                key[0], key[1], "serial vs parallel mismatch: " + "; ".join(diffs)
            )
        if serial[key].metrics != parallel[key].metrics:
            raise OracleDivergenceError(
                key[0],
                key[1],
                "serial vs parallel metrics snapshots differ "
                "(profile counters/histograms/series included)",
            )
        result = serial[key]
        if result.metrics is not None:
            attributed = attributed_stall(result.metrics, key[0], key[1])
            expected = int(remote_read_stall(result.counters, result.config))
            if attributed != expected:
                raise OracleDivergenceError(
                    key[0],
                    key[1],
                    f"stall attribution broke Eq. 1 conservation: "
                    f"attributed {attributed} != remote_read_stall {expected}",
                )
    return len(serial)
