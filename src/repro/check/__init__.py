"""repro.check — the protocol verification suite.

Three engines, all reachable through ``repro check`` (see
``docs/VERIFICATION.md``):

* :mod:`repro.check.explore` — an exhaustive model checker.  For tiny
  configurations (2 clusters x 2 processors, 2-4 blocks) it BFS-enumerates
  every reachable machine state under every possible reference event and
  asserts the :mod:`repro.sim.validate` invariants plus per-transition
  legality on each one.  A violation is reported with the *minimal* event
  path that reaches it (BFS order guarantees minimality).

* :mod:`repro.check.oracle` — an independent differential oracle.  A
  deliberately simple flat-memory, sequential-consistency reference
  simulator (naive scans, sets and dicts, no inlining, its own per-block
  ownership tracking and a write-version value model) is run against the
  optimised :class:`~repro.sim.simulator.Simulator` over generated traces;
  any difference in counters or final machine state is a divergence.  The
  same module asserts serial and ``--jobs N`` parallel sweeps stay
  bit-identical.

* :mod:`repro.check.fuzz` — a seeded protocol fuzzer.  Generates
  adversarial interleavings (upgrade races, victimisation storms,
  relocation-threshold edges), runs them through the simulator, the
  machine validator, and the oracle diff, and shrinks any failing trace to
  a minimal replayable JSON artifact.

What is *proved* (exhaustively, for the tiny configurations) versus what
is *sampled* (fuzzing and trace diffs) is spelled out in
``docs/VERIFICATION.md``.
"""

from .explore import (
    DEFAULT_VARIANTS,
    ExplorationReport,
    explore_variant,
    tiny_check_config,
)
from .fuzz import FuzzCase, FuzzReport, replay_artifact, run_fuzz
from .oracle import OracleSimulator, diff_cell, diff_parallel_sweep

__all__ = [
    "DEFAULT_VARIANTS",
    "ExplorationReport",
    "explore_variant",
    "tiny_check_config",
    "OracleSimulator",
    "diff_cell",
    "diff_parallel_sweep",
    "FuzzCase",
    "FuzzReport",
    "replay_artifact",
    "run_fuzz",
]
