"""The protocol fuzzer: adversarial interleavings, shrunk on failure.

Exhaustive exploration (:mod:`repro.check.explore`) proves tiny
configurations correct but cannot reach the state depths that real sweeps
do; trace diffing (:mod:`repro.check.oracle`) covers realistic workloads
but only the interleavings the synthetic benchmarks happen to produce.
The fuzzer fills the gap: it *generates* reference streams built to
stress the protocol's corners —

* ``upgrade_race`` — processors in different clusters take turns writing
  the same one or two blocks, maximising upgrade/invalidation traffic and
  ownership hand-offs;
* ``victim_storm`` — each processor cycles through more blocks than its
  L1 holds, so every reference victimises (R-replacement and dirty
  write-back capture, NC eviction and inclusion enforcement);
* ``relocation_edge`` — remote pages are hammered just past the
  relocation threshold, then abandoned, exercising relocation, LRM
  eviction, page flush, and the decrement-on-invalidation refinement;
* ``random_walk`` — unbiased noise over the whole tiny address space.

Every generated case runs the optimised simulator and the differential
oracle in lockstep (counters compared after every reference, machine
invariants checked periodically, final states diffed structurally).  A
failing case is shrunk with a ddmin-style pass — chunk removal, then
single-event removal, preserving the failure signature (the exception
class) — and saved as a replayable JSON artifact.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..sim.simulator import Simulator
from ..sim.validate import check_machine
from ..system.builder import build_machine
from .explore import tiny_check_config
from .oracle import OracleSimulator, machine_snapshot

Event = Tuple[int, int, int]  # (pid, block, is_write)

#: systems fuzzed by default: one per NC organisation plus each
#: page-cache/relocation mechanism
DEFAULT_FUZZ_SYSTEMS = ("base", "nc", "ncd", "ncs", "vb", "vp", "p2", "vbp2", "vxp2")

STRATEGIES = ("random_walk", "upgrade_race", "victim_storm", "relocation_edge")

#: how often the full machine validator runs during a case (references)
_VALIDATE_EVERY = 16


@dataclass
class FuzzCase:
    """One generated (or replayed) adversarial reference stream."""

    system: str
    seed: int
    strategy: str
    n_blocks: int
    events: List[Event]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "seed": self.seed,
            "strategy": self.strategy,
            "n_blocks": self.n_blocks,
            "events": [list(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        return cls(
            system=data["system"],
            seed=int(data["seed"]),
            strategy=data["strategy"],
            n_blocks=int(data["n_blocks"]),
            events=[(int(p), int(b), int(w)) for p, b, w in data["events"]],
        )


@dataclass
class FuzzFailure:
    """A failing case, after shrinking."""

    case: FuzzCase
    error: str  #: exception class name (the shrink signature)
    message: str
    original_length: int
    artifact_path: Optional[str] = None


@dataclass
class FuzzReport:
    """What one :func:`run_fuzz` invocation did."""

    cases_run: int
    elapsed: float
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


# ---------------------------------------------------------------------------
# case generation
# ---------------------------------------------------------------------------


def _gen_random_walk(rng: Random, n_procs: int, n_blocks: int, n: int) -> List[Event]:
    return [
        (rng.randrange(n_procs), rng.randrange(n_blocks), int(rng.random() < 0.4))
        for _ in range(n)
    ]


def _gen_upgrade_race(rng: Random, n_procs: int, n_blocks: int, n: int) -> List[Event]:
    hot = rng.sample(range(n_blocks), min(2, n_blocks))
    events: List[Event] = []
    for _ in range(n):
        block = rng.choice(hot)
        pid = rng.randrange(n_procs)
        # mostly writes, with reads mixed in so S/R copies exist to upgrade
        events.append((pid, block, int(rng.random() < 0.7)))
    return events


def _gen_victim_storm(rng: Random, n_procs: int, n_blocks: int, n: int) -> List[Event]:
    # walk blocks cyclically per pid with random strides, so the 1-line L1s
    # victimise on almost every reference; occasional writes make the
    # victims dirty
    cursors = [rng.randrange(n_blocks) for _ in range(n_procs)]
    events: List[Event] = []
    for _ in range(n):
        pid = rng.randrange(n_procs)
        cursors[pid] = (cursors[pid] + 1 + rng.randrange(2)) % n_blocks
        events.append((pid, cursors[pid], int(rng.random() < 0.25)))
    return events


def _gen_relocation_edge(
    rng: Random, n_procs: int, n_blocks: int, n: int
) -> List[Event]:
    # bursts against one block: repeated re-fetches of the same remote
    # block count capacity misses toward the relocation threshold; burst
    # lengths straddle the threshold (tiny configs use threshold 1-2)
    events: List[Event] = []
    while len(events) < n:
        block = rng.randrange(n_blocks)
        pid = rng.randrange(n_procs)
        other = rng.randrange(n_procs)
        for _ in range(rng.randrange(1, 5)):
            events.append((pid, block, 0))
            # a second processor steals the line so the first misses again
            events.append((other, block, int(rng.random() < 0.5)))
        if rng.random() < 0.3:
            # a remote write forces invalidations (decrement refinement)
            events.append(((pid + n_procs // 2) % n_procs, block, 1))
    return events[:n]


_GENERATORS: Dict[str, Callable[[Random, int, int, int], List[Event]]] = {
    "random_walk": _gen_random_walk,
    "upgrade_race": _gen_upgrade_race,
    "victim_storm": _gen_victim_storm,
    "relocation_edge": _gen_relocation_edge,
}


def generate_case(
    system: str, seed: int, strategy: str, n_blocks: int = 4, length: int = 256
) -> FuzzCase:
    """Deterministically generate one fuzz case."""
    config, _ = tiny_check_config(system, n_blocks=n_blocks)
    # deterministic across processes (str.__hash__ is salted per process)
    salt = zlib.crc32(f"{system}/{strategy}".encode("ascii"))
    rng = Random((seed << 8) ^ salt)
    events = _GENERATORS[strategy](rng, config.n_procs, n_blocks, length)
    return FuzzCase(system, seed, strategy, n_blocks, events)


# ---------------------------------------------------------------------------
# case execution
# ---------------------------------------------------------------------------


def run_case(case: FuzzCase) -> Optional[Tuple[str, str]]:
    """Run one case through simulator + oracle in lockstep.

    Returns ``None`` on success, else ``(error_class_name, message)`` —
    the shrink signature.
    """
    config, dataset = tiny_check_config(case.system, n_blocks=case.n_blocks)
    try:
        sim = Simulator(build_machine(config, dataset_bytes=dataset))
        oracle = OracleSimulator(config, dataset_bytes=dataset)
        block_bits = config.block_bits
        for i, (pid, block, is_write) in enumerate(case.events):
            sim.step(pid, block << block_bits, bool(is_write))
            oracle.step(pid, block, bool(is_write))
            a = sim.counters.as_dict()
            b = oracle.counters.as_dict()
            if a != b:
                diffs = [f"{k}: sim={a[k]} oracle={b[k]}" for k in a if a[k] != b[k]]
                raise _Divergence(f"counters diverged at event {i}: {'; '.join(diffs)}")
            if i % _VALIDATE_EVERY == _VALIDATE_EVERY - 1:
                check_machine(sim.machine)
        check_machine(sim.machine)
        sim.counters.check()
        oracle.counters.check()
        sim_state = machine_snapshot(sim.machine)
        oracle_state = oracle.snapshot()
        for key in sim_state:
            if sim_state[key] != oracle_state[key]:
                raise _Divergence(
                    f"final state differs in {key!r}: "
                    f"sim={sim_state[key]!r} oracle={oracle_state[key]!r}"
                )
    except (ReproError, AssertionError, _Divergence) as exc:
        return type(exc).__name__, str(exc)
    return None


class _Divergence(Exception):
    """Simulator and oracle disagree (fuzzer-internal signature)."""


def case_trace(case: FuzzCase):
    """The case's event stream as a :class:`~repro.trace.record.Trace`.

    Whole-trace engines (the batch backend) consume traces, not step
    calls; block ids become byte addresses exactly as :func:`run_case`
    feeds them to ``sim.step`` (``block << block_bits``).
    """
    import numpy as np

    from ..trace.record import Trace

    config, dataset = tiny_check_config(case.system, n_blocks=case.n_blocks)
    pids = np.array([e[0] for e in case.events], dtype=np.int32)
    blocks = np.array([e[1] for e in case.events], dtype=np.int64)
    writes = np.array([e[2] for e in case.events], dtype=np.uint8)
    return Trace(
        f"fuzz-{case.strategy}",
        pids,
        blocks << config.block_bits,
        writes,
        dataset,
    )


def run_case_batch(case: FuzzCase) -> Optional[Tuple[str, str]]:
    """Replay one case through the batch engine against the interpreter.

    The batch engine has no per-step lockstep (it classifies whole
    chunks), so the comparison is whole-trace: event counters and the
    complete final machine state must match the interpreter exactly, and
    the machine must pass the structural validator.  Returns ``None`` on
    success, else ``(error_class_name, message)`` — the same shrink
    signature :func:`run_case` produces, so failing batch replays shrink
    with the existing ddmin pass.
    """
    from ..sim.batch import BatchSimulator

    config, dataset = tiny_check_config(case.system, n_blocks=case.n_blocks)
    trace = case_trace(case)
    try:
        sim = Simulator(build_machine(config, dataset_bytes=dataset))
        sim.run(trace)
        batch = BatchSimulator(build_machine(config, dataset_bytes=dataset))
        batch.run(trace)
        a = sim.counters.as_dict()
        b = batch.counters.as_dict()
        if a != b:
            diffs = [f"{k}: interp={a[k]} batch={b[k]}" for k in a if a[k] != b[k]]
            raise _Divergence("batch counters diverged: " + "; ".join(diffs))
        batch.counters.check()
        check_machine(batch.machine)
        sim_state = machine_snapshot(sim.machine)
        batch_state = machine_snapshot(batch.machine)
        for key in sim_state:
            if sim_state[key] != batch_state[key]:
                raise _Divergence(
                    f"batch final state differs in {key!r}: "
                    f"interp={sim_state[key]!r} batch={batch_state[key]!r}"
                )
    except (ReproError, AssertionError, _Divergence) as exc:
        return type(exc).__name__, str(exc)
    return None


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


def shrink_case(case: FuzzCase, signature: str) -> FuzzCase:
    """ddmin-style minimisation preserving the failure signature.

    First pass removes progressively smaller chunks; the final pass
    removes single events.  Deterministic: depends only on the case and
    the signature, never on timing or randomness.
    """

    def still_fails(events: Sequence[Event]) -> bool:
        if not events:
            return False
        trial = FuzzCase(
            case.system, case.seed, case.strategy, case.n_blocks, list(events)
        )
        result = run_case(trial)
        return result is not None and result[0] == signature

    events = list(case.events)
    chunk = max(1, len(events) // 2)
    while chunk >= 1:
        i = 0
        while i < len(events):
            trial = events[:i] + events[i + chunk:]
            if still_fails(trial):
                events = trial
            else:
                i += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return FuzzCase(case.system, case.seed, case.strategy, case.n_blocks, events)


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------


def save_artifact(
    failure: FuzzFailure, out_dir: str, case_index: int
) -> str:
    """Write a shrunk failing case as a replayable JSON artifact."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(
        out_dir, f"fuzz-{failure.case.seed}-{case_index}.json"
    )
    payload = dict(failure.case.as_dict())
    payload["error"] = failure.error
    payload["message"] = failure.message
    payload["original_length"] = failure.original_length
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    failure.artifact_path = path
    return path


def replay_artifact(path: str) -> Dict[str, Any]:
    """Re-execute a saved artifact; report whether it still fails.

    Returns ``{"reproduced": bool, "error": ..., "expected_error": ...}``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    case = FuzzCase.from_dict(data)
    result = run_case(case)
    return {
        "path": path,
        "reproduced": result is not None,
        "error": result[0] if result is not None else None,
        "message": result[1] if result is not None else None,
        "expected_error": data.get("error"),
        "events": len(case.events),
    }


# ---------------------------------------------------------------------------
# the fuzz loop
# ---------------------------------------------------------------------------


def run_fuzz(
    seed: int = 1,
    budget_s: float = 60.0,
    max_cases: Optional[int] = None,
    systems: Sequence[str] = DEFAULT_FUZZ_SYSTEMS,
    out_dir: str = "fuzz-artifacts",
    n_blocks: int = 4,
    case_length: int = 256,
    tracer=None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FuzzReport:
    """Fuzz until the time budget or the case limit is exhausted.

    Cases are generated deterministically from ``seed`` — case ``i`` uses
    sub-seed ``seed * 10_000 + i`` — so a fixed ``(seed, max_cases)`` pair
    always fuzzes the identical stream regardless of wall clock.  Each
    failure is shrunk and saved under ``out_dir``.
    """
    start = time.monotonic()
    report = FuzzReport(cases_run=0, elapsed=0.0)
    i = 0
    while True:
        if max_cases is not None and i >= max_cases:
            break
        if max_cases is None and time.monotonic() - start >= budget_s:
            break
        system = systems[i % len(systems)]
        strategy = STRATEGIES[(i // len(systems)) % len(STRATEGIES)]
        case = generate_case(
            system, seed * 10_000 + i, strategy, n_blocks=n_blocks, length=case_length
        )
        result = run_case(case)
        report.cases_run += 1
        if tracer is not None:
            tracer.emit("fuzz_case", i, detail=f"{system}/{strategy}")
        if result is not None:
            error, message = result
            if tracer is not None:
                tracer.emit("fuzz_failure", i, detail=error)
            shrunk = shrink_case(case, error)
            failure = FuzzFailure(
                case=shrunk,
                error=error,
                message=message,
                original_length=len(case.events),
            )
            path = save_artifact(failure, out_dir, i)
            if tracer is not None:
                tracer.emit("fuzz_shrunk", i, detail=path)
            report.failures.append(failure)
        if progress is not None:
            progress(i, report.cases_run)
        i += 1
    report.elapsed = time.monotonic() - start
    return report
