"""Exhaustive model checking of the protocol engine on tiny machines.

For a tiny configuration — 2 clusters x 2 processors, a 2-line L1 per
processor, a 4-frame NC, a 1-frame page cache, and 2-4 memory blocks —
the reachable state space of the whole machine is small enough to
enumerate *completely*.  :func:`explore_variant` does exactly that: a
breadth-first search over canonicalised machine states where the event
alphabet is every possible shared reference ``(pid, block, is_write)``.

After every transition the explorer asserts

* the machine-wide coherence invariants of :func:`repro.sim.validate.check_machine`
  (single writer, E/M exclusivity, owner substance, directory
  over-approximation, NC inclusion), and
* the counter-accounting invariants of :meth:`repro.stats.Counters.check`,
* plus transition legality itself: any :class:`~repro.errors.ProtocolError`
  raised mid-step is a violation.

Because the search is breadth-first and every state remembers the event
that first reached it, a violation is reported with the **minimal** event
path from the initial (empty) machine — a complete, replayable
counterexample (:class:`~repro.errors.ModelCheckViolation`).

States are canonicalised structurally: cache/NC contents in LRU order,
directory entries sorted, and the page cache's LRM clock abstracted to
dense ranks (two machines whose frames have the same *relative*
least-recently-missed order behave identically, so the absolute clock is
dropped — this is what makes the state space finite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ModelCheckViolation, ReproError, VerificationError
from ..params import NCConfig, SystemConfig, ThresholdPolicy
from ..rdc.adaptive import AdaptiveThreshold
from ..rdc.infinite import InfiniteNC
from ..rdc.none import NullNC
from ..rdc.pagecache import PageFrame
from ..sim.simulator import Simulator
from ..sim.validate import check_machine
from ..stats import Counters
from ..system.builder import build_machine, system_config
from ..system.machine import Machine

#: one event: (pid, block, is_write)
Event = Tuple[int, int, bool]

#: canonical machine state (opaque, hashable)
State = Tuple[Any, ...]

#: the NC organisations (and page-cache pairings) explored by default.
#: ``p2``/``vbp2``/``vxp2`` size the page cache at half the dataset, which
#: with the tiny geometry yields exactly one frame — the smallest machine
#: that still exercises relocation, LRM eviction, and cluster page flushes.
DEFAULT_VARIANTS: Tuple[str, ...] = (
    "base",
    "nc",
    "ncd",
    "ncs",
    "vb",
    "vp",
    "p2",
    "vbp2",
    "vxp2",
)

_TINY_PAGE_SIZE = 128  # 2 blocks per page: relocation stays interesting


def tiny_check_config(
    system: str,
    *,
    n_blocks: int = 2,
    initial_threshold: int = 1,
) -> Tuple[SystemConfig, int]:
    """The model checker's machine: returns ``(config, dataset_bytes)``.

    2 clusters x 2 processors; a **single-line** L1 per processor (so
    victimisation, R-state replacement transactions, and capacity misses
    are all reachable in a handful of events); a 2-line NC (so NC
    conflict evictions and inclusion enforcement are reachable too);
    pages of 2 blocks.  ``dataset_bytes`` covers exactly the pages
    spanned by ``n_blocks`` so fraction-sized page caches come out at
    one frame, and ``initial_threshold=1`` makes page relocation
    reachable within short event paths.
    """
    config = system_config(
        system,
        n_nodes=2,
        procs_per_node=2,
        cache_size=64,  # one 64 B line per L1
        cache_assoc=1,
        threshold_policy=ThresholdPolicy.FIXED,
        initial_threshold=initial_threshold,
    )
    nc = config.nc
    config = config.with_(
        page_size=_TINY_PAGE_SIZE,
        # shrink the NC to a single 2-line set (the builder's default
        # 4-way geometry can never conflict over 2-4 blocks)
        nc=NCConfig(kind=nc.kind, size=128, assoc=2, indexing=nc.indexing),
    )
    blocks_per_page = config.blocks_per_page
    n_pages = -(-n_blocks // blocks_per_page)
    dataset_bytes = n_pages * config.page_size
    return config, dataset_bytes


# ----------------------------------------------------------------------
# canonicalisation
# ----------------------------------------------------------------------


def _cache_snapshot(cache) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
    # normalise states to plain ints: the simulator stores a mix of ints
    # and IntEnum members, which compare equal but hash into != tuples
    return tuple(
        tuple((block, int(state)) for block, state in lines)
        for lines in cache.set_contents()
    )


def _nc_snapshot(nc) -> Tuple[Any, ...]:
    if isinstance(nc, NullNC):
        return ()
    if isinstance(nc, InfiniteNC):
        return tuple(sorted((b, int(s)) for b, s in nc._lines.items()))
    return _cache_snapshot(nc._cache)


def _pc_snapshot(pc, keep_hits: bool) -> Optional[Tuple[Any, ...]]:
    """Frames in least-recently-missed order, clocks abstracted to ranks.

    LRM eviction picks ``min(frames, key=last_miss)`` with ties broken by
    dict (insertion) order, so the behaviourally relevant information is
    the frames' *total order* under ``(last_miss, insertion position)`` —
    exactly the order this snapshot lists them in.

    The saturating per-frame hit counter only ever feeds
    ``ThresholdState.on_frame_reuse``; under a :class:`FixedThreshold`
    that ignores its argument, so ``keep_hits=False`` abstracts the
    counter away (it would otherwise multiply the state space by the
    saturation limit for nothing).
    """
    if pc is None:
        return None
    frames = list(pc._frames.values())
    order = sorted(range(len(frames)), key=lambda i: (frames[i].last_miss, i))
    return tuple(
        (
            frames[i].page,
            tuple(frames[i].states),
            frames[i].hits if keep_hits else 0,
        )
        for i in order
    )


def _threshold_snapshot(threshold) -> Optional[Tuple[Any, ...]]:
    if threshold is None:
        return None
    if isinstance(threshold, AdaptiveThreshold):
        return ("adaptive", threshold.value, threshold._indicator, threshold._reuses)
    return ("fixed", threshold.value)


def canonical_state(machine: Machine) -> State:
    """A hashable, behaviour-complete snapshot of the whole machine."""
    nodes = tuple(
        (
            tuple(_cache_snapshot(l1) for l1 in node.l1s),
            _nc_snapshot(node.nc),
            _pc_snapshot(node.pc, isinstance(node.threshold, AdaptiveThreshold)),
            _threshold_snapshot(node.threshold),
            tuple(node.nc_counters._counts) if node.nc_counters is not None else None,
        )
        for node in machine.nodes
    )
    return (
        tuple(sorted(machine.placement._home.items())),
        tuple(machine.directory.entries()),
        (
            tuple(sorted(machine.dir_counters._counts.items()))
            if machine.dir_counters is not None
            else None
        ),
        nodes,
    )


def load_state(sim: Simulator, state: State) -> None:
    """Rebuild the simulator's machine in-place from a canonical state.

    Mutates the existing structures (the simulator holds hot-path aliases
    into them, so they must not be replaced) and resets the counters.  The
    LRM clock restarts at the frame ranks; ``sim.now`` is set past every
    rank so new ``last_miss`` values sort after all restored ones.
    """
    machine = sim.machine
    placement_items, dir_entries, dir_counts, nodes_state = state

    homes = machine.placement._home
    homes.clear()
    for page, home in placement_items:
        homes[page] = home

    entries = machine.directory._entries
    entries.clear()
    for block, presence, owner in dir_entries:
        entries[block] = [presence, owner]

    if machine.dir_counters is not None:
        counts = machine.dir_counters._counts
        counts.clear()
        counts.update(dict(dir_counts))

    max_frames = 0
    for node, (l1s_snap, nc_snap, pc_snap, thr_snap, ncc_snap) in zip(
        machine.nodes, nodes_state
    ):
        for l1, snap in zip(node.l1s, l1s_snap):
            l1.load_contents(snap)
        nc = node.nc
        if isinstance(nc, InfiniteNC):
            nc._lines.clear()
            nc._lines.update({b: s for b, s in nc_snap})
        elif not isinstance(nc, NullNC):
            nc._cache.load_contents(nc_snap)
        if pc_snap is not None:
            frames = node.pc._frames
            frames.clear()
            for rank, (page, states, hits) in enumerate(pc_snap):
                frame = PageFrame(page, node.pc.blocks_per_page, rank)
                frame.states = list(states)
                frame.hits = hits
                frames[page] = frame
            max_frames = max(max_frames, len(pc_snap))
        if thr_snap is not None:
            threshold = node.threshold
            threshold.value = thr_snap[1]
            if isinstance(threshold, AdaptiveThreshold):
                threshold._indicator = thr_snap[2]
                threshold._reuses = thr_snap[3]
        if ncc_snap is not None:
            node.nc_counters._counts = list(ncc_snap)

    sim.counters = Counters()
    sim.now = max_frames


# ----------------------------------------------------------------------
# the search
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExplorationReport:
    """Result of one exhaustive exploration (one system variant)."""

    system: str
    n_states: int  #: distinct reachable machine states (incl. initial)
    n_transitions: int  #: (state, event) pairs executed and checked
    max_depth: int  #: longest minimal event path to any reachable state
    n_blocks: int
    n_events: int  #: alphabet size = pids x blocks x {read, write}


def _event_path(
    parents: Dict[State, Optional[Tuple[State, Event]]], state: State
) -> List[Event]:
    path: List[Event] = []
    cursor = parents[state]
    while cursor is not None:
        parent, event = cursor
        path.append(event)
        cursor = parents[parent]
    path.reverse()
    return path


def explore_variant(
    system: str,
    *,
    n_blocks: int = 2,
    max_states: int = 2_000_000,
    self_check: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ExplorationReport:
    """Exhaustively explore one system variant's tiny machine.

    Raises :class:`ModelCheckViolation` (with the minimal event path) if
    any transition is illegal or leaves the machine in a state violating
    the coherence invariants; :class:`VerificationError` if the reachable
    state space exceeds ``max_states`` (the tiny configs stay far below).

    ``self_check=True`` additionally verifies, for every newly discovered
    state, that ``canonical -> load -> canonical`` is the identity — a
    guard against canonicalisation bugs silently collapsing the search.
    ``progress``, if given, is called as ``progress(depth, n_states)``
    after each BFS level.
    """
    config, dataset_bytes = tiny_check_config(system, n_blocks=n_blocks)
    block_bits = config.block_bits
    events: List[Event] = [
        (pid, block, bool(w))
        for pid in range(config.n_procs)
        for block in range(n_blocks)
        for w in (False, True)
    ]

    sim = Simulator(build_machine(config, dataset_bytes=dataset_bytes))
    check_machine(sim.machine)
    initial = canonical_state(sim.machine)

    parents: Dict[State, Optional[Tuple[State, Event]]] = {initial: None}
    frontier: List[State] = [initial]
    n_transitions = 0
    depth = 0

    while frontier:
        next_frontier: List[State] = []
        for state in frontier:
            for event in events:
                load_state(sim, state)
                pid, block, is_write = event
                n_transitions += 1
                try:
                    sim.step(pid, block << block_bits, is_write)
                    sim.counters.check()
                    check_machine(sim.machine)
                except (ReproError, AssertionError) as exc:
                    path = _event_path(parents, state)
                    path.append(event)
                    raise ModelCheckViolation(
                        system, f"{type(exc).__name__}: {exc}", path
                    ) from exc
                child = canonical_state(sim.machine)
                if child not in parents:
                    if self_check:
                        load_state(sim, child)
                        recanon = canonical_state(sim.machine)
                        if recanon != child:
                            path = _event_path(parents, state)
                            path.append(event)
                            raise ModelCheckViolation(
                                system,
                                "canonicalisation is not stable under "
                                "load_state (state-space collapse hazard)",
                                path,
                            )
                    parents[child] = (state, event)
                    next_frontier.append(child)
            if len(parents) > max_states:
                raise VerificationError(
                    f"exploration of {system!r} exceeded {max_states} states "
                    f"at depth {depth} — not a tiny configuration"
                )
        if next_frontier:
            depth += 1
        frontier = next_frontier
        if progress is not None:
            progress(depth, len(parents))

    return ExplorationReport(
        system=system,
        n_states=len(parents),
        n_transitions=n_transitions,
        max_depth=depth,
        n_blocks=n_blocks,
        n_events=len(events),
    )
