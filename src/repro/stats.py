"""Event counters and derived performance metrics.

The paper's performance model (Sec. 4) monitors processor-cache misses to
remote data and their outcomes, then evaluates the remote read stall

    RS = N_hit^NC L_hit^NC + N_hit^PC L_hit^PC + N_miss L_miss + N_rel T_rel

plus the remote data traffic (read misses + write misses + write-backs).
:class:`Counters` is the raw event tally filled in by the simulator;
:class:`repro.sim.results.SimulationResult` combines it with a
:class:`repro.params.LatencyModel` to produce the figures' metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Dict


class MissClass(enum.Enum):
    """Classification of a remote miss at the home directory (Sec. 2).

    * ``NECESSARY`` — cold misses and coherence misses: the cluster never had
      the block, or it was invalidated since.
    * ``CAPACITY`` — the presence bits say the cluster should still have the
      block; it was lost to replacement somewhere in the cluster hierarchy.
      (Conflict misses are folded into this class at the directory, which is
      exactly why the paper wants the NC to filter them out.)
    """

    NECESSARY = "necessary"
    CAPACITY = "capacity"


class Outcome(enum.Enum):
    """Where a processor-cache miss was satisfied."""

    CLUSTER_CACHE = "cluster_cache"  #: peer L1 in the same node (bus c2c)
    NC_HIT = "nc_hit"
    PC_HIT = "pc_hit"
    REMOTE = "remote"  #: had to go to the home node
    LOCAL_MEMORY = "local_memory"  #: home is the local node (not monitored)


@dataclass
class Counters:
    """Flat tally of every event the model cares about.

    All counters are machine-wide.  ``reads``/``writes`` count *shared*
    references only — the paper expresses miss ratios as a percentage of all
    shared (non-stack) references.
    """

    # reference counts
    reads: int = 0
    writes: int = 0

    # L1 hits (shared references that hit in the issuing processor's cache)
    l1_read_hits: int = 0
    l1_write_hits: int = 0

    # misses to LOCAL data (home == local node); not monitored by Eq. 1 but
    # tracked so totals add up
    local_read_misses: int = 0
    local_write_misses: int = 0

    # misses to REMOTE data, by outcome (reads)
    read_cluster_hits: int = 0
    read_nc_hits: int = 0
    read_pc_hits: int = 0
    read_remote: int = 0

    # misses to REMOTE data, by outcome (writes)
    write_cluster_hits: int = 0
    write_nc_hits: int = 0
    write_pc_hits: int = 0
    write_remote: int = 0

    # remote accesses by directory classification
    remote_capacity: int = 0
    remote_necessary: int = 0

    # write upgrades (write hit on a shared copy) that needed a remote
    # invalidation round; no data transfer, so not part of data traffic
    remote_upgrades: int = 0
    local_upgrades: int = 0

    # write-backs of dirty blocks that crossed the network to the home node
    writebacks_remote: int = 0
    # dirty victims absorbed locally (by the victim NC or by a PC frame)
    writebacks_absorbed: int = 0

    # network cache internals
    nc_insertions: int = 0  #: victims accepted by the NC (clean + dirty absorbs)
    nc_evictions: int = 0  #: blocks replaced out of the NC
    nc_inclusion_evictions: int = 0  #: L1 copies forced out to keep inclusion

    # page cache internals
    pc_relocations: int = 0
    pc_evictions: int = 0
    pc_flush_writebacks: int = 0  #: dirty blocks written home on PC eviction
    pc_fills: int = 0  #: blocks filled into PC frames from remote fetches

    # invalidations delivered across the network (coherence actions)
    remote_invalidations: int = 0

    def copy(self) -> "Counters":
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # ---- totals ---------------------------------------------------------

    @property
    def refs(self) -> int:
        """All shared references."""
        return self.reads + self.writes

    @property
    def read_remote_misses(self) -> int:
        """Read misses to remote data (all outcomes past the L1)."""
        return (
            self.read_cluster_hits
            + self.read_nc_hits
            + self.read_pc_hits
            + self.read_remote
        )

    @property
    def write_remote_misses(self) -> int:
        """Write misses to remote data (all outcomes past the L1)."""
        return (
            self.write_cluster_hits
            + self.write_nc_hits
            + self.write_pc_hits
            + self.write_remote
        )

    @property
    def cluster_misses_read(self) -> int:
        """Read misses that left the cluster (the figures' miss ratio)."""
        return self.read_remote

    @property
    def cluster_misses_write(self) -> int:
        return self.write_remote

    @property
    def remote_accesses(self) -> int:
        return self.read_remote + self.write_remote

    @property
    def traffic_blocks(self) -> int:
        """Remote data traffic in blocks (Sec. 6.4).

        Read misses + write misses that fetched a block from the home node,
        plus every dirty block written back across the network.
        ``writebacks_remote`` (cache/NC victims) and ``pc_flush_writebacks``
        (dirty blocks flushed home when a page leaves the page cache) are
        disjoint tallies.
        """
        return (
            self.read_remote
            + self.write_remote
            + self.writebacks_remote
            + self.pc_flush_writebacks
        )

    def check(self) -> None:
        """Internal-consistency assertions (used by tests)."""
        assert self.reads >= self.l1_read_hits >= 0
        assert self.writes >= self.l1_write_hits >= 0
        assert (
            self.reads
            == self.l1_read_hits + self.local_read_misses + self.read_remote_misses
        ), "read accounting does not add up"
        assert (
            self.writes
            == self.l1_write_hits
            + self.local_write_misses
            + self.write_remote_misses
        ), "write accounting does not add up"
        assert self.remote_capacity + self.remote_necessary == self.remote_accesses


def merge(a: Counters, b: Counters) -> Counters:
    """Return the element-wise sum of two counter sets."""
    out = Counters()
    for f in fields(Counters):
        setattr(out, f.name, getattr(a, f.name) + getattr(b, f.name))
    return out
