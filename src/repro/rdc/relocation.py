"""Page-relocation counters: R-NUMA's directory scheme vs. the paper's.

Two mechanisms decide when a remote page deserves a frame in the node's
page cache:

* :class:`DirectoryRelocationCounters` — R-NUMA (Sec. 3.3): a counter per
  (page, cluster) pair kept at the home directory, incremented on every
  remote **capacity** miss.  Accurate, but needs one counter per cluster
  per page (the scalability complaint of Sec. 3.4) and a full-map
  directory.
* :class:`NCSetRelocationCounters` — the paper's proposal (Sec. 3.4): one
  counter per **set of the page-indexed network victim cache**, incremented
  on every victimisation entering the NC.  When a counter exceeds the
  threshold, the *predominant page* among the set's resident tags is
  relocated.  Scalable (counter count = NC sets, independent of machine or
  memory size) and directory-agnostic.

Both objects are per-node; thresholds come from the per-node
:class:`~repro.rdc.adaptive.ThresholdState`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence


class DirectoryRelocationCounters:
    """Per-(page, cluster) capacity-miss counters held at the directory.

    Although logically distributed across home nodes, a single map keyed by
    (page, cluster) is behaviourally identical and simpler.
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    @staticmethod
    def _key(page: int, cluster: int) -> int:
        return (page << 6) | cluster

    def record_capacity_miss(self, page: int, cluster: int, threshold: int) -> bool:
        """Count a capacity miss; True when the counter exceeds ``threshold``."""
        key = self._key(page, cluster)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        return count > threshold

    def decrement(self, page: int, cluster: int) -> None:
        """The Sec. 3.4 refinement: a late invalidation (no copy left in
        the cluster) means the next miss will be a coherence miss, so the
        earlier victimisation count is corrected downward."""
        key = self._key(page, cluster)
        count = self._counts.get(key, 0)
        if count > 1:
            self._counts[key] = count - 1
        elif count == 1:
            del self._counts[key]

    def reset(self, page: int, cluster: int) -> None:
        self._counts.pop(self._key(page, cluster), None)

    def count(self, page: int, cluster: int) -> int:
        return self._counts.get(self._key(page, cluster), 0)

    def n_counters(self) -> int:
        """Live counters — the memory-overhead figure of Sec. 3.4."""
        return len(self._counts)


class NCSetRelocationCounters:
    """Per-NC-set victimisation counters (one instance per node).

    ``sharing`` groups several consecutive sets behind one counter — the
    counter-sharing robustness question the paper raises ("something well
    worth investigating", Sec. 3.4).  With ``sharing=1`` (the paper's
    evaluated design) every set has its own counter.
    """

    def __init__(self, n_sets: int, page_shift_blocks: int, sharing: int = 1) -> None:
        """``page_shift_blocks`` = log2(blocks per page), to turn a block
        number into a page number."""
        if sharing < 1:
            raise ValueError("sharing must be >= 1")
        self.n_sets = n_sets
        self.sharing = sharing
        self._page_shift = page_shift_blocks
        self._counts: List[int] = [0] * ((n_sets + sharing - 1) // sharing)

    def _counter_of(self, set_index: int) -> int:
        return set_index // self.sharing

    def record_victimization(self, set_index: int, threshold: int) -> bool:
        """Count a victim entering NC set ``set_index``; True past threshold."""
        i = self._counter_of(set_index)
        self._counts[i] += 1
        return self._counts[i] > threshold

    def decrement(self, set_index: int) -> None:
        """Sec. 3.4 refinement: correct the count on a late invalidation."""
        i = self._counter_of(set_index)
        if self._counts[i] > 0:
            self._counts[i] -= 1

    def reset(self, set_index: int) -> None:
        self._counts[self._counter_of(set_index)] = 0

    def count(self, set_index: int) -> int:
        return self._counts[self._counter_of(set_index)]

    def n_counters(self) -> int:
        return len(self._counts)

    def shared_sets(self, set_index: int) -> range:
        """All NC sets that share ``set_index``'s counter."""
        start = self._counter_of(set_index) * self.sharing
        return range(start, min(start + self.sharing, self.n_sets))

    def predominant_page(
        self, set_blocks: Sequence[int], exclude: "set[int]"
    ) -> Optional[int]:
        """The page with the most tags in the set, skipping ``exclude``.

        The paper: *"When a counter exceeds a threshold, the predominant tag
        for the frames in the set indicates the page to relocate."*  Pages
        already relocated (or local) are excluded by the caller via
        ``exclude``; ties break toward the page appearing first.
        """
        pages = [b >> self._page_shift for b in set_blocks]
        candidates = [p for p in pages if p not in exclude]
        if not candidates:
            return None
        counts = Counter(candidates)
        best = max(counts.items(), key=lambda kv: kv[1])
        return best[0]
