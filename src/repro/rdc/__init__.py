"""Remote data caches: every NC organisation in the paper, plus the page cache.

The network-cache classes are deliberately *mechanical*: they store remote
blocks and apply their allocation/replacement policy, reporting evictions
back to the caller.  Everything that needs cluster context (forcing L1
copies out for inclusion, absorbing dirty victims into the page cache,
relocation decisions) lives in :mod:`repro.sim.simulator`.

Organisations
-------------
`NullNC`
    no network cache (the `base` system).
`VictimNC`
    the paper's proposal (Sec. 3): captures blocks victimised by the
    processor caches, no inclusion, block- or page-indexed; a hit swaps the
    block back into the L1 (two-level exclusive caching).
`DirtyInclusionNC`
    the `nc` configuration: allocates a frame on every remote fetch,
    inclusion relaxed for clean blocks but maintained for dirty ones.
`FullInclusionDramNC`
    the `NCD` configuration: large, slow, full inclusion (NC eviction kicks
    every L1 copy out of the cluster).
`InfiniteNC`
    unbounded NC used for the `NCS` ideal and for the infinite-DRAM
    normalisation reference of Figs. 9-11.
`PageCache`
    Simple-COMA style page cache with LRM replacement and block-grain
    states.
`relocation` / `adaptive`
    R-NUMA's directory counters vs. the paper's NC-set victimisation
    counters; fixed and adaptive relocation thresholds.
"""

from .base import InclusionPolicy, NCEviction, NetworkCache
from .none import NullNC
from .victim import VictimNC
from .sram import DirtyInclusionNC
from .dram import FullInclusionDramNC
from .infinite import InfiniteNC
from .pagecache import PageCache, PageFrame
from .relocation import DirectoryRelocationCounters, NCSetRelocationCounters
from .adaptive import AdaptiveThreshold, FixedThreshold, ThresholdState

__all__ = [
    "InclusionPolicy",
    "NCEviction",
    "NetworkCache",
    "NullNC",
    "VictimNC",
    "DirtyInclusionNC",
    "FullInclusionDramNC",
    "InfiniteNC",
    "PageCache",
    "PageFrame",
    "DirectoryRelocationCounters",
    "NCSetRelocationCounters",
    "AdaptiveThreshold",
    "FixedThreshold",
    "ThresholdState",
]
