"""The page cache: Simple-COMA style remote-page replication (Sec. 3.3).

A node's page cache holds replicas of *remote* pages aliased under local
addresses, in local main memory.  Allocation is at page grain (relocation
is a costly software operation, 225 bus cycles in the model); coherence is
kept at block grain via a per-block 2-bit state held in SRAM.

Replacement is **least recently missed** (LRM), per R-NUMA: the frame whose
page least recently serviced a processor-cache miss is the eviction
candidate — pages that stopped missing are either fully cached above or
dead, so they yield their frame first.

Each frame also carries a saturating **hit counter** used by the adaptive
relocation-threshold policy (Sec. 6.2) to detect thrashing: a frame evicted
with fewer hits than the break-even count (12) did not amortise its
relocation cost.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..coherence.states import PCBlockState
from ..errors import ConfigurationError

_INVALID = int(PCBlockState.INVALID)
_CLEAN = int(PCBlockState.CLEAN)
_DIRTY = int(PCBlockState.DIRTY)


class PageFrame:
    """One page-cache frame: per-block states plus LRM/hit bookkeeping."""

    __slots__ = ("page", "states", "last_miss", "hits")

    def __init__(self, page: int, blocks_per_page: int, now: int) -> None:
        self.page = page
        self.states: List[int] = [_INVALID] * blocks_per_page
        self.last_miss = now
        self.hits = 0

    def valid_blocks(self) -> int:
        """Number of valid (clean or dirty) blocks in the frame."""
        return sum(1 for s in self.states if s != _INVALID)

    def dirty_offsets(self) -> List[int]:
        return [i for i, s in enumerate(self.states) if s == _DIRTY]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageFrame(page={self.page:#x}, valid={self.valid_blocks()}, "
            f"hits={self.hits}, last_miss={self.last_miss})"
        )


class PageCache:
    """Fixed-capacity, fully-associative cache of remote pages with LRM."""

    def __init__(self, capacity_frames: int, blocks_per_page: int, hit_counter_max: int = 63) -> None:
        if capacity_frames <= 0:
            raise ConfigurationError("page cache capacity must be positive")
        if blocks_per_page <= 0:
            raise ConfigurationError("blocks_per_page must be positive")
        self.capacity = capacity_frames
        self.blocks_per_page = blocks_per_page
        self.hit_counter_max = hit_counter_max
        self._frames: Dict[int, PageFrame] = {}

    # ---- residency --------------------------------------------------------

    def __contains__(self, page: int) -> bool:
        return page in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def full(self) -> bool:
        return len(self._frames) >= self.capacity

    def frame(self, page: int) -> Optional[PageFrame]:
        return self._frames.get(page)

    def frames(self) -> Iterator[PageFrame]:
        return iter(self._frames.values())

    # ---- block-grain operations --------------------------------------------

    def block_state(self, page: int, offset: int) -> int:
        """State of block ``offset`` of ``page``; INVALID if page absent."""
        f = self._frames.get(page)
        if f is None:
            return _INVALID
        return f.states[offset]

    def record_hit(self, page: int, now: int) -> None:
        """A processor miss was satisfied by this frame (LRM + hit counter)."""
        f = self._frames[page]
        f.last_miss = now
        if f.hits < self.hit_counter_max:
            f.hits += 1

    def record_fill(self, page: int, offset: int, now: int, dirty: bool = False) -> None:
        """A remote fetch (or a clean bus victim) deposited a block."""
        f = self._frames[page]
        f.states[offset] = _DIRTY if dirty else _CLEAN
        f.last_miss = now

    def absorb_dirty(self, page: int, offset: int) -> None:
        """A dirty victim from the caches/NC lands in the local frame."""
        self._frames[page].states[offset] = _DIRTY

    def mark_clean(self, page: int, offset: int) -> None:
        self._frames[page].states[offset] = _CLEAN

    def invalidate_block(self, page: int, offset: int) -> bool:
        """Inter-cluster invalidation of one block; True if it was dirty."""
        f = self._frames.get(page)
        if f is None:
            return False
        was_dirty = f.states[offset] == _DIRTY
        f.states[offset] = _INVALID
        return was_dirty

    # ---- page-grain operations ------------------------------------------------

    def lrm_candidate(self) -> Optional[PageFrame]:
        """The frame LRM replacement would evict (None if not full)."""
        if not self.full:
            return None
        return min(self._frames.values(), key=lambda f: f.last_miss)

    def allocate(self, page: int, now: int) -> Optional[PageFrame]:
        """Relocate ``page`` in; return the evicted frame if one was needed.

        The caller is responsible for flushing the evicted page's blocks
        from the rest of the cluster and writing its dirty blocks home.
        """
        if page in self._frames:
            raise ConfigurationError(f"page {page:#x} is already in the page cache")
        evicted: Optional[PageFrame] = None
        if self.full:
            evicted = self.lrm_candidate()
            assert evicted is not None
            del self._frames[evicted.page]
        self._frames[page] = PageFrame(page, self.blocks_per_page, now)
        return evicted

    def drop(self, page: int) -> Optional[PageFrame]:
        """Remove a page without replacement (used by tests/tools)."""
        return self._frames.pop(page, None)

    def reset_hit_counters(self) -> None:
        """Adaptive-threshold adjustment resets every frame's hit counter."""
        for f in self._frames.values():
            f.hits = 0

    # ---- metrics -----------------------------------------------------------------

    def fragmentation(self) -> float:
        """Fraction of allocated frame space holding no valid block.

        High fragmentation is the paper's explanation for page caches
        losing to DRAM NCs on irregular applications (Sec. 6.3).
        """
        if not self._frames:
            return 0.0
        total = len(self._frames) * self.blocks_per_page
        valid = sum(f.valid_blocks() for f in self._frames.values())
        return 1.0 - valid / total

    def stats(self) -> Dict[str, float]:
        """Point-in-time summary for the observability layer."""
        valid = sum(f.valid_blocks() for f in self._frames.values())
        dirty = sum(len(f.dirty_offsets()) for f in self._frames.values())
        return {
            "frames_used": float(len(self._frames)),
            "capacity": float(self.capacity),
            "occupancy": len(self._frames) / self.capacity,
            "valid_blocks": float(valid),
            "dirty_blocks": float(dirty),
            "fragmentation": self.fragmentation(),
        }
