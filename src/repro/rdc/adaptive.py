"""Relocation-threshold policies: fixed, and the paper's adaptive scheme.

Sec. 6.2: *"The thresholds are initialized to 32 and incremented by 8 every
time thrashing is detected in the page cache. [...] When a page cache frame
is reused, the hit count is adjusted by subtracting the break-even count
[12]. The result is accumulated in another counter, the thrashing
indicator. If the thrashing indicator is negative after a certain number of
frame reuses, called the monitoring window [2x the number of frames], the
relocation threshold is incremented and all the hit counters are reset."*

Thresholds are tuned **independently per node**; the system builder
instantiates one :class:`ThresholdState` per node.
"""

from __future__ import annotations

import abc


class ThresholdState(abc.ABC):
    """Per-node relocation threshold with a frame-reuse feedback hook."""

    value: int

    @abc.abstractmethod
    def on_frame_reuse(self, frame_hits: int) -> bool:
        """Notify that a PC frame was reused (its page evicted).

        ``frame_hits`` is the evicted frame's saturating hit count.
        Returns True when the policy adjusted the threshold, in which case
        the caller must reset all PC frame hit counters.
        """


class FixedThreshold(ThresholdState):
    """A constant threshold (the prior-work policy of Fig. 6)."""

    def __init__(self, value: int = 32) -> None:
        self.value = value

    def on_frame_reuse(self, frame_hits: int) -> bool:
        return False

    def __repr__(self) -> str:
        return f"FixedThreshold({self.value})"


class AdaptiveThreshold(ThresholdState):
    """The paper's thrashing-driven adaptive threshold."""

    def __init__(
        self,
        initial: int = 32,
        increment: int = 8,
        break_even: int = 12,
        window: int = 2,
    ) -> None:
        self.value = initial
        self.increment = increment
        self.break_even = break_even
        self.window = max(1, window)
        self._indicator = 0
        self._reuses = 0
        self.adjustments = 0  #: how many times thrashing was detected

    def on_frame_reuse(self, frame_hits: int) -> bool:
        self._indicator += frame_hits - self.break_even
        self._reuses += 1
        if self._reuses < self.window:
            return False
        thrashing = self._indicator < 0
        self._reuses = 0
        self._indicator = 0
        if thrashing:
            self.value += self.increment
            self.adjustments += 1
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"AdaptiveThreshold(value={self.value}, window={self.window}, "
            f"adjustments={self.adjustments})"
        )
