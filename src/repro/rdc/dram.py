"""Large DRAM network cache with full inclusion — the `NCD` system.

Models the commercial-style 512 KB DRAM NC (Sequent NUMA-Q / Sting
lineage, Sec. 5.1):

* slow: every access pays a DRAM access, and even an NC miss pays the tag
  check before the remote request can be issued (``is_dram = True`` makes
  the latency model apply Table 1's DRAM rows);
* full inclusion: every remote block cached anywhere in the cluster has an
  NC frame, and evicting a frame forcefully evicts every L1 copy
  (``InclusionPolicy.FULL``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..coherence.cache import SetAssocCache
from ..coherence.states import NCState
from ..params import CacheGeometry
from .base import InclusionPolicy, NCEviction, NetworkCache


class FullInclusionDramNC(NetworkCache):
    """Allocate-on-miss DRAM NC with full inclusion."""

    is_dram = True
    inclusion = InclusionPolicy.FULL

    def __init__(self, geometry: CacheGeometry) -> None:
        self._cache = SetAssocCache(geometry)

    # ---- processor-miss service -----------------------------------------

    def service_read(self, block: int) -> Optional[int]:
        line = self._cache.lookup(block)
        return None if line is None else line.state

    def service_write(self, block: int) -> Optional[int]:
        line = self._cache.lookup(block)
        if line is None:
            return None
        state = line.state
        line.state = NCState.CLEAN  # ownership moves to the writing L1
        return state

    # ---- allocation -------------------------------------------------------

    def on_fetch(self, block: int) -> Optional[NCEviction]:
        line = self._cache.peek(block)
        if line is not None:
            return None
        evicted = self._cache.insert(block, NCState.CLEAN)
        if evicted is None:
            return None
        return NCEviction(evicted.block, evicted.state == NCState.DIRTY)

    def accept_clean_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        return self._cache.peek(block) is not None, None

    def accept_dirty_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        line = self._cache.peek(block)
        if line is None:
            # Full inclusion makes this unreachable if the simulator keeps
            # the invariant; decline defensively.
            return False, None
        line.state = NCState.DIRTY
        return True, None

    # ---- coherence ---------------------------------------------------------

    def invalidate(self, block: int) -> Optional[int]:
        line = self._cache.remove(block)
        return None if line is None else line.state

    def downgrade(self, block: int) -> bool:
        line = self._cache.peek(block)
        if line is not None and line.state == NCState.DIRTY:
            line.state = NCState.CLEAN
            return True
        return False

    # ---- inspection ---------------------------------------------------------

    def probe(self, block: int) -> Optional[int]:
        line = self._cache.peek(block)
        return None if line is None else line.state

    def resident_blocks(self) -> Iterator[int]:
        return self._cache.blocks()

    def __len__(self) -> int:
        return len(self._cache)

    # ---- observability snapshots ---------------------------------------------

    def stats(self) -> Dict[str, float]:
        cache = self._cache
        dirty = cache.state_counts().get(int(NCState.DIRTY), 0)
        return {
            "resident": float(len(cache)),
            "dirty": float(dirty),
            "capacity": float(cache.n_sets * cache.assoc),
            "occupancy": cache.occupancy(),
        }

    def set_occupancies(self) -> List[int]:
        return self._cache.set_occupancies()
