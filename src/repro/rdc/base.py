"""Abstract interface shared by every network-cache organisation."""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..coherence.states import NCState


class InclusionPolicy(enum.Enum):
    """What an NC eviction forces upon the processor caches (Sec. 3.1)."""

    NONE = "none"  #: victim cache — L1s are never disturbed
    DIRTY_ONLY = "dirty_only"  #: `nc` — a dirty L1 copy must leave with the frame
    FULL = "full"  #: `NCD` — every L1 copy of the block is invalidated


@dataclass
class NCEviction:
    """A block replaced out of the NC, to be disposed of by the simulator.

    ``dirty`` reflects the NC line's own state; with DIRTY_ONLY/FULL
    inclusion the simulator may upgrade it after collecting a dirty L1 copy.
    """

    block: int
    dirty: bool


class NetworkCache(abc.ABC):
    """Storage + allocation policy for one node's network cache.

    All methods take *block numbers*.  Only remote blocks are ever passed
    in; callers guarantee this (the NC is a remote-data cache).

    The ``service_read`` / ``service_write`` pair implements the NC side of
    a processor miss: they return the NC line state found (``None`` on
    miss) *before* applying the organisation's hit transition (a victim NC
    removes the line — the block swaps into the L1; inclusive NCs keep the
    frame and mark a written block's copy stale-clean).
    """

    #: latency class: True => Table 1's DRAM NC rows apply
    is_dram: bool = False
    #: what NC evictions force on the L1s
    inclusion: InclusionPolicy = InclusionPolicy.NONE

    # ---- processor-miss service -----------------------------------------

    @abc.abstractmethod
    def service_read(self, block: int) -> Optional[int]:
        """Probe for a read miss; apply hit policy; return found state."""

    @abc.abstractmethod
    def service_write(self, block: int) -> Optional[int]:
        """Probe for a write miss; apply hit policy; return found state."""

    # ---- allocation events -----------------------------------------------

    @abc.abstractmethod
    def on_fetch(self, block: int) -> Optional[NCEviction]:
        """A remote fetch completed for this node (allocate-on-miss NCs)."""

    @abc.abstractmethod
    def accept_clean_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        """Offer the last clean copy (an R-state replacement transaction).

        Returns ``(accepted, eviction)``.
        """

    @abc.abstractmethod
    def accept_dirty_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        """Offer a dirty victim (an M write-back on the bus).

        Returns ``(absorbed, eviction)``; when not absorbed the write-back
        continues to the page cache or across the network.
        """

    # ---- coherence actions -----------------------------------------------

    @abc.abstractmethod
    def invalidate(self, block: int) -> Optional[int]:
        """Remove a block (inter-cluster invalidation); return its state."""

    @abc.abstractmethod
    def downgrade(self, block: int) -> bool:
        """Mark a dirty NC copy clean (home read of our dirty block)."""

    # ---- inspection -------------------------------------------------------

    @abc.abstractmethod
    def probe(self, block: int) -> Optional[int]:
        """State of a resident block without any side effect."""

    @abc.abstractmethod
    def resident_blocks(self) -> Iterator[int]:
        """All currently resident blocks."""

    def flush_page(self, page: int, block_bits_per_page: int) -> List[Tuple[int, bool]]:
        """Remove every resident block of ``page``; return (block, dirty) pairs.

        Used when a page leaves the page cache and the whole cluster must
        drop it.  ``block_bits_per_page`` = log2(blocks per page).
        """
        doomed = [
            b for b in list(self.resident_blocks()) if (b >> block_bits_per_page) == page
        ]
        out: List[Tuple[int, bool]] = []
        for b in doomed:
            state = self.invalidate(b)
            out.append((b, state == NCState.DIRTY))
        return out

    # ---- victim-cache specifics (overridden by VictimNC) ------------------

    def set_index_of(self, block: int) -> Optional[int]:
        """The NC set a block maps to, if the NC is set-indexed (else None)."""
        return None

    # ---- observability snapshots (repro.obs.metrics) -----------------------

    def stats(self) -> Dict[str, float]:
        """Point-in-time state summary; finite NCs add capacity/occupancy."""
        return {"resident": float(sum(1 for _ in self.resident_blocks()))}

    def set_occupancies(self) -> List[int]:
        """Per-set line counts for set-indexed NCs; empty otherwise."""
        return []
