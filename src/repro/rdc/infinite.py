"""Unbounded network caches: the `NCS` ideal and the normalisation reference.

An infinite NC retains every remote block the cluster ever fetched until an
inter-cluster invalidation removes it.  Consequently the home directory
only ever sees *necessary* misses (cold + coherence), which is exactly how
the paper defines the reference points of Figs. 9-11:

* ``InfiniteNC(is_dram=False)`` — `NCS`, the infinite fast SRAM NC;
* ``InfiniteNC(is_dram=True)`` — the infinite-but-slow DRAM NC every result
  is normalised against.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..coherence.states import NCState
from .base import InclusionPolicy, NCEviction, NetworkCache


class InfiniteNC(NetworkCache):
    """NC with unbounded capacity (a dict of block -> state)."""

    inclusion = InclusionPolicy.NONE  # it never evicts, so inclusion is moot

    def __init__(self, is_dram: bool = False) -> None:
        self.is_dram = is_dram
        self._lines: Dict[int, int] = {}

    # ---- processor-miss service -----------------------------------------

    def service_read(self, block: int) -> Optional[int]:
        return self._lines.get(block)

    def service_write(self, block: int) -> Optional[int]:
        state = self._lines.get(block)
        if state is not None:
            self._lines[block] = NCState.CLEAN  # ownership moves to the L1
        return state

    # ---- allocation -------------------------------------------------------

    def on_fetch(self, block: int) -> Optional[NCEviction]:
        self._lines.setdefault(block, NCState.CLEAN)
        return None

    def accept_clean_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        self._lines.setdefault(block, NCState.CLEAN)
        return True, None

    def accept_dirty_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        self._lines[block] = NCState.DIRTY
        return True, None

    # ---- coherence ---------------------------------------------------------

    def invalidate(self, block: int) -> Optional[int]:
        return self._lines.pop(block, None)

    def downgrade(self, block: int) -> bool:
        if self._lines.get(block) == NCState.DIRTY:
            self._lines[block] = NCState.CLEAN
            return True
        return False

    # ---- inspection ---------------------------------------------------------

    def probe(self, block: int) -> Optional[int]:
        return self._lines.get(block)

    def resident_blocks(self) -> Iterator[int]:
        return iter(tuple(self._lines))

    def __len__(self) -> int:
        return len(self._lines)

    # ---- observability snapshots ---------------------------------------------

    def stats(self) -> Dict[str, float]:
        dirty = sum(1 for s in self._lines.values() if s == NCState.DIRTY)
        return {"resident": float(len(self._lines)), "dirty": float(dirty)}
