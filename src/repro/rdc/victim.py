"""The network victim cache — the paper's proposed NC organisation (Sec. 3).

Key properties:

* **No inclusion.**  Frames are allocated only when the processor caches
  victimise a block (the R-state replacement transaction for the last clean
  copy, or a dirty write-back).  The NC therefore never duplicates a block
  an L1 still holds, and its conflicts can never hurt the L1 hit ratio.
* **Exclusive hits.**  On an NC hit the block moves back into the
  requesting L1 and the NC frame is freed (two-level exclusive caching).
* **Two indexing schemes** (Sec. 6.1.3): by block address (`vb`) or by the
  least-significant bits of the *page* address (`vp`).  Page indexing maps
  all blocks of one remote page into the same set, which turns each set
  into an intermediate store for that page — the substrate for the per-set
  relocation counters of `vxp` (Sec. 3.4).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..coherence.cache import SetAssocCache
from ..coherence.states import NCState
from ..params import CacheGeometry, NCIndexing
from .base import InclusionPolicy, NCEviction, NetworkCache


class VictimNC(NetworkCache):
    """Set-associative victim cache for remote blocks."""

    is_dram = False
    inclusion = InclusionPolicy.NONE

    def __init__(
        self,
        geometry: CacheGeometry,
        indexing: NCIndexing = NCIndexing.BLOCK,
        blocks_per_page: int = 64,
    ) -> None:
        if indexing is NCIndexing.PAGE:
            shift = blocks_per_page.bit_length() - 1
        else:
            shift = 0
        self.indexing = indexing
        self._cache = SetAssocCache(geometry, index_shift=shift)

    # ---- processor-miss service -----------------------------------------

    def _service(self, block: int) -> Optional[int]:
        # exclusive: the block swaps back into the processor cache
        line = self._cache.remove(block)
        return None if line is None else line.state

    def service_read(self, block: int) -> Optional[int]:
        return self._service(block)

    def service_write(self, block: int) -> Optional[int]:
        return self._service(block)

    # ---- allocation -------------------------------------------------------

    def on_fetch(self, block: int) -> Optional[NCEviction]:
        # victim caches do not allocate on fetch
        return None

    def _accept(self, block: int, state: NCState) -> Tuple[bool, Optional[NCEviction]]:
        existing = self._cache.peek(block)
        if existing is not None:
            # Possible when a downgrade write-back lands on a block whose
            # clean copy was captured earlier: refresh the state.
            if state == NCState.DIRTY:
                existing.state = NCState.DIRTY
            return True, None
        evicted = self._cache.insert(block, state)
        if evicted is None:
            return True, None
        return True, NCEviction(evicted.block, evicted.state == NCState.DIRTY)

    def accept_clean_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        return self._accept(block, NCState.CLEAN)

    def accept_dirty_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        return self._accept(block, NCState.DIRTY)

    # ---- coherence ---------------------------------------------------------

    def invalidate(self, block: int) -> Optional[int]:
        line = self._cache.remove(block)
        return None if line is None else line.state

    def downgrade(self, block: int) -> bool:
        line = self._cache.peek(block)
        if line is not None and line.state == NCState.DIRTY:
            line.state = NCState.CLEAN
            return True
        return False

    # ---- inspection ---------------------------------------------------------

    def probe(self, block: int) -> Optional[int]:
        line = self._cache.peek(block)
        return None if line is None else line.state

    def resident_blocks(self) -> Iterator[int]:
        return self._cache.blocks()

    def __len__(self) -> int:
        return len(self._cache)

    # ---- victim-cache specifics ----------------------------------------------

    @property
    def n_sets(self) -> int:
        return self._cache.n_sets

    def set_index_of(self, block: int) -> Optional[int]:
        return self._cache.set_index(block)

    def set_blocks(self, index: int) -> "list[int]":
        """Blocks currently resident in one set (for relocation decisions)."""
        return [line.block for line in self._cache.set_lines(index)]

    # ---- observability snapshots ---------------------------------------------

    def stats(self) -> Dict[str, float]:
        cache = self._cache
        dirty = cache.state_counts().get(int(NCState.DIRTY), 0)
        return {
            "resident": float(len(cache)),
            "dirty": float(dirty),
            "capacity": float(cache.n_sets * cache.assoc),
            "occupancy": cache.occupancy(),
        }

    def set_occupancies(self) -> List[int]:
        return self._cache.set_occupancies()
