"""The degenerate network cache of the `base` system: nothing at all."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .base import InclusionPolicy, NCEviction, NetworkCache


class NullNC(NetworkCache):
    """Absent NC: every probe misses, every offer is declined."""

    is_dram = False
    inclusion = InclusionPolicy.NONE

    def service_read(self, block: int) -> Optional[int]:
        return None

    def service_write(self, block: int) -> Optional[int]:
        return None

    def on_fetch(self, block: int) -> Optional[NCEviction]:
        return None

    def accept_clean_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        return False, None

    def accept_dirty_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        return False, None

    def invalidate(self, block: int) -> Optional[int]:
        return None

    def downgrade(self, block: int) -> bool:
        return False

    def probe(self, block: int) -> Optional[int]:
        return None

    def resident_blocks(self) -> Iterator[int]:
        return iter(())
