"""SRAM NC with inclusion relaxed for clean blocks — the `nc` system.

This is the organisation of Fletcher et al. / R-NUMA that the paper uses
as its main point of comparison for the victim cache:

* a frame is allocated on **every** remote fetch (allocate-on-miss);
* when a *clean* NC line is replaced, the L1 copies are left alone
  (relaxed inclusion);
* inclusion **is** maintained for dirty blocks: while any L1 in the node
  holds the block modified, the NC may not silently lose the frame — the
  simulator forces the dirty L1 copy out together with the evicted frame
  (``InclusionPolicy.DIRTY_ONLY``), which is the write-back-traffic
  pathology the paper observes for Radix (Sec. 6.1.2);
* dirty L1 victims are absorbed into the existing NC frame;
* hits leave the frame in place (the NC is a lower level, not a victim
  buffer); a write hit hands ownership to the L1, the NC copy becoming
  stale-clean.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..coherence.cache import SetAssocCache
from ..coherence.states import NCState
from ..params import CacheGeometry
from .base import InclusionPolicy, NCEviction, NetworkCache


class DirtyInclusionNC(NetworkCache):
    """Allocate-on-miss SRAM NC, inclusion kept for dirty blocks only."""

    is_dram = False
    inclusion = InclusionPolicy.DIRTY_ONLY

    def __init__(self, geometry: CacheGeometry) -> None:
        self._cache = SetAssocCache(geometry)

    # ---- processor-miss service -----------------------------------------

    def service_read(self, block: int) -> Optional[int]:
        line = self._cache.lookup(block)
        return None if line is None else line.state

    def service_write(self, block: int) -> Optional[int]:
        line = self._cache.lookup(block)
        if line is None:
            return None
        state = line.state
        # ownership moves up to the writing L1; the NC copy is stale
        line.state = NCState.CLEAN
        return state

    # ---- allocation -------------------------------------------------------

    def on_fetch(self, block: int) -> Optional[NCEviction]:
        line = self._cache.peek(block)
        if line is not None:
            return None
        evicted = self._cache.insert(block, NCState.CLEAN)
        if evicted is None:
            return None
        return NCEviction(evicted.block, evicted.state == NCState.DIRTY)

    def accept_clean_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        # Clean victims are not captured: allocation happened at miss time.
        # If the frame survived, the NC still has the block; either way the
        # replacement transaction ends here.
        return self._cache.peek(block) is not None, None

    def accept_dirty_victim(self, block: int) -> Tuple[bool, Optional[NCEviction]]:
        line = self._cache.peek(block)
        if line is None:
            # Inclusion for dirty blocks should make this impossible; be
            # conservative and decline (the write-back continues outward).
            return False, None
        line.state = NCState.DIRTY
        return True, None

    # ---- coherence ---------------------------------------------------------

    def invalidate(self, block: int) -> Optional[int]:
        line = self._cache.remove(block)
        return None if line is None else line.state

    def downgrade(self, block: int) -> bool:
        line = self._cache.peek(block)
        if line is not None and line.state == NCState.DIRTY:
            line.state = NCState.CLEAN
            return True
        return False

    # ---- inspection ---------------------------------------------------------

    def probe(self, block: int) -> Optional[int]:
        line = self._cache.peek(block)
        return None if line is None else line.state

    def resident_blocks(self) -> Iterator[int]:
        return self._cache.blocks()

    def __len__(self) -> int:
        return len(self._cache)

    # ---- observability snapshots ---------------------------------------------

    def stats(self) -> Dict[str, float]:
        cache = self._cache
        dirty = cache.state_counts().get(int(NCState.DIRTY), 0)
        return {
            "resident": float(len(cache)),
            "dirty": float(dirty),
            "capacity": float(cache.n_sets * cache.assoc),
            "occupancy": cache.occupancy(),
        }

    def set_occupancies(self) -> List[int]:
        return self._cache.set_occupancies()
