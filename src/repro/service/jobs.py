"""Job lifecycle for the sweep service: validate, queue, run, persist.

A **job** is one sweep spec (systems x benchmarks matrix plus trace
shape) submitted over HTTP.  The :class:`JobManager` gives each job a
directory under ``<data_dir>/jobs/<job_id>/`` holding

* ``job.json`` — the validated spec and the job's state machine
  (``queued -> running -> done | failed``), rewritten atomically on
  every transition;
* ``run/`` — a standard :class:`~repro.sim.checkpoint.SweepJournal` run
  directory, written by the same fault-tolerant sweep engine every CLI
  sweep uses, which is what makes jobs **resumable**: a server killed
  mid-job re-enqueues it on startup, and the journal restores every
  completed cell bit-identically instead of re-simulating it;
* ``job-manifest.json`` — the run manifest of the finished sweep, with
  the cache hit/simulated split under its ``cache`` key;
* ``result.json`` — the response payload for ``GET /jobs/<id>/result``
  (per-cell counters, digests, and headline metrics), written once on
  completion so serving a result is a file read, not a recomputation.

Execution is deliberately synchronous-core: the manager owns a small
thread pool (``job_workers``), each job runs through
:func:`repro.sim.parallel.run_parallel_sweep` with the shared
:class:`~repro.service.store.ResultStore` consulted per cell, and the
asyncio HTTP layer (:mod:`repro.service.app`) only ever calls fast,
lock-guarded accessors.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import (
    JobCancelledError,
    JobSpecError,
    ReproError,
    ServiceUnavailableError,
)
from ..obs.manifest import build_manifest, counters_digest, write_manifest
from ..obs.monitor import SweepProgress
from ..obs.registry import METRICS_SNAPSHOT_NAME, WallClockRegistry
from ..obs.spans import (
    SPANS_NAME,
    SpanRecorder,
    append_spans,
    request_root_span_id,
    run_span_id,
)
from ..sim.parallel import RecoveryLog, cache_summary, run_parallel_sweep
from ..sim.runner import DEFAULT_SCALE, resolve_sweep_configs
from ..trace.synthetic import BENCHMARK_NAMES
from .store import ResultStore

#: guard rails on what one HTTP request may ask for
MAX_CELLS_PER_JOB = 512
MAX_REFS_PER_CELL = 10_000_000

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
#: states a job never leaves (and TTL garbage collection may reap)
TERMINAL_STATES = ("done", "failed", "cancelled")

#: admission-control defaults (env-overridable; 0 disables the bound)
MAX_QUEUED_JOBS_ENV = "REPRO_MAX_QUEUED_JOBS"
MAX_INFLIGHT_CELLS_ENV = "REPRO_MAX_INFLIGHT_CELLS"
JOB_TTL_ENV = "REPRO_JOB_TTL"
DEFAULT_MAX_QUEUED_JOBS = 64
DEFAULT_MAX_INFLIGHT_CELLS = 4096


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class JobSpec:
    """One validated sweep request.

    The JSON body of ``POST /jobs``: ``systems`` and ``benchmarks`` name
    the matrix, the rest shapes the traces and the execution.  ``engine``
    is honoured for cells that must be simulated but is deliberately
    **not** part of the result-store key — engines are bit-identical, so
    an interp-simulated cell legitimately serves a batch request.
    """

    systems: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    refs: int = 10_000
    seed: int = 1
    scale: float = DEFAULT_SCALE
    engine: Optional[str] = None
    jobs: int = 1  #: worker processes for the sweep's pool

    @classmethod
    def from_dict(cls, raw: object) -> "JobSpec":
        """Validate an untrusted JSON object into a spec, eagerly.

        Raises :class:`~repro.errors.JobSpecError` naming the offending
        field; nothing is simulated (or even queued) on bad input.
        """
        if not isinstance(raw, dict):
            raise JobSpecError("spec must be a JSON object")
        unknown = set(raw) - {
            "systems", "benchmarks", "refs", "seed", "scale", "engine", "jobs"
        }
        if unknown:
            raise JobSpecError(f"unknown spec field(s): {', '.join(sorted(unknown))}")

        def _names(key: str) -> Tuple[str, ...]:
            value = raw.get(key)
            if isinstance(value, str):
                value = [v.strip() for v in value.split(",") if v.strip()]
            if not isinstance(value, (list, tuple)) or not value or not all(
                isinstance(v, str) and v for v in value
            ):
                raise JobSpecError(
                    f"{key} must be a non-empty list of names "
                    f"(or a comma-separated string)"
                )
            return tuple(value)

        def _int(key: str, default: int, lo: int, hi: int) -> int:
            value = raw.get(key, default)
            if not isinstance(value, int) or isinstance(value, bool):
                raise JobSpecError(f"{key} must be an integer")
            if not lo <= value <= hi:
                raise JobSpecError(f"{key} must be in [{lo}, {hi}]")
            return value

        systems = _names("systems")
        benchmarks = _names("benchmarks")
        for bench in benchmarks:
            if bench.lower() not in BENCHMARK_NAMES:
                raise JobSpecError(
                    f"unknown benchmark {bench!r}; known: "
                    f"{', '.join(BENCHMARK_NAMES)}"
                )
        if len(systems) * len(benchmarks) > MAX_CELLS_PER_JOB:
            raise JobSpecError(
                f"matrix of {len(systems) * len(benchmarks)} cells exceeds "
                f"the per-job limit of {MAX_CELLS_PER_JOB}"
            )
        refs = _int("refs", 10_000, 1, MAX_REFS_PER_CELL)
        seed = _int("seed", 1, 0, 2**31 - 1)
        jobs = _int("jobs", 1, 1, 64)
        scale = raw.get("scale", DEFAULT_SCALE)
        if isinstance(scale, bool) or not isinstance(scale, (int, float)):
            raise JobSpecError("scale must be a number")
        scale = float(scale)
        if not 0.0 < scale <= 8.0:
            raise JobSpecError("scale must be in (0, 8]")
        engine = raw.get("engine")
        if engine is not None and engine not in ("interp", "batch"):
            raise JobSpecError("engine must be 'interp' or 'batch'")
        spec = cls(
            systems=systems, benchmarks=benchmarks, refs=refs, seed=seed,
            scale=scale, engine=engine, jobs=jobs,
        )
        # resolve every system eagerly: an unknown name or bad override
        # must 400 at submit time, not fail the job minutes later
        try:
            spec.resolve_configs()
        except ReproError as exc:
            raise JobSpecError(str(exc)) from exc
        return spec

    @property
    def n_cells(self) -> int:
        """Matrix size — the unit admission control budgets in."""
        return len(self.systems) * len(self.benchmarks)

    def resolve_configs(self) -> "OrderedDict[str, object]":
        return resolve_sweep_configs(list(self.systems))

    def to_dict(self) -> Dict[str, object]:
        return {
            "systems": list(self.systems),
            "benchmarks": list(self.benchmarks),
            "refs": self.refs,
            "seed": self.seed,
            "scale": self.scale,
            "engine": self.engine,
            "jobs": self.jobs,
        }


@dataclass
class Job:
    """One job's in-memory record (mirrored to ``job.json`` on disk)."""

    id: str
    spec: JobSpec
    state: str = "queued"
    created_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    error: Optional[str] = None
    cache: Optional[Dict[str, object]] = None
    resumed: bool = False  #: re-enqueued by startup recovery
    request_id: Optional[str] = None  #: X-Request-Id correlation (trace id)

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
            "cache": self.cache,
            "resumed": self.resumed,
            "request_id": self.request_id,
        }


def _atomic_write_json(path: Path, payload: Dict[str, object]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.stem + ".", suffix=".tmp.json", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class JobManager:
    """Persistent queue of sweep jobs over one shared result store.

    ``data_dir`` layout: ``store/`` (the content-addressed result store)
    and ``jobs/<job_id>/`` (one directory per job, see module docstring).
    Construct, then call :meth:`start` — which first **recovers**: jobs
    found on disk in ``queued``/``running`` state (a previous server
    died) are re-enqueued and resume from their journals.
    """

    def __init__(
        self,
        data_dir: Union[str, Path, None] = None,
        job_workers: int = 2,
        store: Optional[ResultStore] = None,
        tracer=None,
        max_queued_jobs: Optional[int] = None,
        max_inflight_cells: Optional[int] = None,
        job_ttl_s: Optional[float] = None,
        retry_after_s: float = 2.0,
        metrics: Optional[WallClockRegistry] = None,
    ) -> None:
        from .store import service_data_dir

        self.data_dir = Path(data_dir) if data_dir is not None else service_data_dir()
        self.jobs_dir = self.data_dir / "jobs"
        #: wall-clock telemetry registry, persisted to ``metrics.json`` in
        #: the data dir so counters survive a SIGKILL + restart.  Loaded
        #: (merged) here, before any tally can move.
        self.metrics = metrics if metrics is not None else WallClockRegistry()
        self.metrics_path = self.data_dir / METRICS_SNAPSHOT_NAME
        self.metrics.load(self.metrics_path)
        self.store = store if store is not None else ResultStore(
            self.data_dir / "store", metrics=self.metrics
        )
        self.tracer = tracer
        self.started_unix = time.time()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._job_workers = max(1, int(job_workers))
        # admission control: 0 disables a bound; env fills in None
        self.max_queued_jobs = (
            max_queued_jobs if max_queued_jobs is not None
            else _env_int(MAX_QUEUED_JOBS_ENV, DEFAULT_MAX_QUEUED_JOBS)
        )
        self.max_inflight_cells = (
            max_inflight_cells if max_inflight_cells is not None
            else _env_int(MAX_INFLIGHT_CELLS_ENV, DEFAULT_MAX_INFLIGHT_CELLS)
        )
        #: seconds a terminal job (and its directory) outlives completion;
        #: ``None``/0 keeps them forever
        self.job_ttl_s = (
            job_ttl_s if job_ttl_s is not None
            else _env_float(JOB_TTL_ENV, None)
        )
        self.retry_after_s = float(retry_after_s)
        # rejected/expired are seeded from the persisted registry snapshot
        # and incremented in lockstep with it, which is what fixes the
        # /stats amnesia across restarts
        self.rejected = int(self.metrics.counter_total("repro_admission_rejected_total"))
        self.expired = int(self.metrics.counter_total("repro_jobs_expired_total"))
        self._last_health = "ok"
        self._draining = threading.Event()
        #: per-job abort signals consulted between sweep cells
        self._aborts: Dict[str, threading.Event] = {}
        #: jobs whose abort came from an explicit cancel (vs a drain)
        self._cancel_requested: set = set()

    # ---- lifecycle -------------------------------------------------------

    def start(self) -> List[str]:
        """Recover persisted jobs, then start accepting work.

        Returns the ids of the jobs that were re-enqueued (unfinished
        when the previous server stopped); completed/failed jobs are
        loaded for status queries but not re-run.
        """
        self._executor = ThreadPoolExecutor(
            max_workers=self._job_workers, thread_name_prefix="repro-job"
        )
        resumed: List[str] = []
        for job in self._load_persisted():
            with self._lock:
                self._jobs[job.id] = job
            if job.state in ("queued", "running"):
                job.state = "queued"
                job.resumed = True
                self._persist(job)
                self._emit("job_resumed", job)
                self._executor.submit(self._run, job.id)
                resumed.append(job.id)
        if resumed:
            self.metrics.inc("repro_jobs_resumed_total", len(resumed))
        self._update_gauges()
        return resumed

    def close(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None
        self._save_metrics()

    # ---- graceful drain --------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop admitting work; running jobs keep checkpointing."""
        if not self._draining.is_set():
            self._draining.set()
            self.metrics.inc("repro_drain_started_total")
            self.metrics.set_gauge("repro_service_draining", 1)
            for job in self.list_jobs():
                if job.state == "running":
                    self._emit("job_draining", job)

    def drain(self, timeout: Optional[float] = None) -> Dict[str, object]:
        """Blocking graceful shutdown; returns a summary of what happened.

        Steps: stop admitting (`503` from now on), cancel *queued* jobs'
        executor futures — they stay ``queued`` on disk, which IS the
        persisted queue order (:meth:`start` re-enqueues them in
        ``created_unix`` order) — then give running jobs ``timeout``
        seconds to finish naturally.  Jobs still running after that are
        aborted at their next cell boundary (every completed cell is
        already in the journal) and parked back to ``queued``, so a
        restarted server resumes them bit-identically.
        """
        self.begin_drain()
        if timeout is None:
            timeout = _env_float("REPRO_DRAIN_TIMEOUT", 30.0) or 30.0
        executor, self._executor = self._executor, None
        if executor is not None:
            # cancel pending futures: queued jobs are not started, their
            # job.json rows survive, and the next start() resumes them
            executor.shutdown(wait=False, cancel_futures=True)
        deadline = time.time() + max(0.0, timeout)
        while time.time() < deadline and self._count_state("running"):
            time.sleep(0.02)
        aborted = []
        with self._lock:
            for job_id, event in self._aborts.items():
                job = self._jobs.get(job_id)
                if job is not None and job.state == "running":
                    aborted.append(job_id)
                    event.set()
        if executor is not None:
            # join worker threads: aborted jobs park at the next cell
            # boundary, so this wait is bounded by one cell's runtime
            executor.shutdown(wait=True)
        summary = {
            "queued": self._count_state("queued"),
            "finished": self._count_state("done") + self._count_state("failed"),
            "aborted": len(aborted),
        }
        self._save_metrics()
        return summary

    def abort_running(self) -> int:
        """Set every job's abort signal (forced exit); returns the count.

        Running sweeps park at their next cell boundary; the journal
        already holds every completed cell, so nothing is lost.
        """
        with self._lock:
            events = list(self._aborts.values())
        for event in events:
            event.set()
        return len(events)

    def _count_state(self, state: str) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == state)

    # ---- admission accounting --------------------------------------------

    def queued_jobs(self) -> int:
        return self._count_state("queued")

    def inflight_cells(self) -> int:
        """Cells across every queued or running job — the load budget."""
        with self._lock:
            return sum(
                j.spec.n_cells for j in self._jobs.values()
                if j.state in ("queued", "running")
            )

    def health(self) -> str:
        """``ok`` | ``degraded`` (store writes failing) | ``draining``."""
        if self._draining.is_set():
            state = "draining"
        elif self.store.degraded:
            state = "degraded"
        else:
            state = "ok"
        if state != self._last_health:
            self._last_health = state
            self.metrics.inc("repro_health_transitions_total", labels={"to": state})
        return state

    def _load_persisted(self) -> List[Job]:
        jobs: List[Job] = []
        if not self.jobs_dir.is_dir():
            return jobs
        for job_file in sorted(self.jobs_dir.glob("*/job.json")):
            try:
                raw = json.loads(job_file.read_text(encoding="utf-8"))
                spec = JobSpec.from_dict(raw["spec"])
                job = Job(
                    id=str(raw["id"]),
                    spec=spec,
                    state=str(raw.get("state", "queued")),
                    created_unix=float(raw.get("created_unix", 0.0)),
                    started_unix=raw.get("started_unix"),
                    finished_unix=raw.get("finished_unix"),
                    error=raw.get("error"),
                    cache=raw.get("cache"),
                    resumed=bool(raw.get("resumed", False)),
                    request_id=raw.get("request_id"),
                )
            except (OSError, ValueError, KeyError, TypeError, ReproError):
                continue  # a torn job.json is abandoned, never fatal
            if job.state not in JOB_STATES:
                continue
            jobs.append(job)
        jobs.sort(key=lambda j: j.created_unix)
        return jobs

    # ---- submission ------------------------------------------------------

    def submit(self, raw_spec: object, request_id: Optional[str] = None) -> Job:
        """Validate, admit, and enqueue one sweep spec; returns the job.

        The job is persisted before this method returns, so a server
        crash between ``202 Accepted`` and execution loses nothing.
        ``request_id`` is the HTTP correlation id; it is stamped into the
        job record and becomes the trace id of the job's span tree.
        Raises :class:`~repro.errors.ServiceUnavailableError` when the
        server is draining or admission control finds the queue or the
        in-flight cell budget saturated — the submission is load-shed
        (nothing enqueued, nothing persisted) and safely retryable.
        """
        if self._draining.is_set():
            self.note_rejected("draining")
            raise ServiceUnavailableError(
                "server is draining and not accepting new jobs",
                retry_after_s=self.retry_after_s,
            )
        if self._executor is None:
            raise ReproError("job manager is not started")
        self.gc_terminal_jobs()
        spec = JobSpec.from_dict(raw_spec)
        self._admit(spec)
        job = Job(id=uuid.uuid4().hex[:12], spec=spec, request_id=request_id)
        with self._lock:
            self._jobs[job.id] = job
            self._aborts[job.id] = threading.Event()
        self._persist(job)
        self._emit("job_submitted", job)
        self.metrics.inc("repro_jobs_submitted_total")
        self._executor.submit(self._run, job.id)
        self._update_gauges()
        return job

    def _admit(self, spec: JobSpec) -> None:
        """Reject (503) rather than queue unbounded work."""
        queued = self.queued_jobs()
        if self.max_queued_jobs and queued >= self.max_queued_jobs:
            self._note_rejection(
                f"job queue full ({queued} queued >= "
                f"{self.max_queued_jobs} limit)",
                kind="queue_full",
            )
        inflight = self.inflight_cells()
        if (
            self.max_inflight_cells
            and inflight + spec.n_cells > self.max_inflight_cells
        ):
            self._note_rejection(
                f"in-flight cell budget exhausted ({inflight} in flight "
                f"+ {spec.n_cells} requested > {self.max_inflight_cells} limit)",
                kind="cell_budget",
            )

    def note_rejected(self, kind: str) -> None:
        """Count one shed submission (admission, drain, or injected)."""
        with self._lock:
            self.rejected += 1
        self.metrics.inc("repro_admission_rejected_total", labels={"reason": kind})

    def _note_rejection(self, reason: str, kind: str = "admission") -> None:
        self.note_rejected(kind)
        if self.tracer is not None:
            self.tracer.emit("service_rejected", now=0, detail=reason)
        raise ServiceUnavailableError(reason, retry_after_s=self.retry_after_s)

    # ---- cancellation & garbage collection -------------------------------

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; returns the job or ``None`` if unknown.

        Queued jobs flip straight to ``cancelled``.  Running jobs get
        their abort event set and stop at the next cell boundary (the
        state transition happens in the worker thread); terminal jobs
        are returned unchanged, making cancellation idempotent.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state in TERMINAL_STATES:
                return job
            self._cancel_requested.add(job_id)
            self._aborts.setdefault(job_id, threading.Event()).set()
            flipped = job.state == "queued"
            if flipped:
                job.state = "cancelled"
                job.finished_unix = time.time()
        self.metrics.inc("repro_jobs_cancel_requests_total")
        if flipped:
            self._persist(job)
            self._emit("job_cancelled", job)
            self.metrics.inc("repro_jobs_completed_total", labels={"state": "cancelled"})
            self._update_gauges()
            self._save_metrics()
        return job

    def gc_terminal_jobs(self, now: Optional[float] = None) -> int:
        """Reap terminal jobs older than ``job_ttl_s``; returns the count.

        A no-op when no TTL is configured.  Reaped jobs disappear from
        the index *and* from disk (their whole directory, journal and
        result included) — the content-addressed result store is what
        keeps their cells reusable.
        """
        ttl = self.job_ttl_s
        if not ttl or ttl <= 0:
            return 0
        cutoff = (time.time() if now is None else now) - ttl
        reaped: List[Job] = []
        with self._lock:
            for job_id, job in list(self._jobs.items()):
                if (
                    job.state in TERMINAL_STATES
                    and job.finished_unix is not None
                    and job.finished_unix <= cutoff
                ):
                    del self._jobs[job_id]
                    reaped.append(job)
            self.expired += len(reaped)
        for job in reaped:
            shutil.rmtree(self.job_dir(job.id), ignore_errors=True)
            self._emit("job_expired", job)
        if reaped:
            self.metrics.inc("repro_jobs_expired_total", len(reaped))
            self._save_metrics()
        return len(reaped)

    # ---- execution -------------------------------------------------------

    def _run(self, job_id: str) -> None:
        try:
            self._run_locked_job(job_id)
        finally:
            with self._lock:
                self._aborts.pop(job_id, None)
                self._cancel_requested.discard(job_id)

    def _run_locked_job(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued":
                return
            job.state = "running"
            abort = self._aborts.setdefault(job_id, threading.Event())
        job.started_unix = time.time()
        self._persist(job)
        self._emit("job_started", job)
        queue_wait = max(0.0, job.started_unix - job.created_unix)
        self.metrics.observe("repro_job_queue_wait_seconds", queue_wait)
        self._update_gauges()
        # one span tree per job, rooted (when the submission came over
        # HTTP) at the request's derived root span id so the tree stays
        # connected without any handshake between layers
        spans = SpanRecorder(
            trace_id=job.request_id or job.id,
            sink_path=self.run_dir(job.id) / SPANS_NAME,
            proc="job-manager",
            default_parent=(
                request_root_span_id(job.request_id) if job.request_id else None
            ),
        )
        spans.add(
            "queue-wait", job.created_unix, queue_wait,
            job_id=job.id, resumed=job.resumed,
        )
        recovery = RecoveryLog(tracer=self.tracer)
        recovery.request_id = job.request_id
        run_t0 = time.time()
        try:
            configs = job.spec.resolve_configs()
            results = run_parallel_sweep(
                configs,
                list(job.spec.benchmarks),
                refs=job.spec.refs,
                seed=job.spec.seed,
                scale=job.spec.scale,
                jobs=job.spec.jobs,
                run_dir=self.run_dir(job.id),
                recovery=recovery,
                engine=job.spec.engine,
                result_store=self.store,
                should_abort=abort.is_set,
                metrics=self.metrics,
                spans=spans,
                request_id=job.request_id,
            )
        except JobCancelledError:
            job.finished_unix = time.time()
            if job_id in self._cancel_requested:
                job.state = "cancelled"
                self._persist(job)
                self._emit("job_cancelled", job)
                self._finish_telemetry(job, spans, run_t0)
            else:
                # drain abort: park back to queued so a restarted server
                # resumes from the journal (completed cells restore
                # bit-identically, nothing is lost)
                job.state = "queued"
                job.started_unix = None
                job.finished_unix = None
                self._persist(job)
                self._emit("job_drained", job)
                self.metrics.inc("repro_jobs_parked_total")
                spans.close()
                self._update_gauges()
                self._save_metrics()
            return
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.finished_unix = time.time()
            self._persist(job)
            self._emit("job_failed", job)
            self._finish_telemetry(job, spans, run_t0)
            return
        spans.add(
            "sweep run", run_t0, time.time() - run_t0,
            span_id=run_span_id(job.id), job_id=job.id,
        )
        job.cache = cache_summary(results, recovery)
        with spans.span("write-result", job_id=job.id):
            self._write_result(job, results)
        manifest = build_manifest(
            results,
            kind="service-job",
            command=f"POST /jobs {job.id}",
            refs=job.spec.refs,
            seed=job.spec.seed,
            scale=job.spec.scale,
            jobs=job.spec.jobs,
            wall_s=time.time() - (job.started_unix or time.time()),
            engine=job.spec.engine,
            extra={
                "cache": job.cache,
                "recovery": recovery.summary() if len(recovery) else {},
                "request_id": job.request_id,
            },
        )
        write_manifest(manifest, self.job_dir(job.id), name="job")
        job.state = "done"
        job.finished_unix = time.time()
        self._persist(job)
        self._emit("job_completed", job)
        self._finish_telemetry(job, spans, run_t0, add_run_span=False)

    def _finish_telemetry(
        self,
        job: Job,
        spans: SpanRecorder,
        run_t0: float,
        add_run_span: bool = True,
    ) -> None:
        """Terminal-transition bookkeeping: histograms, counters, gauges,
        and a snapshot save so a SIGKILL right after loses nothing."""
        if add_run_span:
            spans.add(
                "sweep run", run_t0, time.time() - run_t0,
                span_id=run_span_id(job.id), job_id=job.id, state=job.state,
            )
        spans.close()
        if job.started_unix and job.finished_unix:
            self.metrics.observe(
                "repro_job_run_seconds", max(0.0, job.finished_unix - job.started_unix)
            )
        self.metrics.inc("repro_jobs_completed_total", labels={"state": job.state})
        self._update_gauges()
        self._save_metrics()

    def _write_result(self, job: Job, results) -> None:
        cells = []
        for (system, bench), r in results.items():
            cells.append(
                {
                    "system": system,
                    "benchmark": bench,
                    "refs": r.refs,
                    "seed": r.seed,
                    "counters": r.counters.as_dict(),
                    "counters_sha": counters_digest(r.counters),
                    "miss_ratio_pct": round(r.miss_ratio, 6),
                    "stall_per_ref_cycles": round(r.stall_per_reference, 6),
                    "traffic_blocks": r.traffic_blocks,
                }
            )
        _atomic_write_json(
            self.job_dir(job.id) / "result.json",
            {"job_id": job.id, "cells": cells, "cache": job.cache},
        )

    # ---- paths & persistence --------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def run_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "run"

    def _persist(self, job: Job) -> None:
        _atomic_write_json(self.job_dir(job.id) / "job.json", job.to_dict())

    def _emit(self, kind: str, job: Job) -> None:
        if self.tracer is not None:
            self.tracer.emit(kind, now=0, detail=f"{job.id}: {job.state}")

    # ---- telemetry --------------------------------------------------------

    def _update_gauges(self) -> None:
        try:
            self.metrics.set_gauge("repro_job_queue_depth", self.queued_jobs())
            self.metrics.set_gauge("repro_jobs_running", self._count_state("running"))
            self.metrics.set_gauge("repro_inflight_cells", self.inflight_cells())
        except Exception:
            pass  # gauges are advisory; never fail a transition over them

    def _save_metrics(self) -> None:
        self.metrics.save(self.metrics_path)

    def flush_telemetry(self) -> None:
        """Refresh gauges and persist the snapshot (GC-loop heartbeat)."""
        self._update_gauges()
        self._save_metrics()

    def attach_request_spans(self, job_id: str, records: List[Dict[str, object]]) -> None:
        """Append HTTP-layer spans to a job's span file (best-effort)."""
        append_spans(self.run_dir(job_id) / SPANS_NAME, records)

    # ---- queries (called from the async HTTP layer; must stay fast) ------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self, limit: Optional[int] = None) -> List[Job]:
        with self._lock:
            jobs = list(self._jobs.values())
        jobs.reverse()  # newest first
        return jobs[:limit] if limit is not None else jobs

    def progress(self, job_id: str) -> Optional[SweepProgress]:
        """A read-only observation of the job's run directory."""
        if self.get(job_id) is None:
            return None
        return SweepProgress(self.run_dir(job_id))

    def result_payload(self, job_id: str) -> Optional[Dict[str, object]]:
        """The persisted ``result.json`` of a finished job, or ``None``."""
        try:
            raw = (self.job_dir(job_id) / "result.json").read_text(encoding="utf-8")
            payload = json.loads(raw)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def stats(self) -> Dict[str, object]:
        """Aggregate server statistics for ``GET /stats``.

        Counter-style fields (``admission.rejected``, ``lifecycle.expired``,
        the store tallies) are backed by the persisted metrics registry, so
        unlike the pre-telemetry service they survive restarts.
        """
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            total = len(self._jobs)
        store_stats = dict(self.store.stats(), entries=self.store.entry_count())
        if getattr(self.store, "metrics", None) is self.metrics:
            # registry-backed tallies = persisted totals + this process
            for tally in type(self.store)._TALLY_FIELDS:
                store_stats[tally] = int(
                    self.metrics.counter_total(f"repro_store_{tally}_total")
                )
        return {
            "uptime_s": round(time.time() - self.started_unix, 3),
            "health": self.health(),
            "jobs": {"total": total, "by_state": by_state},
            "admission": {
                "queued": by_state.get("queued", 0),
                "inflight_cells": self.inflight_cells(),
                "max_queued_jobs": self.max_queued_jobs,
                "max_inflight_cells": self.max_inflight_cells,
                "rejected": self.rejected,
            },
            "lifecycle": {
                "draining": self.draining,
                "job_ttl_s": self.job_ttl_s,
                "expired": self.expired,
            },
            "store": store_stats,
            "data_dir": str(self.data_dir),
        }
