"""Job lifecycle for the sweep service: validate, queue, run, persist.

A **job** is one sweep spec (systems x benchmarks matrix plus trace
shape) submitted over HTTP.  The :class:`JobManager` gives each job a
directory under ``<data_dir>/jobs/<job_id>/`` holding

* ``job.json`` — the validated spec and the job's state machine
  (``queued -> running -> done | failed``), rewritten atomically on
  every transition;
* ``run/`` — a standard :class:`~repro.sim.checkpoint.SweepJournal` run
  directory, written by the same fault-tolerant sweep engine every CLI
  sweep uses, which is what makes jobs **resumable**: a server killed
  mid-job re-enqueues it on startup, and the journal restores every
  completed cell bit-identically instead of re-simulating it;
* ``job-manifest.json`` — the run manifest of the finished sweep, with
  the cache hit/simulated split under its ``cache`` key;
* ``result.json`` — the response payload for ``GET /jobs/<id>/result``
  (per-cell counters, digests, and headline metrics), written once on
  completion so serving a result is a file read, not a recomputation.

Execution is deliberately synchronous-core: the manager owns a small
thread pool (``job_workers``), each job runs through
:func:`repro.sim.parallel.run_parallel_sweep` with the shared
:class:`~repro.service.store.ResultStore` consulted per cell, and the
asyncio HTTP layer (:mod:`repro.service.app`) only ever calls fast,
lock-guarded accessors.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import JobSpecError, ReproError
from ..obs.manifest import build_manifest, counters_digest, write_manifest
from ..obs.monitor import SweepProgress
from ..sim.parallel import RecoveryLog, cache_summary, run_parallel_sweep
from ..sim.runner import DEFAULT_SCALE, resolve_sweep_configs
from ..trace.synthetic import BENCHMARK_NAMES
from .store import ResultStore

#: guard rails on what one HTTP request may ask for
MAX_CELLS_PER_JOB = 512
MAX_REFS_PER_CELL = 10_000_000

JOB_STATES = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class JobSpec:
    """One validated sweep request.

    The JSON body of ``POST /jobs``: ``systems`` and ``benchmarks`` name
    the matrix, the rest shapes the traces and the execution.  ``engine``
    is honoured for cells that must be simulated but is deliberately
    **not** part of the result-store key — engines are bit-identical, so
    an interp-simulated cell legitimately serves a batch request.
    """

    systems: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    refs: int = 10_000
    seed: int = 1
    scale: float = DEFAULT_SCALE
    engine: Optional[str] = None
    jobs: int = 1  #: worker processes for the sweep's pool

    @classmethod
    def from_dict(cls, raw: object) -> "JobSpec":
        """Validate an untrusted JSON object into a spec, eagerly.

        Raises :class:`~repro.errors.JobSpecError` naming the offending
        field; nothing is simulated (or even queued) on bad input.
        """
        if not isinstance(raw, dict):
            raise JobSpecError("spec must be a JSON object")
        unknown = set(raw) - {
            "systems", "benchmarks", "refs", "seed", "scale", "engine", "jobs"
        }
        if unknown:
            raise JobSpecError(f"unknown spec field(s): {', '.join(sorted(unknown))}")

        def _names(key: str) -> Tuple[str, ...]:
            value = raw.get(key)
            if isinstance(value, str):
                value = [v.strip() for v in value.split(",") if v.strip()]
            if not isinstance(value, (list, tuple)) or not value or not all(
                isinstance(v, str) and v for v in value
            ):
                raise JobSpecError(
                    f"{key} must be a non-empty list of names "
                    f"(or a comma-separated string)"
                )
            return tuple(value)

        def _int(key: str, default: int, lo: int, hi: int) -> int:
            value = raw.get(key, default)
            if not isinstance(value, int) or isinstance(value, bool):
                raise JobSpecError(f"{key} must be an integer")
            if not lo <= value <= hi:
                raise JobSpecError(f"{key} must be in [{lo}, {hi}]")
            return value

        systems = _names("systems")
        benchmarks = _names("benchmarks")
        for bench in benchmarks:
            if bench.lower() not in BENCHMARK_NAMES:
                raise JobSpecError(
                    f"unknown benchmark {bench!r}; known: "
                    f"{', '.join(BENCHMARK_NAMES)}"
                )
        if len(systems) * len(benchmarks) > MAX_CELLS_PER_JOB:
            raise JobSpecError(
                f"matrix of {len(systems) * len(benchmarks)} cells exceeds "
                f"the per-job limit of {MAX_CELLS_PER_JOB}"
            )
        refs = _int("refs", 10_000, 1, MAX_REFS_PER_CELL)
        seed = _int("seed", 1, 0, 2**31 - 1)
        jobs = _int("jobs", 1, 1, 64)
        scale = raw.get("scale", DEFAULT_SCALE)
        if isinstance(scale, bool) or not isinstance(scale, (int, float)):
            raise JobSpecError("scale must be a number")
        scale = float(scale)
        if not 0.0 < scale <= 8.0:
            raise JobSpecError("scale must be in (0, 8]")
        engine = raw.get("engine")
        if engine is not None and engine not in ("interp", "batch"):
            raise JobSpecError("engine must be 'interp' or 'batch'")
        spec = cls(
            systems=systems, benchmarks=benchmarks, refs=refs, seed=seed,
            scale=scale, engine=engine, jobs=jobs,
        )
        # resolve every system eagerly: an unknown name or bad override
        # must 400 at submit time, not fail the job minutes later
        try:
            spec.resolve_configs()
        except ReproError as exc:
            raise JobSpecError(str(exc)) from exc
        return spec

    def resolve_configs(self) -> "OrderedDict[str, object]":
        return resolve_sweep_configs(list(self.systems))

    def to_dict(self) -> Dict[str, object]:
        return {
            "systems": list(self.systems),
            "benchmarks": list(self.benchmarks),
            "refs": self.refs,
            "seed": self.seed,
            "scale": self.scale,
            "engine": self.engine,
            "jobs": self.jobs,
        }


@dataclass
class Job:
    """One job's in-memory record (mirrored to ``job.json`` on disk)."""

    id: str
    spec: JobSpec
    state: str = "queued"
    created_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    error: Optional[str] = None
    cache: Optional[Dict[str, object]] = None
    resumed: bool = False  #: re-enqueued by startup recovery

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
            "cache": self.cache,
            "resumed": self.resumed,
        }


def _atomic_write_json(path: Path, payload: Dict[str, object]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.stem + ".", suffix=".tmp.json", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class JobManager:
    """Persistent queue of sweep jobs over one shared result store.

    ``data_dir`` layout: ``store/`` (the content-addressed result store)
    and ``jobs/<job_id>/`` (one directory per job, see module docstring).
    Construct, then call :meth:`start` — which first **recovers**: jobs
    found on disk in ``queued``/``running`` state (a previous server
    died) are re-enqueued and resume from their journals.
    """

    def __init__(
        self,
        data_dir: Union[str, Path, None] = None,
        job_workers: int = 2,
        store: Optional[ResultStore] = None,
        tracer=None,
    ) -> None:
        from .store import service_data_dir

        self.data_dir = Path(data_dir) if data_dir is not None else service_data_dir()
        self.jobs_dir = self.data_dir / "jobs"
        self.store = store if store is not None else ResultStore(self.data_dir / "store")
        self.tracer = tracer
        self.started_unix = time.time()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._job_workers = max(1, int(job_workers))

    # ---- lifecycle -------------------------------------------------------

    def start(self) -> List[str]:
        """Recover persisted jobs, then start accepting work.

        Returns the ids of the jobs that were re-enqueued (unfinished
        when the previous server stopped); completed/failed jobs are
        loaded for status queries but not re-run.
        """
        self._executor = ThreadPoolExecutor(
            max_workers=self._job_workers, thread_name_prefix="repro-job"
        )
        resumed: List[str] = []
        for job in self._load_persisted():
            with self._lock:
                self._jobs[job.id] = job
            if job.state in ("queued", "running"):
                job.state = "queued"
                job.resumed = True
                self._persist(job)
                self._emit("job_resumed", job)
                self._executor.submit(self._run, job.id)
                resumed.append(job.id)
        return resumed

    def close(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    def _load_persisted(self) -> List[Job]:
        jobs: List[Job] = []
        if not self.jobs_dir.is_dir():
            return jobs
        for job_file in sorted(self.jobs_dir.glob("*/job.json")):
            try:
                raw = json.loads(job_file.read_text(encoding="utf-8"))
                spec = JobSpec.from_dict(raw["spec"])
                job = Job(
                    id=str(raw["id"]),
                    spec=spec,
                    state=str(raw.get("state", "queued")),
                    created_unix=float(raw.get("created_unix", 0.0)),
                    started_unix=raw.get("started_unix"),
                    finished_unix=raw.get("finished_unix"),
                    error=raw.get("error"),
                    cache=raw.get("cache"),
                    resumed=bool(raw.get("resumed", False)),
                )
            except (OSError, ValueError, KeyError, TypeError, ReproError):
                continue  # a torn job.json is abandoned, never fatal
            if job.state not in JOB_STATES:
                continue
            jobs.append(job)
        jobs.sort(key=lambda j: j.created_unix)
        return jobs

    # ---- submission ------------------------------------------------------

    def submit(self, raw_spec: object) -> Job:
        """Validate and enqueue one sweep spec; returns the queued job.

        The job is persisted before this method returns, so a server
        crash between ``202 Accepted`` and execution loses nothing.
        """
        if self._executor is None:
            raise ReproError("job manager is not started")
        spec = JobSpec.from_dict(raw_spec)
        job = Job(id=uuid.uuid4().hex[:12], spec=spec)
        with self._lock:
            self._jobs[job.id] = job
        self._persist(job)
        self._emit("job_submitted", job)
        self._executor.submit(self._run, job.id)
        return job

    # ---- execution -------------------------------------------------------

    def _run(self, job_id: str) -> None:
        job = self.get(job_id)
        if job is None or job.state not in ("queued",):
            return
        job.state = "running"
        job.started_unix = time.time()
        self._persist(job)
        self._emit("job_started", job)
        recovery = RecoveryLog(tracer=self.tracer)
        try:
            configs = job.spec.resolve_configs()
            results = run_parallel_sweep(
                configs,
                list(job.spec.benchmarks),
                refs=job.spec.refs,
                seed=job.spec.seed,
                scale=job.spec.scale,
                jobs=job.spec.jobs,
                run_dir=self.run_dir(job.id),
                recovery=recovery,
                engine=job.spec.engine,
                result_store=self.store,
            )
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.finished_unix = time.time()
            self._persist(job)
            self._emit("job_failed", job)
            return
        job.cache = cache_summary(results, recovery)
        self._write_result(job, results)
        manifest = build_manifest(
            results,
            kind="service-job",
            command=f"POST /jobs {job.id}",
            refs=job.spec.refs,
            seed=job.spec.seed,
            scale=job.spec.scale,
            jobs=job.spec.jobs,
            wall_s=time.time() - (job.started_unix or time.time()),
            engine=job.spec.engine,
            extra={
                "cache": job.cache,
                "recovery": recovery.summary() if len(recovery) else {},
            },
        )
        write_manifest(manifest, self.job_dir(job.id), name="job")
        job.state = "done"
        job.finished_unix = time.time()
        self._persist(job)
        self._emit("job_completed", job)

    def _write_result(self, job: Job, results) -> None:
        cells = []
        for (system, bench), r in results.items():
            cells.append(
                {
                    "system": system,
                    "benchmark": bench,
                    "refs": r.refs,
                    "seed": r.seed,
                    "counters": r.counters.as_dict(),
                    "counters_sha": counters_digest(r.counters),
                    "miss_ratio_pct": round(r.miss_ratio, 6),
                    "stall_per_ref_cycles": round(r.stall_per_reference, 6),
                    "traffic_blocks": r.traffic_blocks,
                }
            )
        _atomic_write_json(
            self.job_dir(job.id) / "result.json",
            {"job_id": job.id, "cells": cells, "cache": job.cache},
        )

    # ---- paths & persistence --------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def run_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "run"

    def _persist(self, job: Job) -> None:
        _atomic_write_json(self.job_dir(job.id) / "job.json", job.to_dict())

    def _emit(self, kind: str, job: Job) -> None:
        if self.tracer is not None:
            self.tracer.emit(kind, now=0, detail=f"{job.id}: {job.state}")

    # ---- queries (called from the async HTTP layer; must stay fast) ------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self, limit: Optional[int] = None) -> List[Job]:
        with self._lock:
            jobs = list(self._jobs.values())
        jobs.reverse()  # newest first
        return jobs[:limit] if limit else jobs

    def progress(self, job_id: str) -> Optional[SweepProgress]:
        """A read-only observation of the job's run directory."""
        if self.get(job_id) is None:
            return None
        return SweepProgress(self.run_dir(job_id))

    def result_payload(self, job_id: str) -> Optional[Dict[str, object]]:
        """The persisted ``result.json`` of a finished job, or ``None``."""
        try:
            raw = (self.job_dir(job_id) / "result.json").read_text(encoding="utf-8")
            payload = json.loads(raw)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def stats(self) -> Dict[str, object]:
        """Aggregate server statistics for ``GET /stats``."""
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            total = len(self._jobs)
        return {
            "uptime_s": round(time.time() - self.started_unix, 3),
            "jobs": {"total": total, "by_state": by_state},
            "store": dict(self.store.stats(), entries=self.store.entry_count()),
            "data_dir": str(self.data_dir),
        }
