"""Persistent content-addressed result store: the service's memo table.

Under real traffic, repeated requests for the same configuration dominate
(the skewed-popularity access pattern the network-caching literature
documents), so the service memoises every completed cell by **content
key** — a SHA-256 over the same identity :func:`repro.obs.manifest.manifest_core`
keeps: the system-configuration digest and the content-addressed trace
key (benchmark, refs, seed, scale, format version).  Everything that
*cannot* change the counters is deliberately excluded:

* the execution **engine** (interpreter vs batch) — engines are
  bit-identical by construction (``repro check --diff`` proves it), so a
  cell simulated on one engine legitimately serves a request for the
  other;
* the **system display name** — two names resolving to the same
  configuration share one entry;
* worker counts, retries, wall-clock timings.

Entries are single JSON files named by their key, written with the same
atomic write-then-rename + digest-verify + quarantine discipline as the
trace cache (:mod:`repro.trace.io`): a crashed writer can never leave a
torn entry for other readers, a corrupt or tampered entry is renamed
``*.corrupt`` for post-mortem and the cell transparently re-simulated,
and concurrent writers racing on one key are harmless (last rename wins,
both bodies are identical by determinism).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

from ..faults import active_plan
from ..params import SystemConfig
from ..stats import Counters
from ..trace.io import trace_cache_key
from ..trace.record import TraceSpec
from ..sim.results import SimulationResult

STORE_VERSION = 1

#: environment variable: the service's data directory (store + job state)
SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"

#: environment variable: size budget (bytes) for the store; 0/unset = unbounded
STORE_MAX_BYTES_ENV = "REPRO_STORE_MAX_BYTES"


def _env_max_bytes() -> Optional[int]:
    raw = os.environ.get(STORE_MAX_BYTES_ENV)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def service_data_dir() -> Path:
    """The service's default data directory.

    Resolution order: ``$REPRO_SERVICE_DIR``, ``$XDG_CACHE_HOME/repro/service``,
    ``~/.cache/repro/service`` — the same ladder the trace cache climbs.
    """
    env = os.environ.get(SERVICE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "service"


def result_key(
    config: SystemConfig,
    benchmark: str,
    refs: int,
    seed: int,
    scale: float,
    n_procs: int = 32,
) -> str:
    """Stable content key for one simulation cell.

    Combines the configuration digest (covers every protocol/geometry/
    latency knob) with the trace-cache key (covers everything that shapes
    the reference stream, including the trace format version), plus the
    store's own version so a schema change can never misread old entries.
    """
    from ..obs.manifest import config_digest

    spec = TraceSpec(
        benchmark=benchmark.lower(), refs=refs, seed=seed, scale=scale,
        n_procs=n_procs,
    )
    canon = (
        f"store-v{STORE_VERSION}|config={config_digest(config)}"
        f"|trace={trace_cache_key(spec)}"
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:40]


def _payload_sha(body: Dict[str, object]) -> str:
    """Integrity digest over everything that must not rot in an entry."""
    canon = {k: v for k, v in body.items() if k not in _VOLATILE_FIELDS}
    return hashlib.sha256(
        json.dumps(canon, sort_keys=True).encode("utf-8")
    ).hexdigest()


#: entry fields that legitimately differ between identical cells (the
#: producing system's display name and timestamps are provenance, not
#: content — note the engine is not even recorded: it cannot matter)
_VOLATILE_FIELDS = ("payload_sha", "created_unix", "system")


class ResultStore:
    """On-disk ``result_key -> simulation outcome`` memo table.

    Thread-safe: the job manager's executor threads put/get concurrently,
    and the only shared mutable state (the hit/miss tally) sits behind a
    lock.  Process-safe: writes are atomic renames, reads verify digests.
    """

    #: stats() tally fields (all guarded by the lock)
    _TALLY_FIELDS = (
        "hits", "misses", "puts", "quarantined",
        "evicted", "put_failures", "quarantine_failed",
    )

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        max_bytes: Optional[int] = None,
        metrics=None,
    ) -> None:
        self.root = Path(root) if root is not None else service_data_dir() / "store"
        #: size budget for eviction; ``None`` = unbounded.  Explicit
        #: argument wins over ``$REPRO_STORE_MAX_BYTES``.
        self.max_bytes = max_bytes if max_bytes is not None else _env_max_bytes()
        #: optional :class:`repro.obs.registry.WallClockRegistry`; every
        #: tally below is mirrored into ``repro_store_<field>_total`` so
        #: the counts survive restarts via the registry snapshot
        self.metrics = metrics
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.quarantined = 0
        self.evicted = 0
        self.put_failures = 0
        self.quarantine_failed = 0
        #: True after a failed write until the next successful one: the
        #: store is running degraded (full disk, read-only root) and
        #: every cell simulates uncached.  Surfaced in ``/healthz``.
        self.degraded = False
        self.degraded_reason: Optional[str] = None

    # ---- paths -----------------------------------------------------------

    def path_for(self, key: str) -> Path:
        # two-level fan-out keeps directories small under millions of entries
        return self.root / key[:2] / f"{key}.json"

    # ---- reading ---------------------------------------------------------

    def get(
        self,
        config: SystemConfig,
        benchmark: str,
        refs: int,
        seed: int,
        scale: float,
        system: str = "",
    ) -> Optional[SimulationResult]:
        """The memoised result for one cell, or ``None`` on miss.

        A hit reconstructs a :class:`SimulationResult` carrying the exact
        counters and metrics the original simulation produced (verified
        against their digest), under the *caller's* system name and
        config.  Any corruption — unreadable JSON, digest mismatch,
        version skew — quarantines the entry and reports a miss, so the
        caller transparently re-simulates; the store can never serve
        wrong bytes, only fail to serve.
        """
        from ..obs.manifest import config_digest, counters_digest

        key = result_key(config, benchmark, refs, seed, scale)
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self._note("misses")
            return None
        try:
            body = json.loads(raw)
            if not isinstance(body, dict):
                raise ValueError("entry is not an object")
            if body.get("store_version") != STORE_VERSION:
                raise ValueError(f"store version {body.get('store_version')}")
            if body.get("payload_sha") != _payload_sha(body):
                raise ValueError("payload digest mismatch")
            if body.get("config_sha") != config_digest(config):
                raise ValueError("config digest mismatch")
            counters = Counters(
                **{k: int(v) for k, v in body["counters"].items()}
            )
            if counters_digest(counters) != body["counters_sha"]:
                raise ValueError("counters digest mismatch")
            if (int(body["req_refs"]) != int(refs)
                    or int(body["req_seed"]) != int(seed)):
                raise ValueError("identity fields disagree with the key")
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, exc)
            self._note("misses")
            return None
        self._note("hits")
        try:
            # refresh recency so size-bounded eviction is LRU, not FIFO
            os.utime(path, None)
        except OSError:
            pass  # read-only root: recency update is best-effort
        return SimulationResult(
            system=system or str(body.get("system", "")),
            benchmark=benchmark,
            config=config,
            counters=counters,
            refs=int(body["refs"]),
            seed=int(body["seed"]),
            elapsed_s=0.0,  # a cache hit costs no engine time
            metrics=body.get("metrics"),
        )

    # ---- writing ---------------------------------------------------------

    def put(
        self,
        result: SimulationResult,
        scale: float,
        refs: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Optional[Path]:
        """Memoise one completed cell; returns the entry path.

        ``refs``/``seed`` are the *requested* trace identity — what the
        next ``get`` for the same cell will key on.  They can differ from
        ``result.refs`` (the trace generator rounds the reference count
        up to fill whole per-processor streams), so the entry records
        both: the request identity in the key, the actual values for
        bit-identical reconstruction.  Callers that simulated exactly
        what they asked for may omit them.

        Atomic (temp file + ``os.replace``), so readers and concurrent
        writers of the same key never observe a torn entry.  I/O failure
        (full disk) returns ``None`` rather than raising: the store is an
        accelerator, never a single point of failure.
        """
        from ..obs.manifest import config_digest, counters_digest

        req_refs = result.refs if refs is None else int(refs)
        req_seed = result.seed if seed is None else int(seed)
        key = result_key(
            result.config, result.benchmark, req_refs, req_seed, scale
        )
        body: Dict[str, object] = {
            "store_version": STORE_VERSION,
            "key": key,
            "system": result.system,
            "benchmark": result.benchmark,
            "req_refs": req_refs,
            "req_seed": req_seed,
            "refs": result.refs,
            "seed": result.seed,
            "scale": scale,
            "config_sha": config_digest(result.config),
            "counters": result.counters.as_dict(),
            "counters_sha": counters_digest(result.counters),
            "metrics": result.metrics,
            "created_unix": time.time(),
        }
        body["payload_sha"] = _payload_sha(body)
        path = self.path_for(key)
        plan = active_plan()
        try:
            if plan is not None:
                plan.maybe_disk_full(f"store-put/{key}")
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=key[:8] + ".", suffix=".tmp.json", dir=path.parent
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(body, fh, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self._enter_degraded(exc)
            return None
        if plan is not None and plan.maybe_corrupt_store(
            path, f"store-entry/{key}"
        ):
            from ..trace.io import note_recovery

            note_recovery("fault_injected", f"corrupted store entry {key[:12]}")
        self._note("puts")
        self._leave_degraded()
        self._maybe_evict(keep=path)
        return path

    # ---- degradation (full disk, read-only root) -------------------------

    def _enter_degraded(self, exc: BaseException) -> None:
        from ..trace.io import note_recovery

        self._note("put_failures")
        with self._lock:
            first = not self.degraded
            self.degraded = True
            self.degraded_reason = str(exc)
        if first:
            note_recovery("store_degraded", f"writes failing: {exc}")
            if self.metrics is not None:
                try:
                    self.metrics.inc("repro_store_degradations_total")
                    self.metrics.set_gauge("repro_store_degraded", 1)
                except Exception:
                    pass

    def _leave_degraded(self) -> None:
        from ..trace.io import note_recovery

        with self._lock:
            recovered = self.degraded
            self.degraded = False
            self.degraded_reason = None
        if recovered:
            note_recovery("store_recovered", "result-store writes succeeding again")
        if recovered and self.metrics is not None:
            try:
                self.metrics.set_gauge("repro_store_degraded", 0)
            except Exception:
                pass

    # ---- size-bounded LRU eviction ---------------------------------------

    def size_bytes(self) -> int:
        """Total bytes of live entries (quarantined files excluded)."""
        total = 0
        if not self.root.is_dir():
            return 0
        for entry in self.root.glob("*/*.json"):
            try:
                total += entry.stat().st_size
            except OSError:
                pass  # lost a race with an evicting/quarantining peer
        return total

    def _maybe_evict(self, keep: Optional[Path] = None) -> int:
        """Evict least-recently-used entries until under ``max_bytes``.

        Concurrent-writer-safe: eviction is plain ``unlink`` of whole
        atomic entries, so a reader racing an eviction sees either a
        valid entry or a miss, never torn bytes; two servers evicting
        the same file tolerate each other's ``FileNotFoundError``.  The
        just-written entry (``keep``) is never evicted — the budget must
        not thrash the newest result.
        """
        from ..trace.io import note_recovery

        if self.max_bytes is None or not self.root.is_dir():
            return 0
        entries = []
        total = 0
        for entry in self.root.glob("*/*.json"):
            try:
                st = entry.stat()
            except OSError:
                continue
            total += st.st_size
            entries.append((st.st_mtime, st.st_size, entry))
        if total <= self.max_bytes:
            return 0
        entries.sort()  # oldest mtime (least recently touched) first
        removed = 0
        for _mtime, size, entry in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and entry == keep:
                continue
            try:
                entry.unlink()
            except OSError:
                continue  # a peer evicted or quarantined it first
            total -= size
            removed += 1
        if removed:
            self._note("evicted", removed)
            note_recovery(
                "result_store_evicted",
                f"{removed} LRU entr{'y' if removed == 1 else 'ies'} evicted "
                f"to stay under {self.max_bytes} bytes",
            )
        return removed

    # ---- maintenance -----------------------------------------------------

    def _quarantine(self, path: Path, exc: BaseException) -> None:
        from ..trace.io import note_recovery

        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
            self._note("quarantined")
            note_recovery("result_quarantined", f"{path.name}: {exc}")
        except OSError:
            # read-only root, or a directory squatting on the .corrupt
            # name: fall back to deleting the bad entry; if even that
            # fails the entry stays (and keeps reporting misses) — a
            # broken store degrades to re-simulation, never to a crash
            try:
                path.unlink()
                self._note("quarantined")
                note_recovery("result_quarantined", f"{path.name}: {exc}")
            except OSError:
                self._note("quarantine_failed")
                note_recovery(
                    "result_quarantine_failed",
                    f"{path.name}: could not quarantine or delete",
                )

    def _note(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)
        if self.metrics is not None:
            try:
                self.metrics.inc(f"repro_store_{field}_total", amount)
            except Exception:
                pass  # telemetry must never break the store

    def entry_count(self) -> int:
        """Entries currently on disk (excluding quarantined ones)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry (and quarantined file); returns the count."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for pattern in ("*/*.json", "*/*.json.corrupt"):
            for entry in self.root.glob(pattern):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, object]:
        """The in-process tally, plus the degradation flag.

        ``hits``/``misses``/``puts``/``quarantined`` as before, joined by
        ``evicted`` (LRU size-budget evictions), ``put_failures`` /
        ``quarantine_failed`` (I/O degradations survived), and
        ``degraded`` (True while writes are failing).
        """
        with self._lock:
            out: Dict[str, object] = {
                field: getattr(self, field) for field in self._TALLY_FIELDS
            }
            out["degraded"] = self.degraded
        return out
