"""The sweep service's HTTP layer: ``repro serve``.

A deliberately small asyncio server — raw :func:`asyncio.start_server`
over stream reader/writers, no ``http.server``, no third-party web
framework — because the protocol surface is tiny: JSON in, JSON out,
``Connection: close``.  All simulation work happens on the
:class:`~repro.service.jobs.JobManager`'s worker threads; handlers only
validate, enqueue, and read state, so the event loop never blocks on a
sweep.

Endpoints (full reference with examples in ``docs/SERVICE.md``):

==========================  ================================================
``GET /healthz``            health: ``{"ok": ..., "status": "ok" |
                            "degraded" | "draining"}``
``GET /stats``              server + result-store aggregate statistics
``POST /jobs``              submit a sweep spec; ``202`` with the queued
                            job, or ``503`` + ``Retry-After`` when
                            admission control sheds it
``GET /jobs``               recent jobs, newest first (``?limit=N``)
``GET /jobs/<id>``          one job's state plus a live progress snapshot
``POST /jobs/<id>/cancel``  cancel a queued/running job (idempotent)
``GET /jobs/<id>/result``   per-cell counters/digests of a finished job
``GET /jobs/<id>/top``      the ``repro top`` board (text; ``?format=json``)
``GET /top``                aggregate board over every known job
``GET /metrics``            wall-clock telemetry as Prometheus text
                            exposition format 0.0.4
==========================  ================================================

Errors are JSON too: ``{"error": "..."}`` with 400 (bad spec or body),
404 (unknown path or job), 405 (wrong method), 408 (request took longer
than ``$REPRO_REQUEST_TIMEOUT`` to arrive), 413 (oversized body), 503
(saturated or draining; carries a ``Retry-After`` header).

Every response carries an ``X-Request-Id`` header — the client's own id
when it sent one, a fresh one otherwise.  Accepted submissions stamp
that id into the job record, the sweep journal rows, and the run
manifest, and it becomes the trace id of the request's span tree
(``repro trace serve-export RUN_DIR``).

Resilience behaviours live at this layer too: slow-client read timeouts
(a stalled ``POST`` cannot pin the event loop's welcome mat), and the
deterministic ``reject``/``hang`` fault kinds from :mod:`repro.faults`,
which stress a client's retry/backoff and timeout handling without any
real saturation.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import sys
import time
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import JobSpecError, ServiceUnavailableError
from ..faults import active_plan
from ..obs.registry import METRICS_CONTENT_TYPE
from ..obs.spans import new_request_id, request_root_span_id
from .jobs import Job, JobManager, _env_float

#: request bodies larger than this are rejected with 413 (a sweep spec is
#: a few hundred bytes; anything bigger is a mistake or an attack)
MAX_BODY_BYTES = 64 * 1024
MAX_HEADER_BYTES = 16 * 1024

#: seconds a client gets to deliver its full request (env-overridable);
#: slow/stalled clients are answered 408 and disconnected
REQUEST_TIMEOUT_ENV = "REPRO_REQUEST_TIMEOUT"
DEFAULT_REQUEST_TIMEOUT = 10.0

#: seconds between terminal-job TTL garbage-collection sweeps
GC_INTERVAL_ENV = "REPRO_GC_INTERVAL"
DEFAULT_GC_INTERVAL = 30.0

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An error response decided mid-handler (status + message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _job_payload(job: Job) -> Dict[str, object]:
    return job.to_dict()


class ServiceApp:
    """Routes HTTP requests onto one :class:`JobManager`."""

    def __init__(
        self, manager: JobManager, request_timeout: Optional[float] = None
    ) -> None:
        self.manager = manager
        self.request_timeout = (
            request_timeout if request_timeout is not None
            else _env_float(REQUEST_TIMEOUT_ENV, DEFAULT_REQUEST_TIMEOUT)
        )
        manager.metrics.describe(
            "repro_http_requests_total",
            "HTTP requests answered, by endpoint template/method/status.",
        )
        manager.metrics.describe(
            "repro_http_request_seconds",
            "Wall-clock seconds from first request byte to response sent.",
        )

    # ---- request plumbing ------------------------------------------------

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        t0 = time.time()
        request_id = new_request_id()
        endpoint = "<bad-request>"
        method = ""
        status: Optional[int] = None
        try:
            try:
                read = self._read_request(reader)
                if self.request_timeout and self.request_timeout > 0:
                    method, target, body, client_id = await asyncio.wait_for(
                        read, timeout=self.request_timeout
                    )
                else:
                    method, target, body, client_id = await read
                if client_id:
                    request_id = client_id
            except asyncio.TimeoutError:
                status = 408
                await self._send(
                    writer, 408,
                    {"error": "request not received in time (slow client?)"},
                    extra_headers={"X-Request-Id": request_id},
                )
                return
            except HttpError as exc:
                status = exc.status
                await self._send(writer, exc.status, {"error": exc.message},
                                 extra_headers={"X-Request-Id": request_id})
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return  # client hung up or spoke garbage; nothing to answer
            endpoint = self._endpoint_label(target)
            t_read = time.time()
            await self._maybe_hang(method, target, body)
            headers: Dict[str, str] = {"X-Request-Id": request_id}
            ctx: Dict[str, object] = {"request_id": request_id, "job": None,
                                      "content_type": None}
            try:
                self._maybe_reject(method, target, body)
                status, payload, text = self._route(method, target, body, ctx)
            except ServiceUnavailableError as exc:
                status, text = 503, None
                payload = {
                    "error": exc.reason,
                    "retry_after_s": exc.retry_after_s,
                }
                headers["Retry-After"] = str(
                    max(1, math.ceil(exc.retry_after_s))
                )
            except HttpError as exc:
                status, payload, text = exc.status, {"error": exc.message}, None
            except JobSpecError as exc:
                status, payload, text = 400, {"error": str(exc)}, None
            except Exception as exc:  # noqa: BLE001 - last-resort boundary
                status = 500
                payload = {"error": f"{type(exc).__name__}: {exc}"}
                text = None
            t_routed = time.time()
            await self._send(writer, status, payload, text=text,
                             extra_headers=headers,
                             content_type=ctx.get("content_type"))
            job = ctx.get("job")
            if job is not None:
                self._attach_request_spans(
                    job, request_id, method, target,
                    t0=t0, t_read=t_read, t_routed=t_routed,
                )
        finally:
            if status is not None:
                self._observe_request(endpoint, method or "-", status,
                                      time.time() - t0)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _observe_request(
        self, endpoint: str, method: str, status: int, dur_s: float
    ) -> None:
        """Per-request telemetry; must never break a served response."""
        try:
            metrics = self.manager.metrics
            metrics.inc(
                "repro_http_requests_total",
                labels={"endpoint": endpoint, "method": method,
                        "status": str(status)},
            )
            metrics.observe("repro_http_request_seconds", max(0.0, dur_s),
                            labels={"endpoint": endpoint})
        except Exception:  # noqa: BLE001 - telemetry is strictly best-effort
            pass

    @staticmethod
    def _endpoint_label(target: str) -> str:
        """Template the path so metric label cardinality stays bounded."""
        try:
            path = urlsplit(target).path.rstrip("/") or "/"
        except ValueError:
            return "<bad-request>"
        if path in ("/healthz", "/stats", "/top", "/metrics"):
            return path
        parts = [p for p in path.split("/") if p]
        if parts and parts[0] == "jobs":
            if len(parts) == 1:
                return "/jobs"
            if len(parts) == 2:
                return "/jobs/{id}"
            if len(parts) == 3 and parts[2] in ("cancel", "result", "top"):
                return "/jobs/{id}/" + parts[2]
        return "<other>"

    def _attach_request_spans(
        self,
        job: Job,
        request_id: str,
        method: str,
        target: str,
        t0: float,
        t_read: float,
        t_routed: float,
    ) -> None:
        """Record the HTTP-side spans of an accepted submission.

        The root span id is derived from the request id, so the job
        manager's and sweep workers' spans parent to it without any
        cross-thread handshake.  Best-effort: a full disk must not turn
        into a failed submission.
        """
        try:
            now = time.time()
            root_id = request_root_span_id(request_id)

            def rec(span_id, parent, name, a, b, **args):
                payload = {
                    "trace_id": request_id,
                    "span_id": span_id,
                    "parent_id": parent,
                    "name": name,
                    "t0_unix": a,
                    "dur_s": max(0.0, b - a),
                    "proc": "http",
                }
                if args:
                    payload["args"] = args
                return payload

            path = urlsplit(target).path
            records = [
                rec(root_id, None, f"{method} {path}", t0, now,
                    job_id=job.id, request_id=request_id),
                rec(f"{root_id}-recv", root_id, "receive", t0, t_read),
                rec(f"{root_id}-route", root_id, "validate+enqueue",
                    t_read, t_routed),
                rec(f"{root_id}-resp", root_id, "respond", t_routed, now),
            ]
            self.manager.attach_request_spans(job.id, records)
        except Exception:  # noqa: BLE001 - tracing is strictly best-effort
            pass

    # ---- deterministic service-layer fault injection ---------------------

    @staticmethod
    def _fault_context(method: str, target: str, body: Optional[object]) -> str:
        """A canonical, process-independent context for one request."""
        spec = json.dumps(body, sort_keys=True) if body is not None else ""
        return f"{method} {target}|{spec}"

    async def _maybe_hang(
        self, method: str, target: str, body: Optional[object]
    ) -> None:
        plan = active_plan()
        if plan is None:
            return
        delay = plan.hang_delay(self._fault_context(method, target, body))
        if delay:
            await asyncio.sleep(delay)

    def _maybe_reject(
        self, method: str, target: str, body: Optional[object]
    ) -> None:
        """An injected 503, indistinguishable from real saturation."""
        if method != "POST":
            return
        plan = active_plan()
        if plan is None:
            return
        if plan.should_reject(self._fault_context(method, target, body)):
            try:
                self.manager.note_rejected("injected")
            except Exception:  # noqa: BLE001 - telemetry must not mask faults
                pass
            raise ServiceUnavailableError(
                "injected admission-control rejection",
                retry_after_s=self.manager.retry_after_s,
            )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[object], Optional[str]]:
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("empty request")
        try:
            method, target, _version = request_line.decode("ascii").split()
        except (UnicodeDecodeError, ValueError):
            raise HttpError(400, "malformed request line")
        content_length = 0
        header_bytes = 0
        request_id: Optional[str] = None
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise HttpError(413, "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            try:
                name, _, value = line.decode("latin-1").partition(":")
            except UnicodeDecodeError:
                raise HttpError(400, "malformed header")
            name = name.strip().lower()
            if name == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise HttpError(400, "bad Content-Length")
            elif name == "x-request-id":
                # adopt the client's correlation id (bounded: header bytes
                # already capped; keep it printable and reasonably short)
                candidate = value.strip()
                if 0 < len(candidate) <= 128 and candidate.isprintable():
                    request_id = candidate
        if content_length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body: Optional[object] = None
        if content_length > 0:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except ValueError:
                raise HttpError(400, "body is not valid JSON")
        return method.upper(), target, body, request_id

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        text: Optional[str] = None,
        extra_headers: Optional[Dict[str, str]] = None,
        content_type: Optional[str] = None,
    ) -> None:
        if text is not None:
            data = text.encode("utf-8")
            ctype = content_type or "text/plain; charset=utf-8"
        else:
            data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            ctype = "application/json"
        reason = _STATUS_TEXT.get(status, "Unknown")
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head + data)
        # a write timeout so a stalled reader cannot wedge the handler;
        # the kernel buffers our small responses, so this rarely fires
        drain = writer.drain()
        if self.request_timeout and self.request_timeout > 0:
            try:
                await asyncio.wait_for(drain, timeout=self.request_timeout)
            except asyncio.TimeoutError:
                writer.close()  # abandon the stalled client
        else:
            await drain

    # ---- routing ---------------------------------------------------------

    def _route(
        self,
        method: str,
        target: str,
        body: Optional[object],
        ctx: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, Dict[str, object], Optional[str]]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        parts = [p for p in path.split("/") if p]

        if path == "/healthz":
            self._require(method, "GET")
            health = self.manager.health()
            return 200, {"ok": health == "ok", "status": health}, None
        if path == "/stats":
            self._require(method, "GET")
            return 200, self.manager.stats(), None
        if path == "/metrics":
            self._require(method, "GET")
            if ctx is not None:
                ctx["content_type"] = METRICS_CONTENT_TYPE
            return 200, {}, self.manager.metrics.expose()
        if path == "/top":
            self._require(method, "GET")
            return self._aggregate_top(query)
        if parts and parts[0] == "jobs":
            if len(parts) == 1:
                if method == "POST":
                    request_id = ctx.get("request_id") if ctx else None
                    job = self.manager.submit(body, request_id=request_id)
                    if ctx is not None:
                        ctx["job"] = job
                    return 202, _job_payload(job), None
                self._require(method, "GET", "POST")
                limit = self._int_param(query, "limit", default=50)
                jobs = [_job_payload(j) for j in self.manager.list_jobs(limit)]
                return 200, {"jobs": jobs}, None
            job = self.manager.get(parts[1])
            if job is None:
                raise HttpError(404, f"no such job: {parts[1]}")
            if len(parts) == 2:
                self._require(method, "GET")
                payload = _job_payload(job)
                progress = self.manager.progress(job.id)
                if progress is not None:
                    payload["progress"] = progress.snapshot(jobs=job.spec.jobs)
                return 200, payload, None
            if len(parts) == 3 and parts[2] == "cancel":
                self._require(method, "POST")
                cancelled = self.manager.cancel(job.id)
                if cancelled is None:  # raced with TTL garbage collection
                    raise HttpError(404, f"no such job: {parts[1]}")
                return 200, _job_payload(cancelled), None
            if len(parts) == 3 and parts[2] == "result":
                self._require(method, "GET")
                if job.state != "done":
                    raise HttpError(
                        404, f"job {job.id} has no result (state: {job.state})"
                    )
                payload = self.manager.result_payload(job.id)
                if payload is None:
                    raise HttpError(500, f"result file for {job.id} unreadable")
                return 200, payload, None
            if len(parts) == 3 and parts[2] == "top":
                self._require(method, "GET")
                progress = self.manager.progress(job.id)
                if progress is None:
                    raise HttpError(404, f"no run directory for {job.id}")
                if query.get("format", [""])[0] == "json":
                    return 200, progress.snapshot(jobs=job.spec.jobs), None
                return 200, {}, progress.render(jobs=job.spec.jobs) + "\n"
        raise HttpError(404, f"no such endpoint: {path}")

    def _aggregate_top(
        self, query: Dict[str, list]
    ) -> Tuple[int, Dict[str, object], Optional[str]]:
        """One board over every job: the service-wide ``repro top``."""
        jobs = self.manager.list_jobs()
        boards = []
        totals = {"total_cells": 0, "done_cells": 0, "cached_cells": 0,
                  "simulated_refs": 0}
        for job in jobs:
            progress = self.manager.progress(job.id)
            snap = progress.snapshot(jobs=job.spec.jobs) if progress else {}
            snap["job_id"] = job.id
            snap["state"] = job.state
            boards.append(snap)
            for field in totals:
                totals[field] += int(snap.get(field, 0) or 0)
        payload: Dict[str, object] = {
            "jobs": boards,
            "totals": totals,
            "store": self.manager.store.stats(),
        }
        if query.get("format", [""])[0] == "json":
            return 200, payload, None
        lines = [
            f"service {self.manager.data_dir}",
            f"jobs     {len(jobs)} known, "
            f"{sum(1 for j in jobs if j.state == 'running')} running",
            f"cells    {totals['done_cells']}/{totals['total_cells']} done, "
            f"{totals['cached_cells']} from the result store",
            f"refs     {totals['simulated_refs']:,} simulated",
            "store    "
            + ", ".join(
                f"{k}={v}" for k, v in sorted(self.manager.store.stats().items())
            ),
        ]
        return 200, payload, "\n".join(lines) + "\n"

    @staticmethod
    def _require(method: str, *allowed: str) -> None:
        if method not in allowed:
            raise HttpError(405, f"method {method} not allowed here")

    @staticmethod
    def _int_param(query: Dict[str, list], name: str, default: int) -> int:
        raw = query.get(name, [None])[0]
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise HttpError(400, f"query parameter {name} must be an integer")
        if value < 0:
            raise HttpError(400, f"query parameter {name} must be >= 0")
        return value


async def _gc_loop(manager: JobManager, interval_s: float) -> None:
    """Periodic TTL reaping of terminal jobs (a no-op without a TTL).

    Doubles as the telemetry heartbeat: each tick refreshes the queue
    gauges and persists the metrics snapshot, bounding how much counter
    history a SIGKILL can lose between job completions.
    """
    while True:
        await asyncio.sleep(interval_s)
        try:
            manager.gc_terminal_jobs()
            manager.flush_telemetry()
        except Exception:  # noqa: BLE001 - GC must never kill the server
            pass


async def serve(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8752,
    ready_event: Optional[asyncio.Event] = None,
    out=None,
    drain_timeout: Optional[float] = None,
) -> None:
    """Run the service until cancelled (or SIGINT/SIGTERM).

    Prints one machine-parseable ``listening on http://HOST:PORT`` line
    once the socket is bound — ``scripts/load_test.py --spawn`` and the
    CI service job both key off it.  ``port=0`` binds an ephemeral port
    (the printed line reports the real one).

    The first SIGINT/SIGTERM starts a **graceful drain**: submissions are
    503'd, status endpoints keep answering (``/healthz`` reports
    ``draining``), queued jobs keep their persisted queue order, and
    running jobs get :func:`JobManager.drain`'s timeout to finish before
    being parked back to ``queued`` at a cell boundary.  A second signal
    abandons the wait and exits immediately — the journal makes even
    that safe.
    """
    stream = out if out is not None else sys.stdout
    app = ServiceApp(manager)
    resumed = manager.start()
    if resumed:
        stream.write(f"resumed {len(resumed)} unfinished job(s): "
                     f"{', '.join(resumed)}\n")
    server = await asyncio.start_server(app.handle, host=host, port=port)
    actual_port = server.sockets[0].getsockname()[1]
    stream.write(f"listening on http://{host}:{actual_port}\n")
    stream.flush()
    if ready_event is not None:
        ready_event.set()
    stop = asyncio.Event()
    force = asyncio.Event()

    def _on_signal() -> None:
        if stop.is_set():
            force.set()
        else:
            stop.set()

    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, _on_signal)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support
    gc_interval = _env_float(GC_INTERVAL_ENV, DEFAULT_GC_INTERVAL)
    gc_task = asyncio.ensure_future(
        _gc_loop(manager, gc_interval or DEFAULT_GC_INTERVAL)
    )
    try:
        async with server:
            await stop.wait()
            manager.begin_drain()
            stream.write("draining: refusing new jobs, waiting for "
                         "running sweeps to checkpoint\n")
            stream.flush()
            drain_call = loop.run_in_executor(
                None, lambda: manager.drain(timeout=drain_timeout)
            )
            force_wait = asyncio.ensure_future(force.wait())
            done, _pending = await asyncio.wait(
                {drain_call, force_wait},
                return_when=asyncio.FIRST_COMPLETED,
            )
            force_wait.cancel()
            if drain_call in done:
                summary = drain_call.result()
                stream.write(
                    "drained: {queued} job(s) left queued, {aborted} "
                    "parked at a cell boundary\n".format(**summary)
                )
                stream.flush()
            else:
                # second signal: abort every running sweep at its next
                # cell boundary so the pending drain unblocks fast
                manager.abort_running()
                stream.write("drain interrupted: exiting immediately "
                             "(journals preserve all completed cells)\n")
                stream.flush()
    finally:
        gc_task.cancel()
        manager.close(wait=False)


def run_service(
    data_dir=None,
    host: str = "127.0.0.1",
    port: int = 8752,
    job_workers: int = 2,
    max_queued_jobs: Optional[int] = None,
    max_inflight_cells: Optional[int] = None,
    job_ttl_s: Optional[float] = None,
    drain_timeout: Optional[float] = None,
) -> None:
    """Blocking entry point used by ``repro serve``."""
    manager = JobManager(
        data_dir=data_dir,
        job_workers=job_workers,
        max_queued_jobs=max_queued_jobs,
        max_inflight_cells=max_inflight_cells,
        job_ttl_s=job_ttl_s,
    )
    try:
        asyncio.run(serve(manager, host=host, port=port,
                          drain_timeout=drain_timeout))
    except KeyboardInterrupt:
        pass
