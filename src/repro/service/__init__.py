"""Sweep-as-a-service: async job server + content-addressed result cache.

The package composes the ingredients the rest of the tree already
provides — manifest config digests (:mod:`repro.obs.manifest`), the
crash-safe sweep journal (:mod:`repro.sim.checkpoint`), the supervised
worker pool (:mod:`repro.sim.parallel`), and the live monitor
(:mod:`repro.obs.monitor`) — into a long-running HTTP service:

* :mod:`repro.service.store` — a persistent **content-addressed result
  store**: every completed ``(config digest, trace key)`` cell is
  memoised on disk with SHA-256 integrity, so repeated requests for the
  same configuration (the common case under heavy traffic) are an O(1)
  lookup instead of a re-simulation;
* :mod:`repro.service.jobs` — a :class:`~repro.service.jobs.JobManager`
  holding a persistent, restart-resumable queue of sweep jobs, each run
  through the fault-tolerant pool with the store consulted per cell;
* :mod:`repro.service.app` — the asyncio HTTP front end behind
  ``repro serve`` (submit a sweep spec as JSON, get a job id; status,
  results, and a ``repro top``-style progress stream are endpoints).

See ``docs/SERVICE.md`` for the architecture, the endpoint reference,
and the cache-key semantics; ``scripts/load_test.py`` measures the
scale claim (thousands of zipfian submissions, cache-hit rate, p99).
"""

from .app import ServiceApp, run_service
from .jobs import Job, JobManager, JobSpec
from .store import ResultStore, result_key, service_data_dir

__all__ = [
    "Job",
    "JobManager",
    "JobSpec",
    "ResultStore",
    "ServiceApp",
    "result_key",
    "run_service",
    "service_data_dir",
]
