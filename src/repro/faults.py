"""Deterministic fault injection for the sweep resilience layer.

Every recovery path in the sweep stack — per-cell retries, worker-loss
redispatch, cell timeouts, trace-cache quarantine-and-regenerate — is
exercised by *injected* faults rather than trusted on faith.  A
:class:`FaultPlan` is a seeded schedule parsed from the ``REPRO_FAULTS``
environment variable (or the ``repro sweep --inject-faults`` flag, which
sets it so worker processes inherit the same schedule).

Schedule grammar
----------------
Entries separated by ``;`` (or ``,``)::

    seed=<int>            PRNG seed for the schedule (default 0)
    <kind>=<rate>[@<attempts>][:<seconds>]

where ``kind`` is one of

* ``cell``    — raise a transient :class:`~repro.errors.InjectedFaultError`
  at the start of a cell attempt (exercises retry/backoff);
* ``io``      — raise a transient ``OSError`` when storing a trace-cache
  entry (exercises cache-write degradation);
* ``corrupt`` — bit-flip and truncate a just-written trace-cache file
  (exercises digest verification + quarantine + regenerate);
* ``kill``    — ``os._exit`` the worker process mid-cell (exercises
  lost-worker detection and redispatch; never fires in the parent);
* ``slow``    — sleep ``seconds`` (default 0.2) before running the cell
  (exercises per-cell wall-clock timeouts).

Service-layer kinds (injected by :mod:`repro.service`, same hash-based
process-independent decisions):

* ``reject``  — the job server 503s a submission as if admission control
  were saturated (exercises client retry/backoff on ``Retry-After``);
* ``hang``    — the server sleeps ``seconds`` (default 1.0) before
  answering a request (exercises client-side request timeouts);
* ``disk-full``     — raise ``ENOSPC`` when writing a result-store entry
  (exercises degrade-to-uncached operation);
* ``store-corrupt`` — bit-flip and truncate a just-written result-store
  entry (exercises digest verification + quarantine + re-simulation).

``rate`` in [0, 1] selects which contexts fault: the decision for a
context is ``sha256(seed|kind|context) < rate`` — deterministic, order-
and process-independent, so the same cells fault in serial and parallel
runs.  ``@attempts`` (default 1) makes the fault *transient*: a selected
cell fails its first N attempts and then succeeds, so a retry budget of
N recovers it while a budget below N exercises
:class:`~repro.errors.RetryExhaustedError`.

Example::

    REPRO_FAULTS="seed=7;cell=0.4;io=0.3;kill=0.2;slow=0.25@1:0.1"

See ``docs/ROBUSTNESS.md`` for the failure-mode table mapping each kind
to the recovery path it exercises.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Dict, Optional, Tuple

from .errors import ConfigurationError, InjectedFaultError

#: environment variable carrying the fault schedule (inherited by workers)
FAULTS_ENV = "REPRO_FAULTS"

#: exit code used by injected worker kills (distinctive in ps/CI logs)
KILL_EXIT_CODE = 86

KINDS = (
    "cell", "io", "corrupt", "kill", "slow",
    # service-layer kinds (repro.service)
    "reject", "hang", "disk-full", "store-corrupt",
)

#: kinds that take a ``:seconds`` duration suffix, with the FaultPlan
#: attribute holding it
_TIMED = {"slow": "slow_s", "hang": "hang_s"}

#: kinds decided per (context, attempt) — the attempt number travels with
#: the dispatched cell, so a respawned worker sees the same decision
_ATTEMPT_GATED = ("cell", "kill", "slow")

# process-local flag: kill faults only ever fire inside a sweep worker,
# never in the parent (or a serial run), which they would take down whole
_in_worker = False


def mark_worker_process() -> None:
    """Called once by each sweep worker; enables ``kill`` faults here."""
    global _in_worker
    _in_worker = True


def in_worker_process() -> bool:
    return _in_worker


class FaultPlan:
    """A parsed, seeded fault schedule (see module docstring for grammar)."""

    __slots__ = ("seed", "rates", "attempts", "slow_s", "hang_s", "_fired")

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Dict[str, float]] = None,
        attempts: Optional[Dict[str, int]] = None,
        slow_s: float = 0.2,
        hang_s: float = 1.0,
    ) -> None:
        self.seed = int(seed)
        self.rates = {k: float(v) for k, v in (rates or {}).items()}
        self.attempts = {k: int(v) for k, v in (attempts or {}).items()}
        self.slow_s = float(slow_s)
        self.hang_s = float(hang_s)
        for kind, rate in self.rates.items():
            if kind not in KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; known kinds: {', '.join(KINDS)}"
                )
            if not (0.0 <= rate <= 1.0):
                raise ConfigurationError(f"fault rate for {kind!r} must be in [0, 1]")
        for kind, n in self.attempts.items():
            if n < 1:
                raise ConfigurationError(f"fault attempts for {kind!r} must be >= 1")
        if self.slow_s <= 0:
            raise ConfigurationError("slow fault duration must be positive")
        if self.hang_s <= 0:
            raise ConfigurationError("hang fault duration must be positive")
        # per-process fire tally for the trace-layer kinds (io/corrupt),
        # which have no attempt number travelling with them
        self._fired: Dict[Tuple[str, str], int] = {}

    # ---- parsing ---------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        seed = 0
        rates: Dict[str, float] = {}
        attempts: Dict[str, int] = {}
        timed = {"slow_s": 0.2, "hang_s": 1.0}
        for raw in text.replace(",", ";").split(";"):
            entry = raw.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ConfigurationError(
                    f"bad fault entry {entry!r}: expected key=value"
                )
            key, value = (part.strip() for part in entry.split("=", 1))
            try:
                if key == "seed":
                    seed = int(value)
                    continue
                if ":" in value:
                    value, secs = value.split(":", 1)
                    if key not in _TIMED:
                        raise ConfigurationError(
                            f"only {'/'.join(sorted(_TIMED))} take a "
                            f":seconds suffix, not {key!r}"
                        )
                    timed[_TIMED[key]] = float(secs)
                if "@" in value:
                    value, n = value.split("@", 1)
                    attempts[key] = int(n)
                rates[key] = float(value)
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad fault entry {entry!r}: {exc}"
                ) from exc
        return cls(seed=seed, rates=rates, attempts=attempts, **timed)

    def spec(self) -> str:
        """A canonical spec string that re-parses to this plan."""
        parts = [f"seed={self.seed}"]
        for kind in KINDS:
            if kind in self.rates:
                entry = f"{kind}={self.rates[kind]:g}@{self.attempts.get(kind, 1)}"
                if kind in _TIMED:
                    entry += f":{getattr(self, _TIMED[kind]):g}"
                parts.append(entry)
        return ";".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec()!r})"

    # ---- decisions -------------------------------------------------------

    def _selected(self, kind: str, context: str) -> bool:
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}|{kind}|{context}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64 < rate

    def should(self, kind: str, context: str, attempt: int = 0) -> bool:
        """Does ``kind`` fire for ``context`` on this attempt?

        Attempt-gated kinds (cell/kill/slow) fire while ``attempt`` is
        below the kind's ``@attempts`` bound; io/corrupt instead fire at
        most ``@attempts`` times per process for a given context.
        """
        if not self._selected(kind, context):
            return False
        bound = self.attempts.get(kind, 1)
        if kind in _ATTEMPT_GATED:
            return attempt < bound
        tally_key = (kind, context)
        if self._fired.get(tally_key, 0) >= bound:
            return False
        self._fired[tally_key] = self._fired.get(tally_key, 0) + 1
        return True

    # ---- injection sites -------------------------------------------------

    def maybe_kill(self, context: str, attempt: int) -> None:
        if _in_worker and self.should("kill", context, attempt):
            os._exit(KILL_EXIT_CODE)

    def maybe_slow(self, context: str, attempt: int) -> None:
        if self.should("slow", context, attempt):
            time.sleep(self.slow_s)

    def maybe_fail_cell(self, context: str, attempt: int) -> None:
        if self.should("cell", context, attempt):
            raise InjectedFaultError(
                f"injected transient cell fault ({context}, attempt {attempt + 1})"
            )

    def maybe_io_error(self, context: str) -> None:
        if self.should("io", context):
            raise OSError(f"injected transient I/O fault ({context})")

    # ---- service-layer injection sites -----------------------------------

    def should_reject(self, context: str) -> bool:
        """Admission-control rejection: 503 this submission on purpose."""
        return self.should("reject", context)

    def hang_delay(self, context: str) -> Optional[float]:
        """Seconds the server should stall this request, or ``None``.

        The sleep itself happens in the (async) caller — this module
        stays event-loop-free.
        """
        return self.hang_s if self.should("hang", context) else None

    def maybe_disk_full(self, context: str) -> None:
        """Raise ``ENOSPC`` as if the result store's disk just filled."""
        if self.should("disk-full", context):
            import errno

            raise OSError(
                errno.ENOSPC, f"injected disk-full fault ({context})"
            )

    def maybe_corrupt_store(self, path: object, context: str) -> bool:
        """Mangle a just-written result-store entry; True when it fired."""
        return self._corrupt("store-corrupt", path, context)

    def maybe_corrupt_file(self, path: object, context: str) -> bool:
        """Bit-flip and truncate ``path`` in place; True when it fired."""
        return self._corrupt("corrupt", path, context)

    def _corrupt(self, kind: str, path: object, context: str) -> bool:
        if not self.should(kind, context):
            return False
        try:
            with open(path, "r+b") as fh:
                data = fh.read()
                keep = max(16, len(data) * 2 // 3)
                flip = min(len(data) - 1, keep // 2)
                mangled = bytearray(data[:keep])
                if mangled:
                    mangled[flip] ^= 0xFF
                fh.seek(0)
                fh.write(bytes(mangled))
                fh.truncate()
        except OSError:
            return False
        return True


# ---------------------------------------------------------------------------
# the process-wide active plan (parsed from the environment)
# ---------------------------------------------------------------------------

_cached_env: Optional[str] = None
_cached_plan: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan from ``$REPRO_FAULTS``, or None when injection is off.

    Parsed once per distinct env value; worker processes inherit the
    variable, so parent and workers run the same schedule.
    """
    global _cached_env, _cached_plan
    raw = os.environ.get(FAULTS_ENV) or None
    if raw != _cached_env:
        _cached_env = raw
        _cached_plan = FaultPlan.parse(raw) if raw else None
    return _cached_plan


def cell_context(system: str, benchmark: str, seed: int) -> str:
    """The canonical fault context for one sweep cell."""
    return f"{system}/{benchmark}/seed{seed}"
