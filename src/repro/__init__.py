"""repro — reproduction of *The Effectiveness of SRAM Network Caches in
Clustered DSMs* (Moga & Dubois, HPCA 1998).

A trace-driven simulator for clustered CC-NUMA machines with every
remote-data-cache organisation the paper evaluates: SRAM network victim
caches (block- and page-indexed), dirty-inclusion SRAM NCs, large DRAM
NCs, infinite NCs, Simple-COMA-style page caches with R-NUMA directory
relocation counters or the paper's NC-set victimisation counters, and
fixed/adaptive relocation thresholds — plus deterministic synthetic
SPLASH-2-like workload generators for the eight Table 3 benchmarks.

Quickstart
----------
>>> from repro import simulate
>>> r = simulate("vbp5", "radix", refs=100_000)
>>> print(f"{r.miss_ratio:.2f}% miss, {r.stall_per_reference:.2f} cy/ref")
... # doctest: +SKIP

See ``examples/`` for complete scenarios, ``repro.experiments`` for the
per-figure reproduction drivers, and DESIGN.md for the system inventory.
"""

from .errors import (
    CellTimeoutError,
    CheckpointError,
    ConfigurationError,
    CorruptTraceError,
    InjectedFaultError,
    ProtocolError,
    ReproError,
    RetryExhaustedError,
    TraceError,
    UnknownBenchmarkError,
    UnknownSystemError,
)
from .faults import FaultPlan, active_plan
from .params import (
    CacheGeometry,
    LatencyModel,
    NCConfig,
    NCIndexing,
    NCKind,
    PCConfig,
    RelocationCounters,
    SystemConfig,
    ThresholdPolicy,
)
from .stats import Counters, MissClass, Outcome
from .obs.events import EventTracer, TraceEvent
from .obs.manifest import build_manifest, manifest_core, write_manifest
from .obs.metrics import MetricsRegistry, aggregate_metrics
from .obs.monitor import SweepProgress
from .obs.profile import (
    STALL_COMPONENTS,
    StallProfiler,
    attributed_stall,
    stall_breakdown,
)
from .obs.timeline import export_chrome_trace, validate_chrome_trace
from .sim.checkpoint import SweepJournal
from .sim.parallel import (
    RecoveryLog,
    SweepPolicy,
    default_jobs,
    resolve_policy,
    run_parallel_sweep,
    sweep_metrics,
    throughput_report,
    timed_sweep,
)
from .sim.results import SimulationResult
from .sim.runner import (
    DEFAULT_REFS,
    DEFAULT_SCALE,
    clear_trace_cache,
    get_trace,
    run_trace,
    simulate,
    sweep,
)
from .trace.io import clear_disk_trace_cache, trace_cache_dir
from .sim.simulator import Simulator
from .system.builder import SYSTEM_NAMES, build_machine, system_config
from .trace.record import Trace, TraceSpec
from .trace.synthetic import BENCHMARK_NAMES, BENCHMARKS, generate_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "TraceError",
    "CorruptTraceError",
    "CellTimeoutError",
    "RetryExhaustedError",
    "CheckpointError",
    "InjectedFaultError",
    "UnknownSystemError",
    "UnknownBenchmarkError",
    # resilience
    "FaultPlan",
    "active_plan",
    "SweepJournal",
    "SweepPolicy",
    "RecoveryLog",
    "resolve_policy",
    # configuration
    "SystemConfig",
    "CacheGeometry",
    "LatencyModel",
    "NCConfig",
    "NCKind",
    "NCIndexing",
    "PCConfig",
    "RelocationCounters",
    "ThresholdPolicy",
    "SYSTEM_NAMES",
    "system_config",
    "build_machine",
    # simulation
    "Simulator",
    "SimulationResult",
    "Counters",
    "MissClass",
    "Outcome",
    "simulate",
    "sweep",
    "run_trace",
    "get_trace",
    "clear_trace_cache",
    "clear_disk_trace_cache",
    "trace_cache_dir",
    "run_parallel_sweep",
    "default_jobs",
    "throughput_report",
    "timed_sweep",
    "DEFAULT_REFS",
    "DEFAULT_SCALE",
    # observability
    "EventTracer",
    "TraceEvent",
    "MetricsRegistry",
    "aggregate_metrics",
    "sweep_metrics",
    "build_manifest",
    "manifest_core",
    "write_manifest",
    "STALL_COMPONENTS",
    "StallProfiler",
    "attributed_stall",
    "stall_breakdown",
    "export_chrome_trace",
    "validate_chrome_trace",
    "SweepProgress",
    # traces
    "Trace",
    "TraceSpec",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "generate_trace",
]
