"""repro.obs — the observability layer.

Cooperating pieces, all optional and all zero-cost when unused:

* :mod:`repro.obs.events` — structured event tracing.  An
  :class:`~repro.obs.events.EventTracer` attached to a
  :class:`~repro.sim.simulator.Simulator` records every protocol-level
  event (NC insert/evict/hit/pollution, page relocations, directory
  transactions, invalidations, owner flushes, bus cache-to-cache
  supplies) into a bounded in-memory ring buffer and, optionally, a
  JSONL sink.  With no tracer attached the simulator's hot path is
  untouched: the only cost is an ``is None`` check on the miss path,
  and the inlined L1 read-hit loop carries no check at all.

* :mod:`repro.obs.metrics` — a deterministic metrics registry.  Every
  :class:`~repro.sim.results.SimulationResult` carries a snapshot of
  named counters, gauges, and histograms; snapshots merge
  deterministically, so a parallel sweep aggregates to bit-identical
  totals as a serial one (pinned by ``tests/sim/test_obs.py``).

* :mod:`repro.obs.manifest` — run manifests.  A sweep (or a ``repro
  report`` run) can write a JSON manifest recording the exact inputs
  (config digests, trace cache keys, seeds, git SHA) and outputs
  (counter digests, metrics, timings) so every results artifact is
  reproducible from its manifest alone.

* :mod:`repro.obs.profile` — the simulated-time stall profiler.  A
  :class:`~repro.obs.profile.StallProfiler` attributes every remote
  reference's stall to its Eq. 1 component (exactly: the attribution
  sums integer-equal to the run's remote read stall) and records
  windowed interval time-series of how the caches evolve over a trace.

* :mod:`repro.obs.timeline` — Chrome/Perfetto trace-event export.
  ``repro trace export`` renders a traced run as ``trace.json`` in
  simulated bus-cycle time, openable in chrome://tracing or Perfetto.

* :mod:`repro.obs.monitor` — live sweep monitoring.  ``repro top``
  tails a running sweep's ``run.json`` / ``journal.jsonl`` /
  ``recovery.jsonl`` and renders per-cell progress, refs/sec, an ETA,
  and recovery counts, without touching the run directory.

See ``docs/OBSERVABILITY.md`` for the event schema, the metrics
catalog, the profiler key layout, and the manifest format.
"""

from .events import (
    CHECK_EVENT_KINDS,
    EVENT_KINDS,
    SERVICE_EVENT_KINDS,
    SWEEP_EVENT_KINDS,
    EventTracer,
    TraceEvent,
)
from .manifest import (
    MANIFEST_ENV,
    build_manifest,
    manifest_core,
    manifest_dir_from_env,
    write_manifest,
)
from .metrics import (
    Histogram,
    MetricsRegistry,
    aggregate_metrics,
    merge_snapshots,
    run_metrics,
)
from .monitor import SweepProgress, watch
from .profile import (
    DEFAULT_WINDOW,
    PROFILE_ENV,
    PROFILE_WINDOW_ENV,
    STALL_COMPONENTS,
    StallProfiler,
    attributed_stall,
    profiled_cells,
    profiling_enabled,
    stall_breakdown,
)
from .timeline import (
    export_chrome_trace,
    trace_simulation,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "CHECK_EVENT_KINDS",
    "EVENT_KINDS",
    "SERVICE_EVENT_KINDS",
    "SWEEP_EVENT_KINDS",
    "EventTracer",
    "TraceEvent",
    "Histogram",
    "MetricsRegistry",
    "aggregate_metrics",
    "merge_snapshots",
    "run_metrics",
    "MANIFEST_ENV",
    "build_manifest",
    "manifest_core",
    "manifest_dir_from_env",
    "write_manifest",
    "DEFAULT_WINDOW",
    "PROFILE_ENV",
    "PROFILE_WINDOW_ENV",
    "STALL_COMPONENTS",
    "StallProfiler",
    "attributed_stall",
    "profiled_cells",
    "profiling_enabled",
    "stall_breakdown",
    "export_chrome_trace",
    "trace_simulation",
    "validate_chrome_trace",
    "write_chrome_trace",
    "SweepProgress",
    "watch",
]
