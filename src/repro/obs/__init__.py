"""repro.obs — the observability layer.

Cooperating pieces, all optional and all zero-cost when unused:

* :mod:`repro.obs.events` — structured event tracing.  An
  :class:`~repro.obs.events.EventTracer` attached to a
  :class:`~repro.sim.simulator.Simulator` records every protocol-level
  event (NC insert/evict/hit/pollution, page relocations, directory
  transactions, invalidations, owner flushes, bus cache-to-cache
  supplies) into a bounded in-memory ring buffer and, optionally, a
  JSONL sink.  With no tracer attached the simulator's hot path is
  untouched: the only cost is an ``is None`` check on the miss path,
  and the inlined L1 read-hit loop carries no check at all.

* :mod:`repro.obs.metrics` — a deterministic metrics registry.  Every
  :class:`~repro.sim.results.SimulationResult` carries a snapshot of
  named counters, gauges, and histograms; snapshots merge
  deterministically, so a parallel sweep aggregates to bit-identical
  totals as a serial one (pinned by ``tests/sim/test_obs.py``).

* :mod:`repro.obs.manifest` — run manifests.  A sweep (or a ``repro
  report`` run) can write a JSON manifest recording the exact inputs
  (config digests, trace cache keys, seeds, git SHA) and outputs
  (counter digests, metrics, timings) so every results artifact is
  reproducible from its manifest alone.

* :mod:`repro.obs.profile` — the simulated-time stall profiler.  A
  :class:`~repro.obs.profile.StallProfiler` attributes every remote
  reference's stall to its Eq. 1 component (exactly: the attribution
  sums integer-equal to the run's remote read stall) and records
  windowed interval time-series of how the caches evolve over a trace.

* :mod:`repro.obs.timeline` — Chrome/Perfetto trace-event export.
  ``repro trace export`` renders a traced run as ``trace.json`` in
  simulated bus-cycle time, openable in chrome://tracing or Perfetto.

* :mod:`repro.obs.monitor` — live sweep monitoring.  ``repro top``
  tails a running sweep's ``run.json`` / ``journal.jsonl`` /
  ``recovery.jsonl`` and renders per-cell progress, refs/sec, an ETA,
  and recovery counts, without touching the run directory.

* :mod:`repro.obs.registry` — the **wall-clock** telemetry registry.
  Where :mod:`repro.obs.metrics` measures the simulated machine in
  deterministic bus cycles, :class:`~repro.obs.registry.WallClockRegistry`
  measures the *service process itself* (request rates, queue depths,
  latency histograms) and renders Prometheus text format 0.0.4 at the
  service's ``GET /metrics``, with a crash-safe JSON snapshot for
  restart persistence.

* :mod:`repro.obs.spans` — cross-process request→job→cell span tracing.
  Every HTTP submission's correlation id becomes the trace id of a span
  tree (receive → queue-wait → per-cell simulate/cache-hit → store-put
  → respond) recorded to the job's ``spans.jsonl`` and exported as
  Chrome/Perfetto JSON by ``repro trace serve-export`` — the wall-clock
  sibling of :mod:`repro.obs.timeline`'s simulated-cycle exporter.

See ``docs/OBSERVABILITY.md`` for the event schema, the metrics
catalog, the profiler key layout, the manifest format, and the
wall-clock telemetry catalogue.
"""

from .events import (
    CHECK_EVENT_KINDS,
    EVENT_KINDS,
    SERVICE_EVENT_KINDS,
    SWEEP_EVENT_KINDS,
    EventTracer,
    TraceEvent,
)
from .manifest import (
    MANIFEST_ENV,
    build_manifest,
    manifest_core,
    manifest_dir_from_env,
    write_manifest,
)
from .metrics import (
    Histogram,
    MetricsRegistry,
    aggregate_metrics,
    merge_snapshots,
    run_metrics,
)
from .monitor import SweepProgress, watch
from .registry import (
    METRICS_CONTENT_TYPE,
    METRICS_SNAPSHOT_NAME,
    WallClockRegistry,
)
from .spans import (
    SPANS_NAME,
    SpanRecorder,
    load_spans,
    new_request_id,
    request_root_span_id,
    run_span_id,
    span_tree_problems,
    spans_to_chrome,
)
from .profile import (
    DEFAULT_WINDOW,
    PROFILE_ENV,
    PROFILE_WINDOW_ENV,
    STALL_COMPONENTS,
    StallProfiler,
    attributed_stall,
    profiled_cells,
    profiling_enabled,
    stall_breakdown,
)
from .timeline import (
    export_chrome_trace,
    trace_simulation,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "CHECK_EVENT_KINDS",
    "EVENT_KINDS",
    "SERVICE_EVENT_KINDS",
    "SWEEP_EVENT_KINDS",
    "EventTracer",
    "TraceEvent",
    "Histogram",
    "MetricsRegistry",
    "aggregate_metrics",
    "merge_snapshots",
    "run_metrics",
    "MANIFEST_ENV",
    "build_manifest",
    "manifest_core",
    "manifest_dir_from_env",
    "write_manifest",
    "DEFAULT_WINDOW",
    "PROFILE_ENV",
    "PROFILE_WINDOW_ENV",
    "STALL_COMPONENTS",
    "StallProfiler",
    "attributed_stall",
    "profiled_cells",
    "profiling_enabled",
    "stall_breakdown",
    "export_chrome_trace",
    "trace_simulation",
    "validate_chrome_trace",
    "write_chrome_trace",
    "SweepProgress",
    "watch",
    "METRICS_CONTENT_TYPE",
    "METRICS_SNAPSHOT_NAME",
    "WallClockRegistry",
    "SPANS_NAME",
    "SpanRecorder",
    "load_spans",
    "new_request_id",
    "request_root_span_id",
    "run_span_id",
    "span_tree_problems",
    "spans_to_chrome",
]
