"""Run manifests: every sweep's inputs and outputs as one JSON artifact.

A manifest records everything needed to reproduce (and to trust) a
results artifact:

* the exact **inputs** — refs/seed/scale/jobs, a content digest of every
  :class:`~repro.params.SystemConfig` swept, and the content-addressed
  trace-cache key of every trace simulated (the same key
  :mod:`repro.trace.io` files traces under);
* the **environment** — package version and git SHA (best effort);
* the **outputs** — per-cell counter digests, metrics snapshots, and the
  sweep-level metric aggregate;
* the **timing** — wall clock and per-cell engine seconds, kept in
  volatile fields so that :func:`manifest_core` can strip them: two runs
  of the same sweep produce bit-identical core manifests, serial or
  parallel (pinned by ``tests/sim/test_obs.py``).

Set ``REPRO_MANIFEST_DIR`` (or pass ``--manifest-dir`` to the CLI) to
have every sweep drop its manifest there; ``repro report`` always writes
one next to its report.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from ..trace.io import trace_cache_key
from ..trace.record import TraceSpec
from .metrics import aggregate_metrics

MANIFEST_VERSION = 1

#: environment variable: directory where sweeps write their manifests
MANIFEST_ENV = "REPRO_MANIFEST_DIR"

#: manifest fields that legitimately differ between identical runs
#: ("recovery" records faults survived, which vary run to run by design;
#: "cache" records the result-store hit/simulated split, which flips from
#: all-miss to all-hit between two identical runs while the results stay
#: bit-identical — exactly the property the core must not see; the HTTP
#: correlation "request_id" is provenance stamped per submission)
VOLATILE_KEYS = (
    "created_unix", "timing", "git_sha", "version", "recovery", "cache",
    "request_id",
)
VOLATILE_CELL_KEYS = ("elapsed_s", "refs_per_sec")


def manifest_dir_from_env() -> Optional[Path]:
    raw = os.environ.get(MANIFEST_ENV)
    return Path(raw) if raw else None


def git_sha() -> str:
    """The repository HEAD, best effort (``unknown`` outside a checkout)."""
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def config_digest(config) -> str:
    """Stable content hash of one system configuration.

    ``SystemConfig`` is a frozen tree of dataclasses and enums whose
    ``repr`` is deterministic, which makes it a faithful canonical form.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


def counters_digest(counters) -> str:
    canon = json.dumps(counters.as_dict(), sort_keys=True)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def build_manifest(
    results: Mapping[Tuple[str, str], object],
    *,
    kind: str = "sweep",
    command: str = "",
    refs: Optional[int] = None,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    jobs: Optional[int] = None,
    wall_s: Optional[float] = None,
    engine: Optional[str] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the manifest for one finished sweep.

    ``results`` is the usual ``(system, benchmark) -> SimulationResult``
    map; cells are recorded in iteration order (the deterministic plan
    order of both the serial and the parallel path).  ``engine`` records
    the execution backend the sweep ran on; like ``jobs`` it is stripped
    from :func:`manifest_core`, because engines are bit-identical and
    must not change the artifact.
    """
    from .. import __version__

    cells = []
    for (system, bench), r in results.items():
        spec = TraceSpec(
            benchmark=bench,
            refs=r.refs if refs is None else refs,
            seed=r.seed if seed is None else seed,
            scale=scale if scale is not None else 0.125,
        )
        cells.append(
            {
                "system": system,
                "benchmark": bench,
                "refs": r.refs,
                "seed": r.seed,
                "config_sha": config_digest(r.config),
                "trace_key": trace_cache_key(spec),
                "counters_sha": counters_digest(r.counters),
                "metrics": getattr(r, "metrics", None),
                "elapsed_s": r.elapsed_s,
            }
        )

    manifest: Dict[str, object] = {
        "manifest_version": MANIFEST_VERSION,
        "kind": kind,
        "command": command,
        "version": __version__,
        "git_sha": git_sha(),
        "created_unix": time.time(),
        "parameters": {
            "refs": refs,
            "seed": seed,
            "scale": scale,
            "jobs": jobs,
            "engine": engine or "interp",
        },
        "cells": cells,
        "aggregate_metrics": aggregate_metrics(
            getattr(r, "metrics", None) for r in results.values()
        ),
        "timing": {
            "wall_s": wall_s,
            "engine_s": sum(r.elapsed_s for r in results.values()),
        },
    }
    if extra:
        manifest.update(extra)
    return manifest


def manifest_core(manifest: Mapping[str, object]) -> Dict[str, object]:
    """The manifest minus every volatile field.

    Two runs of the same sweep — serial or parallel, today or next week —
    agree on the core exactly; tests compare the JSON serialisation.
    """
    core = {k: v for k, v in manifest.items() if k not in VOLATILE_KEYS}
    core["cells"] = [
        {k: v for k, v in cell.items() if k not in VOLATILE_CELL_KEYS}
        for cell in manifest.get("cells", ())
    ]
    params = dict(core.get("parameters", {}))
    params.pop("jobs", None)  # worker count must not change the artifact
    params.pop("engine", None)  # engines are bit-identical by construction
    core["parameters"] = params
    return core


def write_manifest(
    manifest: Mapping[str, object],
    directory: Union[str, Path],
    name: str = "sweep",
) -> Path:
    """Atomically write ``<name>-manifest.json`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}-manifest.json"
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.stem + ".", suffix=".tmp.json", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def maybe_write_sweep_manifest(
    results: Mapping[Tuple[str, str], object],
    *,
    command: str,
    refs: int,
    seed: int,
    scale: float,
    jobs: int,
    wall_s: float,
    directory: Optional[Union[str, Path]] = None,
    name: str = "sweep",
    recovery=None,
    engine: Optional[str] = None,
    cache: Optional[Dict[str, object]] = None,
) -> Optional[Path]:
    """Write a sweep manifest when a destination is configured.

    ``directory`` wins; otherwise ``$REPRO_MANIFEST_DIR``; otherwise the
    sweep leaves no artifact (the common interactive case).  ``recovery``
    — a :class:`repro.sim.parallel.RecoveryLog` — surfaces every retry,
    redispatch, timeout, and quarantine the sweep survived under the
    manifest's (volatile) ``recovery`` key.  ``cache`` — a
    :func:`repro.sim.parallel.cache_summary` dict — records how many
    cells were served from the content-addressed result store versus
    simulated, under the (equally volatile) ``cache`` key.
    """
    dest = Path(directory) if directory is not None else manifest_dir_from_env()
    if dest is None:
        return None
    extra: Optional[Dict[str, object]] = None
    if recovery is not None and len(recovery):
        extra = {"recovery": recovery.summary()}
    if cache is not None:
        extra = dict(extra or {})
        extra["cache"] = cache
    manifest = build_manifest(
        results,
        kind="sweep",
        command=command,
        refs=refs,
        seed=seed,
        scale=scale,
        jobs=jobs,
        wall_s=wall_s,
        engine=engine,
        extra=extra,
    )
    return write_manifest(manifest, dest, name=name)
