"""Wall-clock span tracing with cross-process correlation IDs.

Every HTTP request that reaches ``repro serve`` gets a ``request_id``
(honouring an incoming ``X-Request-Id`` header, otherwise freshly
minted), echoed back in the response and stamped into the job record,
journal rows, recovery events, and manifest.  That id doubles as the
**trace id**: the HTTP layer, the job thread, and the multiprocessing
sweep workers all append spans for it into ``spans.jsonl`` inside the
job's run directory, producing one connected tree per submission::

    request POST /jobs          (proc=http, span id "req-<request_id>")
      ├─ receive                (socket read)
      ├─ validate+route         (spec parse + admission + enqueue)
      ├─ respond                (response write)
      ├─ queue-wait             (proc=job-manager)
      └─ sweep run              (span id "run-<job_id>")
           ├─ cell simulate …   (proc=worker-N, recorded in the worker
           │                     process and shipped over the result
           │                     queue — genuinely cross-process)
           ├─ cell cache-hit …  (ResultStore short-circuits)
           └─ store-put         (memoise fresh cells)

The root and run span ids are *derived* (``req-`` + request id,
``run-`` + job id) so producers on different threads and processes can
parent to them without any handshake.

Spans are wall-clock (``time.time()`` unix seconds) — one machine, one
clock domain — unlike :mod:`repro.obs.timeline`, whose timestamps are
simulated bus cycles.  :func:`spans_to_chrome` renders the same
Chrome/Perfetto trace-event JSON as that exporter (validated by the same
``scripts/validate_trace.py``), with one process row per producer; the
``repro trace serve-export`` CLI wraps it.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "SPANS_NAME",
    "SpanRecorder",
    "new_request_id",
    "request_root_span_id",
    "run_span_id",
    "append_spans",
    "load_spans",
    "spans_to_chrome",
]

#: file name for persisted spans inside a job's run directory
SPANS_NAME = "spans.jsonl"

JsonDict = Dict[str, Any]


def new_request_id() -> str:
    """Mint a request correlation id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


def request_root_span_id(request_id: str) -> str:
    """Span id of the HTTP root span for a request — derived, no handshake."""
    return f"req-{request_id}"


def run_span_id(job_id: str) -> str:
    """Span id of a job's sweep-run span — derived from the job id."""
    return f"run-{job_id}"


def _span_record(
    trace_id: str,
    span_id: str,
    name: str,
    t0_unix: float,
    dur_s: float,
    parent_id: Optional[str],
    proc: str,
    args: Optional[Dict[str, Any]] = None,
) -> JsonDict:
    rec: JsonDict = {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "t0_unix": float(t0_unix),
        "dur_s": max(0.0, float(dur_s)),
        "proc": proc,
    }
    if args:
        rec["args"] = args
    return rec


class SpanRecorder:
    """Thread-safe span sink for one trace, persisted as JSONL.

    The recorder lives in the job-manager thread; worker processes ship
    raw span payloads back over the result queue and the supervisor feeds
    them through :meth:`add_raw`, which stamps the trace id and default
    parent.  A ``None`` sink keeps spans in memory only (CLI sweeps).
    """

    def __init__(
        self,
        trace_id: str,
        sink_path: Optional[Union[str, "os.PathLike[str]"]] = None,
        proc: str = "service",
        default_parent: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.default_proc = proc
        self.default_parent = default_parent
        self.spans: List[JsonDict] = []
        self._lock = threading.Lock()
        self._sink = None
        if sink_path is not None:
            path = Path(sink_path)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                self._sink = open(path, "a", encoding="utf-8")
            except OSError:
                self._sink = None  # telemetry never blocks the job

    def new_id(self) -> str:
        return uuid.uuid4().hex[:12]

    def add(
        self,
        name: str,
        t0_unix: float,
        dur_s: float,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        proc: Optional[str] = None,
        **args: Any,
    ) -> str:
        """Record one finished span; returns its span id."""
        sid = span_id or self.new_id()
        rec = _span_record(
            self.trace_id,
            sid,
            name,
            t0_unix,
            dur_s,
            parent_id if parent_id is not None else self.default_parent,
            proc or self.default_proc,
            args or None,
        )
        self._write(rec)
        return sid

    def add_raw(self, payload: Dict[str, Any]) -> str:
        """Record a span produced elsewhere (e.g. a worker process).

        The payload supplies ``name``/``t0_unix``/``dur_s`` and optionally
        ``proc``/``args``/``parent_id``; trace id and default parent are
        stamped here so workers need no trace context.
        """
        rec = _span_record(
            self.trace_id,
            str(payload.get("span_id") or self.new_id()),
            str(payload.get("name", "span")),
            float(payload.get("t0_unix", 0.0)),
            float(payload.get("dur_s", 0.0)),
            payload.get("parent_id") or self.default_parent,
            str(payload.get("proc") or self.default_proc),
            payload.get("args") or None,
        )
        self._write(rec)
        return str(rec["span_id"])

    def span(self, name: str, **kwargs: Any) -> "_SpanContext":
        """``with recorder.span("store-put") as sid:`` convenience."""
        return _SpanContext(self, name, kwargs)

    def _write(self, rec: JsonDict) -> None:
        line = json.dumps(rec, sort_keys=True)
        with self._lock:
            self.spans.append(rec)
            if self._sink is not None:
                try:
                    self._sink.write(line + "\n")
                    self._sink.flush()
                except (OSError, ValueError):
                    self._sink = None

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
                self._sink = None

    def __enter__(self) -> "SpanRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _SpanContext:
    def __init__(self, recorder: SpanRecorder, name: str, kwargs: Dict[str, Any]):
        self._recorder = recorder
        self._name = name
        self._kwargs = kwargs
        self.span_id = kwargs.pop("span_id", None) or recorder.new_id()
        self._t0 = 0.0

    def __enter__(self) -> str:
        self._t0 = time.time()
        return self.span_id

    def __exit__(self, *exc: Any) -> None:
        self._recorder.add(
            self._name,
            self._t0,
            time.time() - self._t0,
            span_id=self.span_id,
            **self._kwargs,
        )


def append_spans(
    path: Union[str, "os.PathLike[str]"], records: Iterable[JsonDict]
) -> bool:
    """Append finished span records to a ``spans.jsonl`` file.

    Used by the HTTP layer to attach its request spans to the job's file
    after the response is written; best-effort, returns False on I/O
    trouble rather than failing the request.
    """
    records = list(records)
    if not records:
        return True
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as fh:
            for rec in records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
    except OSError:
        return False
    return True


def load_spans(source: Union[str, "os.PathLike[str]"]) -> List[JsonDict]:
    """Load spans from a ``spans.jsonl`` file, a run dir, or a job dir.

    Tolerates a torn final line (the writer may have been SIGKILLed) the
    same way the sweep journal reader does.
    """
    path = Path(source)
    if path.is_dir():
        for candidate in (path / SPANS_NAME, path / "run" / SPANS_NAME):
            if candidate.exists():
                path = candidate
                break
    spans: List[JsonDict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn tail
                if isinstance(rec, dict) and "span_id" in rec:
                    spans.append(rec)
    except OSError:
        return []
    return spans


def span_tree_problems(spans: List[JsonDict]) -> List[str]:
    """Structural check: every parent reference resolves within the set."""
    ids = {str(s.get("span_id")) for s in spans}
    problems = []
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and str(parent) not in ids:
            problems.append(
                f"span {s.get('span_id')!r} ({s.get('name')!r}) has dangling "
                f"parent {parent!r}"
            )
    return problems


def spans_to_chrome(
    spans: List[JsonDict], trace_id: Optional[str] = None
) -> JsonDict:
    """Render span records as a Chrome/Perfetto trace-event document.

    Wall-clock domain: ``ts`` is microseconds since the earliest span in
    the set (declared in ``metadata.ts_unit``); one process row per
    producer (``proc``), named via ``M`` metadata events — the same
    structure :func:`repro.obs.timeline.export_chrome_trace` emits, so
    ``scripts/validate_trace.py`` gates both.
    """
    if trace_id is not None:
        spans = [s for s in spans if s.get("trace_id") == trace_id]
    spans = sorted(
        spans, key=lambda s: (float(s.get("t0_unix", 0.0)), str(s.get("span_id")))
    )
    if not spans:
        return {
            "traceEvents": [],
            "displayTimeUnit": "ms",
            "metadata": {
                "ts_unit": "wall-clock microseconds since trace start",
                "clock_domain": "wall-clock",
                "system": "sweep-service",
                "benchmark": "",
            },
        }
    base = min(float(s.get("t0_unix", 0.0)) for s in spans)
    procs = sorted({str(s.get("proc", "service")) for s in spans})
    pid_of = {proc: i + 1 for i, proc in enumerate(procs)}
    events: List[JsonDict] = []
    for proc in procs:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_of[proc],
                "tid": 0,
                "args": {"name": proc},
            }
        )
    for s in spans:
        args: Dict[str, Any] = {
            "trace_id": s.get("trace_id"),
            "span_id": s.get("span_id"),
        }
        if s.get("parent_id") is not None:
            args["parent_id"] = s.get("parent_id")
        extra = s.get("args")
        if isinstance(extra, dict):
            args.update(extra)
        ts = max(0, int(round((float(s.get("t0_unix", 0.0)) - base) * 1e6)))
        dur = max(1, int(round(float(s.get("dur_s", 0.0)) * 1e6)))
        events.append(
            {
                "name": str(s.get("name", "span")),
                "cat": "wallclock",
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": pid_of[str(s.get("proc", "service"))],
                "tid": 0,
                "args": args,
            }
        )
    traces = sorted({str(s.get("trace_id")) for s in spans if s.get("trace_id")})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "ts_unit": "wall-clock microseconds since trace start",
            "clock_domain": "wall-clock",
            "base_unix": base,
            "system": "sweep-service",
            "benchmark": ",".join(traces[:4]) + ("..." if len(traces) > 4 else ""),
            "span_count": len(spans),
        },
    }
