"""Per-reference stall attribution and windowed interval time-series.

The paper's headline metric (Eq. 1) is a *sum* of latency components::

    RS = N_hit^NC L_hit^NC + N_hit^PC L_hit^PC + N_miss L_miss + N_rel T_rel

A :class:`StallProfiler` attached to a :class:`~repro.sim.simulator.Simulator`
decomposes that sum back into its per-reference parts while the run executes:
every monitored remote reference is attributed to exactly one protocol path
(peer cache-to-cache supply, NC hit, PC hit, or a full remote access), page
relocations are charged their 225-cycle span, and the attribution is exact —
the per-component cycle totals sum *integer-equal* to
``remote_read_stall(counters, config)`` for every run (pinned by
``tests/sim/test_profile.py`` and checked by ``repro check --diff``).

Cost model note: the paper's latency model is contention-free, so every
reference that resolves on a given path stalls the same constant number of
cycles.  The profiler exploits that — hooks only bump per-window integer
tallies on the miss path (the inlined L1 read-hit loop carries **no**
profiler code, exactly like event tracing), and the per-component cycle
totals and stall histograms are reconstructed exactly from the event counts
when :meth:`StallProfiler.finish` runs.  Profiling is therefore cheap, but
it is still **off by default**: ``benchmarks/bench_core.py`` pins both the
profiler-off and the profiler-on throughput floors.

Alongside the totals, the profiler keeps **windowed interval time-series**:
one sample per ``window`` references (default :data:`DEFAULT_WINDOW`,
overridable via ``$REPRO_PROFILE_WINDOW``) of remote misses, NC/PC/peer
hits, relocations, attributed read-stall cycles, and end-of-window NC
occupancy — how the caches *evolve* over a trace, not just where they end.

Everything lands in the run's standard metrics snapshot under
per-(system, benchmark) keys (``profile.stall/<system>/<bench>/<component>``,
``hist.stall/...``, ``series.profile/...``), so parallel sweep workers ship
it home unchanged and sweeps aggregate it bit-identically to a serial run.

Enable per call (``simulate(..., profile=True)``), per process
(``$REPRO_PROFILE=1`` — inherited by sweep workers, which is how
``repro sweep --profile`` fans profiling out), or by constructing a
:class:`StallProfiler` and passing it to ``run_trace``.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Callable, Dict, List, Optional

from .metrics import Histogram, Snapshot, merge_snapshots

#: process-wide enable switch (inherited by sweep worker processes)
PROFILE_ENV = "REPRO_PROFILE"
#: references per timeline window (must agree across runs being merged)
PROFILE_WINDOW_ENV = "REPRO_PROFILE_WINDOW"

DEFAULT_WINDOW = 10_000

#: Eq. 1 components, in the paper's presentation order
STALL_COMPONENTS = (
    "cluster_hit",  #: peer L1 supplied the block on the cluster bus
    "nc_hit",       #: the network cache serviced the miss
    "pc_hit",       #: a relocated page's local frame serviced the miss
    "remote_miss",  #: the access crossed the network to the home node
    "relocation",   #: page-relocation overhead (T_rel per relocation)
)

#: per-reference stall buckets, in bus cycles: sized so every Table 1/2
#: latency (1, 10, 13, 30, 33) lands in its own bucket and the 225-cycle
#: relocation span lands in the overflow bucket
STALL_HIST_BOUNDS = (0.0, 1.0, 2.0, 5.0, 10.0, 15.0, 30.0, 35.0, 100.0)

#: timeline metrics recorded per window (series.profile/<sys>/<bench>/<name>)
TIMELINE_METRICS = (
    "cluster_hits",
    "nc_hits",
    "pc_hits",
    "remote_misses",
    "relocations",
    "stall_cycles",
    "nc_occupancy",
)


def profiling_enabled() -> bool:
    """Is process-wide profiling requested via ``$REPRO_PROFILE``?"""
    raw = os.environ.get(PROFILE_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


def profile_window() -> int:
    """The timeline window size: ``$REPRO_PROFILE_WINDOW`` or the default."""
    raw = os.environ.get(PROFILE_WINDOW_ENV, "").strip()
    if not raw:
        return DEFAULT_WINDOW
    window = int(raw)
    if window <= 0:
        raise ValueError(f"{PROFILE_WINDOW_ENV} must be a positive integer")
    return window


class StallProfiler:
    """Attributes every monitored remote reference to its Eq. 1 component.

    The simulator calls one ``on_*`` hook per remote-miss outcome — all on
    the miss path, all O(1) integer bumps — and :meth:`finish` freezes the
    run into totals, histograms, and the windowed timeline.  A profiler is
    single-use: one run, one ``finish``, then :meth:`snapshot`.
    """

    __slots__ = (
        "window", "refs", "reads", "latencies",
        "_timeline", "_win_end",
        "_w_cluster", "_w_nc", "_w_pc", "_w_remote", "_w_reloc", "_w_stall",
        "_lat_cluster", "_lat_nc", "_lat_pc", "_lat_remote", "_lat_reloc",
        "_occupancy_of", "_finished",
    )

    def __init__(self, config, window: Optional[int] = None) -> None:
        from ..sim.latency import nc_hit_latency, remote_miss_latency

        lat = config.latency
        self.window = int(window) if window is not None else profile_window()
        if self.window <= 0:
            raise ValueError("profile window must be a positive integer")
        self.latencies: Dict[str, int] = {
            "cluster_hit": lat.cache_to_cache,
            "nc_hit": nc_hit_latency(config),
            "pc_hit": lat.pc_hit,
            "remote_miss": remote_miss_latency(config),
            "relocation": lat.page_relocation,
        }
        self._lat_cluster = self.latencies["cluster_hit"]
        self._lat_nc = self.latencies["nc_hit"]
        self._lat_pc = self.latencies["pc_hit"]
        self._lat_remote = self.latencies["remote_miss"]
        self._lat_reloc = self.latencies["relocation"]
        #: read-side (Eq. 1) event counts per component; relocations count
        #: here too — the paper charges them to the read stall
        self.reads: Dict[str, int] = {c: 0 for c in STALL_COMPONENTS}
        self.refs = 0
        self._timeline: Dict[str, List[int]] = {m: [] for m in TIMELINE_METRICS}
        self._win_end = self.window
        self._w_cluster = self._w_nc = self._w_pc = 0
        self._w_remote = self._w_reloc = self._w_stall = 0
        self._occupancy_of: Optional[Callable[[], int]] = None
        self._finished = False

    # ---- binding ---------------------------------------------------------

    def bind_machine(self, machine) -> None:
        """Give the profiler a machine to sample NC occupancy from.

        Called by the :class:`~repro.sim.simulator.Simulator` constructor;
        unbound profilers record 0 occupancy (useful in unit tests).
        """
        nodes = machine.nodes

        def occupancy() -> int:
            return sum(int(node.nc.stats().get("resident", 0)) for node in nodes)

        self._occupancy_of = occupancy

    # ---- hooks (simulator miss path; one branch + integer bumps) ---------

    def _close_windows(self, now: int) -> None:
        """Append every full window strictly before ``now``."""
        tl = self._timeline
        occ = self._occupancy_of() if self._occupancy_of is not None else 0
        while now > self._win_end:
            tl["cluster_hits"].append(self._w_cluster)
            tl["nc_hits"].append(self._w_nc)
            tl["pc_hits"].append(self._w_pc)
            tl["remote_misses"].append(self._w_remote)
            tl["relocations"].append(self._w_reloc)
            tl["stall_cycles"].append(self._w_stall)
            tl["nc_occupancy"].append(occ)
            self._w_cluster = self._w_nc = self._w_pc = 0
            self._w_remote = self._w_reloc = self._w_stall = 0
            self._win_end += self.window

    def on_cluster_hit(self, now: int, is_write: bool) -> None:
        if now > self._win_end:
            self._close_windows(now)
        self._w_cluster += 1
        if not is_write:
            self.reads["cluster_hit"] += 1
            self._w_stall += self._lat_cluster

    def on_nc_hit(self, now: int, is_write: bool) -> None:
        if now > self._win_end:
            self._close_windows(now)
        self._w_nc += 1
        if not is_write:
            self.reads["nc_hit"] += 1
            self._w_stall += self._lat_nc

    def on_pc_hit(self, now: int, is_write: bool) -> None:
        if now > self._win_end:
            self._close_windows(now)
        self._w_pc += 1
        if not is_write:
            self.reads["pc_hit"] += 1
            self._w_stall += self._lat_pc

    def on_remote(self, now: int, is_write: bool) -> None:
        if now > self._win_end:
            self._close_windows(now)
        self._w_remote += 1
        if not is_write:
            self.reads["remote_miss"] += 1
            self._w_stall += self._lat_remote

    def on_relocation(self, now: int) -> None:
        if now > self._win_end:
            self._close_windows(now)
        self._w_reloc += 1
        self.reads["relocation"] += 1
        self._w_stall += self._lat_reloc

    # ---- freezing --------------------------------------------------------

    def finish(self, now: int) -> None:
        """Close the timeline through reference ``now`` (the final clock).

        Idempotent; the trailing partial window is appended so the series
        always covers the whole run (``ceil(refs / window)`` samples).
        """
        if self._finished:
            return
        self._finished = True
        self.refs = int(now)
        if now > 0:
            self._close_windows(now)
            tl = self._timeline
            occ = self._occupancy_of() if self._occupancy_of is not None else 0
            tl["cluster_hits"].append(self._w_cluster)
            tl["nc_hits"].append(self._w_nc)
            tl["pc_hits"].append(self._w_pc)
            tl["remote_misses"].append(self._w_remote)
            tl["relocations"].append(self._w_reloc)
            tl["stall_cycles"].append(self._w_stall)
            tl["nc_occupancy"].append(occ)

    # ---- results ---------------------------------------------------------

    @property
    def stall_cycles(self) -> Dict[str, int]:
        """Attributed read-stall cycles per component (exact, integers)."""
        return {c: self.reads[c] * self.latencies[c] for c in STALL_COMPONENTS}

    @property
    def total_stall(self) -> int:
        """The attributed total — integer-equal to Eq. 1 for the run."""
        return sum(self.stall_cycles.values())

    def timeline(self) -> Dict[str, List[int]]:
        """The per-window series (call after :meth:`finish`)."""
        return {m: list(v) for m, v in self._timeline.items()}

    def snapshot(self, system: str, benchmark: str) -> Snapshot:
        """The profile as an ``obs.metrics``-style snapshot.

        Keys are namespaced per (system, benchmark) so a sweep-level
        aggregate keeps every cell's attribution separate — the
        "per-(benchmark, system, component) histograms" of the profiling
        layer's contract — and merging is collision-free and
        bit-deterministic.
        """
        if not self._finished:
            raise RuntimeError("snapshot() before finish(); profile incomplete")
        prefix = f"{system}/{benchmark}"
        counters: Dict[str, object] = {}
        hists: Dict[str, object] = {}
        cycles = self.stall_cycles
        for comp in STALL_COMPONENTS:
            counters[f"profile.stall/{prefix}/{comp}"] = cycles[comp]
            counters[f"profile.reads/{prefix}/{comp}"] = self.reads[comp]
            hist = Histogram(STALL_HIST_BOUNDS)
            # constant latency per component => the whole distribution
            # sits in one bucket; reconstructed exactly from the count
            hist.counts[bisect_right(hist.bounds, self.latencies[comp])] = (
                self.reads[comp]
            )
            hists[f"hist.stall/{prefix}/{comp}"] = hist.as_dict()
        counters[f"profile.refs/{prefix}"] = self.refs
        series = {
            f"series.profile/{prefix}/{metric}": {
                "window": self.window,
                "values": list(values),
            }
            for metric, values in self._timeline.items()
        }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": {},
            "histograms": dict(sorted(hists.items())),
            "series": dict(sorted(series.items())),
        }


# ---------------------------------------------------------------------------
# snapshot readers (conservation checks, reports, the CLI)
# ---------------------------------------------------------------------------


def profiled_cells(snapshot: Optional[Snapshot]) -> List[str]:
    """The ``system/benchmark`` prefixes carrying profile data."""
    if not snapshot:
        return []
    out = []
    for key in snapshot.get("counters", {}):
        if key.startswith("profile.refs/"):
            out.append(key[len("profile.refs/"):])
    return sorted(out)


def attributed_stall(snapshot: Snapshot, system: str, benchmark: str) -> int:
    """Total attributed stall cycles for one profiled (system, benchmark).

    The conservation invariant — checked in tests and by ``repro check
    --diff`` — is that this equals ``remote_read_stall(counters, config)``
    exactly (integer equality, no tolerance).
    """
    prefix = f"profile.stall/{system}/{benchmark}/"
    counters = snapshot.get("counters", {})
    return sum(int(v) for k, v in counters.items() if k.startswith(prefix))


def stall_breakdown(
    snapshot: Snapshot, system: str, benchmark: str
) -> Dict[str, int]:
    """Per-component attributed stall cycles for one profiled cell."""
    counters = snapshot.get("counters", {})
    prefix = f"profile.stall/{system}/{benchmark}/"
    return {
        comp: int(counters.get(prefix + comp, 0)) for comp in STALL_COMPONENTS
    }


def merge_profile_into(base: Optional[Snapshot], profile: Snapshot) -> Snapshot:
    """Fold a profiler snapshot into a run's standard metrics snapshot."""
    return merge_snapshots(base, profile)
