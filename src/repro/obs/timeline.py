"""Chrome/Perfetto trace-event export of a traced simulation.

``repro trace export`` (and :func:`export_chrome_trace` underneath it)
turns a run's :class:`~repro.obs.events.EventTracer` stream into the
`Chrome trace-event format`__ — a ``trace.json`` that chrome://tracing,
Perfetto, and speedscope all open directly — so a reproduction run can be
*scrubbed* on a timeline instead of read as counters:

* one **process row per cluster** (pid = cluster id, named via ``M``
  metadata events);
* serviced remote references become **complete spans** (``ph: "X"``)
  whose duration is the Table 1/2 latency of the path that serviced them
  (cache-to-cache supply, NC hit, PC hit, or full remote access);
* page relocations become 225-cycle spans on the owning cluster's row;
* NC/PC evictions, invalidations, write-backs, upgrades, and the rest of
  the protocol chatter become **instant events** (``ph: "i"``).

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Timestamps are **simulated bus cycles**, not wall-clock: each cluster row
carries its own running cycle clock that advances by every span's
latency, so span widths are exact and rows never self-overlap.  (The
paper's model is contention-free — there is no global interleaving to
recover — so per-cluster cycle accumulation is the faithful rendering.)
The trace-event ``ts`` unit is microseconds by convention; we map one bus
cycle to one microsecond and say so in ``metadata.ts_unit``.

:func:`validate_chrome_trace` structurally validates a trace document —
the check CI runs against the exported artifact.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Union

from .events import EVENT_KINDS, TraceEvent

JsonDict = Dict[str, object]

#: event kinds rendered as latency spans; the duration resolver lives in
#: _span_duration (NC/remote latencies depend on the system's NC flavour)
SPAN_KINDS = ("bus_c2c", "nc_hit", "pc_hit", "dir_access", "pc_relocate")

#: phases a structurally valid exported trace may contain
_VALID_PHASES = {"X", "i", "M"}


def _span_duration(kind: str, config) -> int:
    from ..sim.latency import nc_hit_latency, remote_miss_latency

    lat = config.latency
    if kind == "bus_c2c":
        return lat.cache_to_cache
    if kind == "nc_hit":
        return nc_hit_latency(config)
    if kind == "pc_hit":
        return lat.pc_hit
    if kind == "dir_access":
        return remote_miss_latency(config)
    if kind == "pc_relocate":
        return lat.page_relocation
    raise ValueError(f"not a span kind: {kind!r}")


_SPAN_NAMES = {
    "bus_c2c": "cluster c2c",
    "nc_hit": "NC hit",
    "pc_hit": "PC hit",
    "dir_access": "remote miss",
    "pc_relocate": "page relocation",
}


def export_chrome_trace(
    events: Iterable[TraceEvent],
    config,
    system: str = "",
    benchmark: str = "",
) -> JsonDict:
    """Render traced protocol events as a Chrome trace-event document.

    Deterministic for a given event stream: events are processed in
    emission order and every timestamp is derived from the per-cluster
    cycle clocks, so two exports of the same run are byte-identical.
    """
    durations = {kind: _span_duration(kind, config) for kind in SPAN_KINDS}
    clocks: Dict[int, int] = {}  # cluster -> next free bus cycle
    trace_events: List[JsonDict] = []
    seen_clusters: List[int] = []
    for ev in events:
        pid = ev.node if ev.node >= 0 else 0
        if pid not in clocks:
            clocks[pid] = 0
            seen_clusters.append(pid)
        ts = clocks[pid]
        args: Dict[str, object] = {"ref": ev.now, "seq": ev.seq}
        if ev.block >= 0:
            args["block"] = ev.block
        if ev.detail:
            args["detail"] = ev.detail
        if ev.kind in durations:
            dur = durations[ev.kind]
            name = _SPAN_NAMES[ev.kind]
            if ev.detail and ev.kind != "pc_relocate":
                name = f"{name} ({ev.detail})"
            trace_events.append(
                {
                    "name": name,
                    "cat": ev.kind,
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
            clocks[pid] = ts + dur
        else:
            trace_events.append(
                {
                    "name": ev.kind,
                    "cat": ev.kind,
                    "ph": "i",
                    "ts": ts,
                    "s": "t",  # thread-scoped instant
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
    metadata: List[JsonDict] = []
    for pid in sorted(seen_clusters):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"cluster {pid}"},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "cluster bus"},
            }
        )
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "metadata": {
            "ts_unit": "simulated bus cycles (1 cycle = 1 us)",
            "system": system or config.name,
            "benchmark": benchmark,
            "event_kinds": sorted(EVENT_KINDS),
        },
    }


def write_chrome_trace(doc: JsonDict, path: str) -> None:
    """Write an exported trace document as ``trace.json``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"), sort_keys=False)
        fh.write("\n")


def validate_chrome_trace(doc: Union[JsonDict, str]) -> List[str]:
    """Structurally validate a Chrome trace-event document.

    Accepts the document dict or a path to a JSON file; returns a list of
    problems (empty == valid).  Checked: the JSON-object envelope with a
    ``traceEvents`` array; per event — a known phase, string ``name``,
    integer ``pid``/``tid``, a numeric non-negative ``ts``; ``X`` events
    additionally need a numeric non-negative ``dur``.  This is the gate
    CI runs over the exported artifact.
    """
    if isinstance(doc, str):
        try:
            with open(doc, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            return [f"unreadable trace: {exc}"]
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing event name")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                problems.append(f"{where}: {field} is not an integer")
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts is not a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur is not a non-negative number")
    if len(problems) > 20:  # keep CI output readable
        problems = problems[:20] + [f"... {len(problems) - 20} more"]
    return problems


def trace_simulation(
    system: str,
    benchmark: str,
    refs: int,
    seed: int = 1,
    scale: Optional[float] = None,
    capacity: int = 1 << 20,
):
    """Run one traced cell and return ``(result, trace_document)``.

    The convenience path behind ``repro trace export``: attaches an
    :class:`~repro.obs.events.EventTracer` sized to retain the whole run,
    simulates, and renders the Chrome trace.
    """
    from ..sim.runner import DEFAULT_SCALE, simulate
    from .events import EventTracer

    tracer = EventTracer(capacity=capacity)
    result = simulate(
        system,
        benchmark,
        refs=refs,
        seed=seed,
        scale=DEFAULT_SCALE if scale is None else scale,
        tracer=tracer,
    )
    doc = export_chrome_trace(
        tracer.events(), result.config, system=system, benchmark=benchmark
    )
    return result, doc
