"""Wall-clock metrics registry with Prometheus text exposition.

This module is the *operational* twin of :mod:`repro.obs.metrics`.  That
registry counts simulated-time protocol events and must stay bit-exact so
parallel merges reproduce serial runs; this one counts wall-clock service
behaviour — HTTP requests, queue depths, cache hits, per-cell runtimes —
and is scraped at ``GET /metrics`` in Prometheus text format 0.0.4.

Design points:

- **Deterministic iteration.**  Families are exposed in sorted name order,
  series in sorted label-value order, and label names are sorted at the
  series key, so two processes that record the same facts expose
  byte-identical text regardless of call order or kwarg order.
- **Fixed-bucket histograms.**  Bucket bounds are pinned on first use and
  rendered cumulatively with the standard ``le`` label (upper-inclusive),
  ``_sum`` and ``_count`` series.
- **Snapshot persistence.**  ``save()`` writes an atomic JSON snapshot
  (write-to-temp + ``os.replace``, the same idiom as the sweep journal);
  ``load()`` / ``merge()`` *add* counter and histogram state, so a
  restarted service resumes its tallies instead of forgetting them.
- **No dependencies, thread-safe.**  One lock guards all mutation; the
  registry is safe to share between the asyncio loop, job threads, and
  the sweep supervisor.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "WallClockRegistry",
    "MetricsRegistry",
    "METRICS_CONTENT_TYPE",
    "METRICS_SNAPSHOT_NAME",
    "DEFAULT_TIME_BUCKETS",
]

# Content type mandated by the Prometheus text exposition format 0.0.4.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# Default file name for the persisted snapshot inside a service data dir.
METRICS_SNAPSHOT_NAME = "metrics.json"

# Latency-style buckets (seconds): sub-millisecond HTTP handling up to
# multi-minute sweep jobs.  Shared by request, queue-wait, run-duration
# and per-cell histograms so operators learn one scale.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)

_SNAPSHOT_VERSION = 1

LabelDict = Optional[Mapping[str, Any]]
_SeriesKey = Tuple[str, ...]


def _format_value(value: float) -> str:
    """Canonical sample rendering: integral floats as ints, else repr."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Family:
    """One metric family: shared help text, pinned label names, series map."""

    __slots__ = ("help", "label_names", "series")

    def __init__(self, help_text: str = "") -> None:
        self.help = help_text
        self.label_names: Optional[Tuple[str, ...]] = None
        self.series: Dict[_SeriesKey, Any] = {}

    def key_for(self, name: str, labels: LabelDict) -> _SeriesKey:
        labels = labels or {}
        names = tuple(sorted(str(k) for k in labels))
        if self.label_names is None:
            self.label_names = names
        elif self.label_names != names:
            raise ValueError(
                f"metric {name!r} used with labels {names} but declared with "
                f"{self.label_names}"
            )
        return tuple(str(labels[k]) for k in self.label_names)


class WallClockRegistry:
    """Thread-safe labelled counters/gauges/histograms with deterministic
    Prometheus text exposition and an atomic JSON snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, _Family] = {}
        self._gauges: Dict[str, _Family] = {}
        self._histograms: Dict[str, _Family] = {}
        self._hist_bounds: Dict[str, Tuple[float, ...]] = {}
        self._help: Dict[str, str] = {}

    # -- recording ---------------------------------------------------------

    def describe(self, name: str, help_text: str) -> None:
        """Attach HELP text to a family (idempotent; first text wins)."""
        with self._lock:
            self._help.setdefault(name, help_text)

    def inc(self, name: str, amount: float = 1.0, labels: LabelDict = None) -> None:
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease (amount={amount})")
        with self._lock:
            fam = self._counters.setdefault(name, _Family())
            key = fam.key_for(name, labels)
            fam.series[key] = fam.series.get(key, 0.0) + float(amount)

    def set_gauge(self, name: str, value: float, labels: LabelDict = None) -> None:
        with self._lock:
            fam = self._gauges.setdefault(name, _Family())
            key = fam.key_for(name, labels)
            fam.series[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: LabelDict = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        with self._lock:
            fam = self._histograms.setdefault(name, _Family())
            bounds = self._hist_bounds.get(name)
            if bounds is None:
                bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_TIME_BUCKETS)))
                if not bounds:
                    raise ValueError(f"histogram {name!r} needs at least one bucket")
                self._hist_bounds[name] = bounds
            key = fam.key_for(name, labels)
            series = fam.series.get(key)
            if series is None:
                series = {"counts": [0] * (len(bounds) + 1), "sum": 0.0}
                fam.series[key] = series
            idx = len(bounds)
            for i, bound in enumerate(bounds):
                if value <= bound:
                    idx = i
                    break
            series["counts"][idx] += 1
            series["sum"] += float(value)

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str, labels: LabelDict = None) -> float:
        with self._lock:
            fam = self._counters.get(name)
            if fam is None:
                return 0.0
            try:
                key = fam.key_for(name, labels)
            except ValueError:
                return 0.0
            return float(fam.series.get(key, 0.0))

    def counter_total(self, name: str) -> float:
        """Sum of a counter family across all label sets."""
        with self._lock:
            fam = self._counters.get(name)
            if fam is None:
                return 0.0
            return float(sum(fam.series.values()))

    def gauge_value(self, name: str, labels: LabelDict = None) -> Optional[float]:
        with self._lock:
            fam = self._gauges.get(name)
            if fam is None:
                return None
            try:
                key = fam.key_for(name, labels)
            except ValueError:
                return None
            value = fam.series.get(key)
            return None if value is None else float(value)

    def histogram_totals(self, name: str) -> Tuple[int, float]:
        """(count, sum) of a histogram family aggregated over label sets."""
        with self._lock:
            fam = self._histograms.get(name)
            if fam is None:
                return 0, 0.0
            count = sum(sum(s["counts"]) for s in fam.series.values())
            total = sum(s["sum"] for s in fam.series.values())
            return int(count), float(total)

    # -- exposition --------------------------------------------------------

    def expose(self) -> str:
        """Render the registry as Prometheus text format 0.0.4.

        Byte-deterministic: families sorted by name, series sorted by label
        values, label names sorted within each series.
        """
        with self._lock:
            lines: List[str] = []
            kinds = (
                ("counter", self._counters),
                ("gauge", self._gauges),
                ("histogram", self._histograms),
            )
            flat = []
            for kind, table in kinds:
                for name, fam in table.items():
                    flat.append((name, kind, fam))
            for name, kind, fam in sorted(flat, key=lambda item: item[0]):
                help_text = self._help.get(name, fam.help)
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                label_names = fam.label_names or ()
                for key in sorted(fam.series):
                    pairs = [
                        f'{ln}="{_escape_label(lv)}"'
                        for ln, lv in zip(label_names, key)
                    ]
                    if kind in ("counter", "gauge"):
                        label_blob = "{" + ",".join(pairs) + "}" if pairs else ""
                        value = fam.series[key]
                        lines.append(f"{name}{label_blob} {_format_value(value)}")
                        continue
                    bounds = self._hist_bounds[name]
                    series = fam.series[key]
                    cumulative = 0
                    for bound, count in zip(bounds, series["counts"]):
                        cumulative += count
                        bucket_pairs = pairs + [f'le="{_format_value(bound)}"']
                        lines.append(
                            f"{name}_bucket{{{','.join(bucket_pairs)}}} {cumulative}"
                        )
                    cumulative += series["counts"][-1]
                    inf_pairs = pairs + ['le="+Inf"']
                    lines.append(f"{name}_bucket{{{','.join(inf_pairs)}}} {cumulative}")
                    label_blob = "{" + ",".join(pairs) + "}" if pairs else ""
                    lines.append(f"{name}_sum{label_blob} {_format_value(series['sum'])}")
                    lines.append(f"{name}_count{label_blob} {cumulative}")
            return "\n".join(lines) + ("\n" if lines else "")

    # -- snapshot / persistence -------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe, deterministic dump of the whole registry."""

        def dump(table: Dict[str, _Family]) -> Dict[str, Any]:
            out: Dict[str, Any] = {}
            for name in sorted(table):
                fam = table[name]
                out[name] = {
                    "labels": list(fam.label_names or ()),
                    "series": [
                        [list(key), fam.series[key]] for key in sorted(fam.series)
                    ],
                }
            return out

        with self._lock:
            snap: Dict[str, Any] = {
                "version": _SNAPSHOT_VERSION,
                "counters": dump(self._counters),
                "gauges": dump(self._gauges),
                "histograms": dump(self._histograms),
                "bounds": {
                    name: list(bounds)
                    for name, bounds in sorted(self._hist_bounds.items())
                },
                "help": dict(sorted(self._help.items())),
            }
            # histogram series hold mutable dicts; deep-copy via JSON round
            # trip so callers can stash snapshots without aliasing.
            return json.loads(json.dumps(snap, sort_keys=True))

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold a snapshot into this registry.

        Counters and histogram buckets/sums *add*; gauges are only taken
        when the series is absent locally (a live gauge beats a stale one).
        Histograms whose bucket bounds disagree with the local family are
        skipped rather than corrupted.
        """
        if not isinstance(snap, Mapping):
            return
        counters = snap.get("counters", {})
        gauges = snap.get("gauges", {})
        histograms = snap.get("histograms", {})
        bounds_map = snap.get("bounds", {})
        help_map = snap.get("help", {})
        with self._lock:
            for name, text in help_map.items():
                self._help.setdefault(str(name), str(text))
            for name, payload in counters.items():
                fam = self._counters.setdefault(name, _Family())
                if fam.label_names is None:
                    fam.label_names = tuple(payload.get("labels", ()))
                for raw_key, value in payload.get("series", []):
                    key = tuple(str(v) for v in raw_key)
                    fam.series[key] = fam.series.get(key, 0.0) + float(value)
            for name, payload in gauges.items():
                fam = self._gauges.setdefault(name, _Family())
                if fam.label_names is None:
                    fam.label_names = tuple(payload.get("labels", ()))
                for raw_key, value in payload.get("series", []):
                    key = tuple(str(v) for v in raw_key)
                    fam.series.setdefault(key, float(value))
            for name, payload in histograms.items():
                incoming_bounds = tuple(float(b) for b in bounds_map.get(name, ()))
                if not incoming_bounds:
                    continue
                local_bounds = self._hist_bounds.get(name)
                if local_bounds is None:
                    self._hist_bounds[name] = incoming_bounds
                elif local_bounds != incoming_bounds:
                    continue
                fam = self._histograms.setdefault(name, _Family())
                if fam.label_names is None:
                    fam.label_names = tuple(payload.get("labels", ()))
                for raw_key, series in payload.get("series", []):
                    key = tuple(str(v) for v in raw_key)
                    counts = [int(c) for c in series.get("counts", [])]
                    if len(counts) != len(incoming_bounds) + 1:
                        continue
                    local = fam.series.get(key)
                    if local is None:
                        fam.series[key] = {
                            "counts": counts,
                            "sum": float(series.get("sum", 0.0)),
                        }
                    else:
                        for i, c in enumerate(counts):
                            local["counts"][i] += c
                        local["sum"] += float(series.get("sum", 0.0))

    def save(self, path: "os.PathLike[str]") -> bool:
        """Atomically persist the snapshot; returns False on I/O trouble."""
        path = Path(path)
        try:
            payload = json.dumps(self.snapshot(), sort_keys=True, indent=0)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
            return True
        except (OSError, ValueError):
            return False

    def load(self, path: "os.PathLike[str]") -> bool:
        """Merge a persisted snapshot if one exists; returns True on merge."""
        path = Path(path)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return False
        try:
            snap = json.loads(raw)
        except ValueError:
            return False
        if not isinstance(snap, dict) or snap.get("version") != _SNAPSHOT_VERSION:
            return False
        self.merge(snap)
        return True


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> WallClockRegistry:
    """Fold worker-process snapshots into one registry (helper for tests
    and offline aggregation)."""
    registry = WallClockRegistry()
    for snap in snapshots:
        registry.merge(snap)
    return registry


# The issue and docs name this class ``MetricsRegistry``; keep that name
# importable from this module without colliding with the simulated-time
# ``repro.obs.metrics.MetricsRegistry`` in the package namespace.
MetricsRegistry = WallClockRegistry
