"""Structured event tracing for the protocol engine.

The simulator and the directory emit one :class:`TraceEvent` per
protocol-level action when (and only when) an :class:`EventTracer` is
attached.  Events land in a bounded ring buffer — the newest
``capacity`` events survive — and, when a ``jsonl_path`` is given, are
also streamed to disk as one JSON object per line, so arbitrarily long
runs can be traced without holding every event in memory.

The emission sites all live on the *miss* path (an L1 read hit emits
nothing), so the tracing-off overhead is a single ``is None`` check per
miss and exactly zero per inlined read hit — the guarantee
``benchmarks/bench_core.py`` pins and ``docs/OBSERVABILITY.md``
documents.

Event schema (also the JSONL field order)::

    {"seq": 17, "now": 1042, "kind": "nc_insert", "node": 3,
     "block": 81930, "detail": "dirty"}

``seq`` is the 0-based emission index (monotonic even after the ring
buffer wraps), ``now`` the simulator's reference clock, ``node`` the
cluster the event happened in (-1 when machine-wide), ``block`` the
block number (-1 when the event is page- or set-grained; pages go in
``detail``).
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Dict, Iterator, List, NamedTuple, Optional, Union


class TraceEvent(NamedTuple):
    """One traced protocol event."""

    seq: int
    now: int
    kind: str
    node: int
    block: int
    detail: str

    def as_dict(self) -> Dict[str, Union[int, str]]:
        return {
            "seq": self.seq,
            "now": self.now,
            "kind": self.kind,
            "node": self.node,
            "block": self.block,
            "detail": self.detail,
        }


#: every kind the simulator/directory can emit, with its meaning
EVENT_KINDS = {
    # bus / L1 level
    "upgrade": "write hit on a shared copy raised an upgrade transaction",
    "bus_c2c": "miss supplied cache-to-cache by a peer L1 on the cluster bus",
    # network cache
    "nc_hit": "miss serviced by the network cache (detail: read|write)",
    "nc_insert": "victimised block captured by the NC (detail: clean|dirty)",
    "nc_evict": "block replaced out of the NC (detail: clean|dirty)",
    "nc_pollution": "polluting clean NC copy of an L1-resident block died",
    # page cache
    "pc_hit": "miss serviced by a relocated page's frame (detail: read|write)",
    "pc_relocate": "page relocated into the page cache (detail: page number)",
    "pc_evict": "LRM frame eviction flushed a page from the cluster "
    "(detail: page number)",
    # directory / network
    "dir_access": "remote fetch reached the home directory "
    "(detail: capacity|necessary)",
    "dir_upgrade": "directory processed an ownership upgrade",
    "dir_writeback": "dirty data written back to home memory",
    "invalidate": "invalidation delivered to one cluster",
    "owner_flush": "dirty owner forced to surrender its copy (detail: read|write)",
    "writeback_remote": "dirty victim crossed the network to its home node",
    "writeback_absorbed": "dirty victim absorbed locally (NC or PC frame)",
}


#: resilience events emitted by the sweep executor's RecoveryLog (node and
#: block are -1: these are sweep-level, not protocol-level; ``now`` is the
#: recovery-action ordinal, not the simulated clock)
SWEEP_EVENT_KINDS = {
    "cell_retry": "a cell attempt failed and was scheduled for retry",
    "cell_timeout": "a cell exceeded its wall-clock budget; its worker was killed",
    "worker_lost": "a worker process died; the supervisor took over its work",
    "cell_redispatch": "a cell lost to a worker crash was queued to run again",
    "cell_degraded_serial": "a repeatedly worker-fatal cell ran serially in the parent",
    "cell_recovered": "a cell completed after one or more recovery actions",
    "cells_resumed": "journalled cells were restored by --resume instead of re-run",
    "journal_repaired": "torn or stale journal records were skipped on resume",
    "trace_quarantined": "a corrupt trace-cache entry was quarantined and regenerated",
    "trace_cache_skipped": "a trace-cache write failed; the run continued uncached",
    "fault_injected": "the fault-injection harness fired (REPRO_FAULTS only)",
    "pool_unavailable": "the worker pool could not run; the sweep degraded to serial",
    # content-addressed result store (repro.service.store)
    "cell_cache_hit": "a cell was served from the result store, no simulation",
    "result_quarantined": "a corrupt result-store entry was quarantined; the "
    "cell re-simulated",
    "result_store_skipped": "result-store writes failed; cells ran uncached",
    "result_store_evicted": "LRU eviction removed entries to honour "
    "$REPRO_STORE_MAX_BYTES",
    "result_quarantine_failed": "a corrupt entry could not be moved aside "
    "or removed; reads keep re-simulating around it",
    "store_degraded": "result-store writes started failing (disk full or "
    "read-only root); serving uncached until they recover",
    "store_recovered": "result-store writes succeeded again after a "
    "degraded spell",
}


#: job-lifecycle events emitted by the sweep service's JobManager (same
#: sweep-level conventions as SWEEP_EVENT_KINDS; ``detail`` is
#: ``<job_id>: <state>``)
SERVICE_EVENT_KINDS = {
    "job_submitted": "a sweep spec was validated, persisted, and queued",
    "job_started": "a job worker began executing the sweep",
    "job_completed": "the sweep finished; result.json and manifest written",
    "job_failed": "the sweep raised; the error is recorded on the job",
    "job_resumed": "an unfinished job from a previous server was re-enqueued",
    "job_cancelled": "a job was cancelled (POST /jobs/<id>/cancel)",
    "job_draining": "graceful shutdown began while this job was running",
    "job_drained": "a running job was parked back to queued at a cell "
    "boundary during drain; a restarted server resumes it",
    "job_expired": "TTL garbage collection reaped a terminal job",
    "service_rejected": "admission control load-shed a submission (503)",
}


#: verification events emitted by the ``repro check`` engines (node and
#: block are -1 unless the event names one; ``now`` is the engine's own
#: ordinal — explored states, diffed cells, or fuzz cases — not a simulated
#: clock)
CHECK_EVENT_KINDS = {
    "explore_variant": "one tiny configuration exhaustively explored "
    "(detail: system=states=transitions)",
    "explore_violation": "the explorer hit an invariant violation "
    "(detail: the minimal event path)",
    "diff_cell": "one (system, benchmark) cell diffed against the oracle "
    "(detail: system/benchmark)",
    "diff_divergence": "the optimised simulator and the oracle disagree "
    "(detail: cell and first differing counter)",
    "diff_parallel": "serial vs --jobs N sweep counters compared "
    "(detail: identical|divergent)",
    "fuzz_case": "one fuzz case executed (detail: strategy)",
    "fuzz_failure": "a fuzz case failed and will be shrunk "
    "(detail: error class)",
    "fuzz_shrunk": "a failing fuzz case was minimised and saved "
    "(detail: artifact path)",
    "replay": "a saved fuzz artifact was re-executed (detail: verdict)",
}


class EventTracer:
    """Bounded in-memory event ring with an optional JSONL sink.

    ``capacity`` bounds the ring buffer (oldest events fall off);
    ``jsonl_path`` additionally streams every event to a file, one JSON
    object per line, flushed on :meth:`close`.  By default the stream
    relies on the interpreter's buffering — a worker killed mid-run can
    lose the buffered tail — so durability-sensitive callers pass
    ``flush_every`` to force a flush after every N emitted events
    (``flush_every=1`` flushes per event; whole lines are written before
    any flush, so a flushed event always survives as a complete line).
    The tracer is cheap but not free — attach one only when the events
    are wanted.
    """

    __slots__ = (
        "_ring", "_seq", "kind_counts", "_sink", "_own_sink",
        "_flush_every", "_since_flush",
    )

    def __init__(
        self,
        capacity: int = 65536,
        jsonl_path: Optional[str] = None,
        flush_every: Optional[int] = None,
    ) -> None:
        self._ring: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._seq = 0
        #: events emitted per kind since construction (never truncated)
        self.kind_counts: Dict[str, int] = {}
        self._sink: Optional[IO[str]] = None
        self._own_sink = False
        if flush_every is not None and flush_every <= 0:
            raise ValueError("flush_every must be a positive integer")
        self._flush_every = flush_every
        self._since_flush = 0
        if jsonl_path is not None:
            self._sink = open(jsonl_path, "w", encoding="utf-8")
            self._own_sink = True

    # ---- emission (called by the simulator/directory) -------------------

    def emit(
        self, kind: str, now: int, node: int = -1, block: int = -1, detail: str = ""
    ) -> None:
        event = TraceEvent(self._seq, now, kind, node, block, detail)
        self._seq += 1
        self._ring.append(event)
        counts = self.kind_counts
        counts[kind] = counts.get(kind, 0) + 1
        if self._sink is not None:
            self._sink.write(json.dumps(event.as_dict()) + "\n")
            if self._flush_every is not None:
                self._since_flush += 1
                if self._since_flush >= self._flush_every:
                    self._sink.flush()
                    self._since_flush = 0

    # ---- inspection ------------------------------------------------------

    def __len__(self) -> int:
        """Events currently held in the ring (<= capacity)."""
        return len(self._ring)

    @property
    def total_emitted(self) -> int:
        """Events emitted since construction (not bounded by the ring)."""
        return self._seq

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def events_of(self, kind: str) -> Iterator[TraceEvent]:
        return (e for e in self._ring if e.kind == kind)

    def clear(self) -> None:
        self._ring.clear()
        self.kind_counts.clear()

    # ---- sinks ----------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """Dump the retained ring to ``path``; returns events written."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self._ring:
                fh.write(json.dumps(event.as_dict()) + "\n")
        return len(self._ring)

    def close(self) -> None:
        """Flush and close the streaming JSONL sink, if any."""
        if self._sink is not None and self._own_sink:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "EventTracer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
