"""Live sweep monitoring: the engine behind ``repro top``.

A sweep started with ``--run-dir`` leaves a complete, crash-safe account
of itself on disk while it runs: ``run.json`` (the planned matrix),
``journal.jsonl`` (one fsynced record per completed cell, with engine
timings), and ``recovery.jsonl`` (every retry/timeout/fault action,
streamed by the sweep's :class:`~repro.sim.parallel.RecoveryLog`).  This
module *tails* those three files — read-only, tolerant of torn lines and
of the directory not existing yet — and renders a progress board:

* per-cell grid (``.`` planned, ``#`` done) in plan order;
* completed/total cells, simulated refs, engine refs/sec;
* an ETA extrapolated from the mean engine-seconds of completed cells
  and the observed completion rate;
* recovery-action counts (retries, timeouts, lost workers, faults).

``repro top RUN_DIR`` prints the board once; ``--follow`` redraws every
``--interval`` seconds until the matrix completes.  The monitor never
writes to the run directory and works equally on a finished sweep (a
post-mortem summary) or a directory another process is mid-way through.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..sim.checkpoint import (
    JOURNAL_NAME,
    RECOVERY_NAME,
    iter_journal_lines,
    read_run_header,
)


class SweepProgress:
    """One observation of a run directory's state."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        header = read_run_header(self.run_dir) or {}
        self.systems: List[str] = list(header.get("systems", []))
        self.benchmarks: List[str] = list(header.get("benchmarks", []))
        self.refs_per_cell = int(header.get("refs", 0))
        self.header_present = bool(header)
        #: (system, benchmark) -> journal record (newest wins, like resume)
        self.done: Dict[Tuple[str, str], dict] = {}
        for rec in iter_journal_lines(self.run_dir / JOURNAL_NAME):
            try:
                key = (str(rec["system"]), str(rec["benchmark"]))
            except KeyError:
                continue
            self.done[key] = rec
        self.recovery_counts: Dict[str, int] = {}
        self.recovery_last: Optional[dict] = None
        for rec in iter_journal_lines(self.run_dir / RECOVERY_NAME):
            kind = str(rec.get("kind", "?"))
            self.recovery_counts[kind] = self.recovery_counts.get(kind, 0) + 1
            self.recovery_last = rec

    # ---- derived numbers -------------------------------------------------

    @property
    def total_cells(self) -> int:
        return len(self.systems) * len(self.benchmarks)

    @property
    def done_cells(self) -> int:
        if not self.total_cells:
            return len(self.done)
        return sum(
            1
            for s in self.systems
            for b in self.benchmarks
            if (s, b) in self.done
        )

    @property
    def complete(self) -> bool:
        return self.total_cells > 0 and self.done_cells >= self.total_cells

    @property
    def cached_cells(self) -> int:
        """Cells served from the content-addressed result store.

        Journal records carry ``source: cache`` when the sweep restored
        them from :mod:`repro.service.store` instead of simulating (older
        journals have no source field and count as simulated).
        """
        return sum(
            1 for rec in self.done.values() if rec.get("source") == "cache"
        )

    @property
    def simulated_refs(self) -> int:
        return sum(int(rec.get("refs", 0)) for rec in self.done.values())

    @property
    def engine_seconds(self) -> float:
        return sum(float(rec.get("elapsed_s", 0.0)) for rec in self.done.values())

    @property
    def refs_per_sec(self) -> float:
        secs = self.engine_seconds
        return self.simulated_refs / secs if secs > 0 else 0.0

    def eta_seconds(self, jobs: int = 1) -> Optional[float]:
        """Engine-time estimate for the remaining cells.

        Mean engine-seconds of completed cells x cells left, divided by
        ``jobs`` (the best the monitor can do without knowing scheduling).
        ``None`` until at least one cell has finished or when done.
        """
        completed = self.done_cells
        remaining = self.total_cells - completed
        if completed <= 0 or remaining <= 0:
            return None
        mean = self.engine_seconds / completed
        return mean * remaining / max(1, jobs)

    # ---- rendering -------------------------------------------------------

    def grid(self) -> List[str]:
        """Per-cell progress grid, one row per benchmark, in plan order.

        ``.`` planned, ``#`` simulated, ``+`` served from the result store.
        """
        if not self.systems or not self.benchmarks:
            return []
        width = max(len(b) for b in self.benchmarks)
        rows = [
            " " * (width + 2)
            + " ".join(f"{s[:7]:<7}" for s in self.systems)
        ]
        for bench in self.benchmarks:
            marks = " ".join(
                f"{self._mark(s, bench):<7}" for s in self.systems
            )
            rows.append(f"{bench:<{width}}  {marks}")
        return rows

    def _mark(self, system: str, bench: str) -> str:
        rec = self.done.get((system, bench))
        if rec is None:
            return "."
        return "+" if rec.get("source") == "cache" else "#"

    def snapshot(self, jobs: int = 1) -> Dict[str, object]:
        """The board as a plain JSON-serialisable dict.

        The machine-readable twin of :meth:`render`, served by the job
        server's ``/jobs/<id>`` and ``/top`` endpoints and consumed by
        ``scripts/load_test.py`` — same numbers, no text parsing.
        """
        eta = self.eta_seconds(jobs=jobs)
        return {
            "run_dir": str(self.run_dir),
            "header_present": self.header_present,
            "systems": list(self.systems),
            "benchmarks": list(self.benchmarks),
            "total_cells": self.total_cells,
            "done_cells": self.done_cells,
            "cached_cells": self.cached_cells,
            "simulated_cells": self.done_cells - self.cached_cells,
            "complete": self.complete,
            "simulated_refs": self.simulated_refs,
            "engine_seconds": round(self.engine_seconds, 6),
            "refs_per_sec": round(self.refs_per_sec, 1),
            "eta_seconds": round(eta, 3) if eta is not None else None,
            "recovery_counts": dict(self.recovery_counts),
            "recovery_last": dict(self.recovery_last) if self.recovery_last else None,
        }

    def render(self, jobs: int = 1) -> str:
        """The full progress board as printable text."""
        lines = [f"sweep {self.run_dir}"]
        if not self.header_present:
            lines.append("  (no run.json yet — sweep not started or wrong dir)")
        total = self.total_cells
        done = self.done_cells
        if total:
            pct = 100.0 * done / total
            lines.append(f"cells    {done}/{total} done ({pct:.0f}%)")
        else:
            lines.append(f"cells    {done} journalled (header missing)")
        lines.append(
            f"refs     {self.simulated_refs:,} simulated, "
            f"{self.refs_per_sec:,.0f} refs/s engine"
        )
        if self.cached_cells:
            lines.append(
                f"cache    {self.cached_cells} cell(s) from the result "
                f"store, {self.done_cells - self.cached_cells} simulated"
            )
        eta = self.eta_seconds(jobs=jobs)
        if self.complete:
            lines.append(f"status   complete ({self.engine_seconds:.1f}s engine time)")
        elif eta is not None:
            lines.append(f"status   running, ~{eta:.0f}s engine time remaining")
        else:
            lines.append("status   waiting for the first cell")
        if self.recovery_counts:
            counts = ", ".join(
                f"{k}={self.recovery_counts[k]}"
                for k in sorted(self.recovery_counts)
            )
            lines.append(f"recovery {counts}")
            last = self.recovery_last or {}
            detail = str(last.get("detail", ""))[:60]
            if detail:
                lines.append(f"         last: {last.get('kind')}: {detail}")
        grid = self.grid()
        if grid:
            lines.append("")
            lines.extend(grid)
        return "\n".join(lines)


def watch(
    run_dir: Union[str, Path],
    follow: bool = False,
    interval: float = 2.0,
    jobs: int = 1,
    max_updates: Optional[int] = None,
    out=None,
) -> SweepProgress:
    """Print the progress board for ``run_dir``; optionally keep watching.

    With ``follow=True`` the board is re-read and re-printed every
    ``interval`` seconds until the sweep completes (or ``max_updates``
    boards have been printed — the testing hook).  Returns the final
    observation.
    """
    import sys

    stream = out if out is not None else sys.stdout
    updates = 0
    while True:
        progress = SweepProgress(run_dir)
        if updates:
            stream.write("\n")
        stream.write(progress.render(jobs=jobs) + "\n")
        stream.flush()
        updates += 1
        if not follow or progress.complete:
            return progress
        if max_updates is not None and updates >= max_updates:
            return progress
        time.sleep(interval)
