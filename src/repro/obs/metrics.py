"""A deterministic registry of named counters, gauges, and histograms.

Snapshots are plain nested dicts (JSON- and pickle-friendly, so they
ride back from sweep worker processes unchanged) with three sections:

* ``counters`` — summable integer event tallies.  Merging snapshots adds
  them, so the aggregate of a parallel sweep equals the serial one
  bit-for-bit.
* ``gauges`` — per-run state readings (occupancies, entry counts) taken
  at the end of a run.  Merging averages them (deterministically: plain
  arithmetic over the merge order, which the sweep engine fixes to plan
  order).
* ``histograms`` — fixed-bucket distributions; merging sums buckets.
  Merging histograms with *different* bucket bounds is a caller error
  and raises :class:`ValueError` naming the offending metric — never a
  silent mis-merge.
* ``series`` — windowed interval time-series (``{"window": W, "values":
  [...]}``): one value per simulated-time window of ``W`` references,
  written by the stall profiler (:mod:`repro.obs.profile`).  Merging
  adds values element-wise (shorter series are zero-padded); a window
  size mismatch raises :class:`ValueError`.

:func:`run_metrics` builds the standard snapshot for one finished
simulation: every :class:`~repro.stats.Counters` field under
``events.``, machine-state gauges under ``state.``, the NC set-occupancy
distribution under ``hist.``, and — when an
:class:`~repro.obs.events.EventTracer` was attached — per-kind event
totals under ``trace.``.  The full catalog is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Snapshot = Dict[str, Dict[str, object]]


class Histogram:
    """Fixed-boundary histogram: ``len(bounds) + 1`` buckets.

    A value ``v`` lands in the first bucket whose upper bound exceeds it;
    values above every bound land in the overflow bucket.
    """

    __slots__ = ("bounds", "counts")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)

    def record(self, value: float, count: int = 1) -> None:
        self.counts[bisect_right(self.bounds, value)] += count

    @property
    def total(self) -> int:
        return sum(self.counts)

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram bounds mismatch: {self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c

    def as_dict(self) -> Dict[str, object]:
        return {"bounds": list(self.bounds), "counts": list(self.counts)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        h = cls(data["bounds"])  # type: ignore[arg-type]
        counts = list(data["counts"])  # type: ignore[arg-type]
        if len(counts) != len(h.bounds) + 1:
            raise ValueError(
                f"histogram counts/bounds mismatch: {len(h.bounds)} bounds "
                f"need {len(h.bounds) + 1} buckets, got {len(counts)}"
            )
        h.counts = counts
        return h


class MetricsRegistry:
    """Accumulates named metrics; :meth:`snapshot` freezes them."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, Histogram] = {}

    # ---- writers ---------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def hist(self, name: str, bounds: Sequence[float]) -> Histogram:
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = Histogram(bounds)
        return h

    # ---- freeze ----------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """A deterministic (sorted-key) plain-dict copy of everything."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._hists[k].as_dict() for k in sorted(self._hists)
            },
            "series": {},
        }


def _empty_snapshot() -> Snapshot:
    return {"counters": {}, "gauges": {}, "histograms": {}, "series": {}}


def _merge_series(
    name: str, into: Dict[str, object], new: Dict[str, object]
) -> Dict[str, object]:
    """Element-wise sum of two windowed series; zero-pads the shorter."""
    if int(into["window"]) != int(new["window"]):
        raise ValueError(
            f"series {name!r}: window mismatch "
            f"({into['window']} vs {new['window']}); re-profile with the "
            f"same REPRO_PROFILE_WINDOW before merging"
        )
    a, b = list(into["values"]), list(new["values"])
    if len(a) < len(b):
        a, b = b, a
    merged = list(a)
    for i, v in enumerate(b):
        merged[i] += v
    return {"window": int(into["window"]), "values": merged}


def merge_snapshots(a: Optional[Snapshot], b: Optional[Snapshot]) -> Snapshot:
    """Merge two snapshots: counters add, gauges average, buckets add,
    series add element-wise.

    ``None`` inputs are treated as empty, so results without metrics can
    participate in an aggregate without special-casing.  Histograms (or
    series) recorded under the same name with different bucket bounds
    (or window sizes) raise :class:`ValueError` naming the metric —
    mismatched shapes are a caller bug, never silently mis-merged.
    """
    out = _empty_snapshot()
    for snap in (a, b):
        if snap is None:
            continue
        for k, v in snap.get("counters", {}).items():
            out["counters"][k] = out["counters"].get(k, 0) + v
        for k, v in snap.get("histograms", {}).items():
            if k in out["histograms"]:
                h = Histogram.from_dict(out["histograms"][k])
                try:
                    h.merge(Histogram.from_dict(v))
                except ValueError as exc:
                    raise ValueError(f"histogram {k!r}: {exc}") from exc
                out["histograms"][k] = h.as_dict()
            else:
                out["histograms"][k] = Histogram.from_dict(v).as_dict()
        for k, v in snap.get("series", {}).items():
            if k in out["series"]:
                out["series"][k] = _merge_series(k, out["series"][k], v)
            else:
                out["series"][k] = {
                    "window": int(v["window"]),
                    "values": list(v["values"]),
                }
    # gauges: unweighted mean over however many snapshots carried the key
    seen: Dict[str, Tuple[float, int]] = {}
    for snap in (a, b):
        if snap is None:
            continue
        for k, v in snap.get("gauges", {}).items():
            total, n = seen.get(k, (0.0, 0))
            # a previously merged snapshot may itself be a mean; fold the
            # sample count through the companion "<k>#n" gauge when present
            weight = int(snap.get("gauges", {}).get(k + "#n", 1))
            seen[k] = (total + v * weight, n + weight)
    for k, (total, n) in seen.items():
        if k.endswith("#n"):
            continue
        out["gauges"][k] = total / n if n else 0.0
        out["gauges"][k + "#n"] = float(n)
    out["counters"] = {k: out["counters"][k] for k in sorted(out["counters"])}
    out["gauges"] = {k: out["gauges"][k] for k in sorted(out["gauges"])}
    out["histograms"] = {k: out["histograms"][k] for k in sorted(out["histograms"])}
    out["series"] = {k: out["series"][k] for k in sorted(out["series"])}
    return out


def aggregate_metrics(snapshots: Iterable[Optional[Snapshot]]) -> Snapshot:
    """Fold many per-run snapshots into one sweep-level aggregate."""
    out: Snapshot = _empty_snapshot()
    for snap in snapshots:
        out = merge_snapshots(out, snap)
    return out


# ---------------------------------------------------------------------------
# the standard per-run snapshot
# ---------------------------------------------------------------------------

#: NC set-occupancy histogram buckets: 0, 1, 2, 3 lines, 4+ (overflow)
_NC_OCCUPANCY_BOUNDS = (0.0, 1.0, 2.0, 3.0)


def run_metrics(counters, machine, tracer=None) -> Snapshot:
    """The standard metrics snapshot for one finished simulation.

    Deterministic for a given (config, trace): gauges read quiescent
    machine state, counters copy the event tally, and the NC
    set-occupancy histogram walks the victim NC's sets.  ``tracer`` — if
    one was attached to the run — contributes per-kind event totals.
    """
    reg = MetricsRegistry()
    for name, value in counters.as_dict().items():
        reg.inc(f"events.{name}", value)

    # machine-state gauges (end-of-run residency)
    l1_lines = l1_frames = 0
    nc_lines = 0
    pc_frames = pc_capacity = 0
    nc_hist = reg.hist("hist.nc_set_occupancy", _NC_OCCUPANCY_BOUNDS)
    for node in machine.nodes:
        for l1 in node.l1s:
            l1_lines += len(l1)
            l1_frames += l1.n_sets * l1.assoc
        nc_stats = node.nc.stats()
        nc_lines += int(nc_stats.get("resident", 0))
        for occ in node.nc.set_occupancies():
            nc_hist.record(occ)
        if node.pc is not None:
            pc_frames += len(node.pc)
            pc_capacity += node.pc.capacity
    reg.gauge("state.l1_occupancy", l1_lines / l1_frames if l1_frames else 0.0)
    reg.gauge("state.nc_resident_blocks", float(nc_lines))
    reg.gauge("state.pc_frames_used", float(pc_frames))
    reg.gauge(
        "state.pc_occupancy", pc_frames / pc_capacity if pc_capacity else 0.0
    )
    reg.gauge("state.directory_entries", float(machine.directory.n_entries()))
    reg.gauge(
        "state.directory_owned_blocks", float(len(machine.directory.owned_blocks()))
    )

    if tracer is not None:
        for kind in sorted(tracer.kind_counts):
            reg.inc(f"trace.{kind}", tracer.kind_counts[kind])
    return reg.snapshot()
