"""Hardware parameters, latency model, and system configuration.

This module encodes the machine geometry and the constant-latency
performance model of the paper:

* machine geometry (Sec. 5.1): 8 nodes x 4 processors, 16 KB two-way
  write-back processor caches with 64-byte blocks, 4 KB pages;
* event latencies (Table 2): DRAM access 10, tag checking 3,
  cache-to-cache transfer 1, remote access 30, page relocation 225 — all in
  10 ns bus cycles;
* the named remote-data-cache configurations of Sec. 5.1 are assembled in
  :mod:`repro.system.builder` from the dataclasses defined here.

All sizes are in bytes unless a suffix says otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigurationError

# --------------------------------------------------------------------------
# Machine geometry defaults (Sec. 5.1)
# --------------------------------------------------------------------------

DEFAULT_NODES = 8
DEFAULT_PROCS_PER_NODE = 4
DEFAULT_CACHE_SIZE = 16 * 1024
DEFAULT_CACHE_ASSOC = 2
DEFAULT_BLOCK_SIZE = 64
DEFAULT_PAGE_SIZE = 4096
DEFAULT_NC_SIZE = 16 * 1024
DEFAULT_NC_ASSOC = 4
DEFAULT_DRAM_NC_SIZE = 512 * 1024
WORD_SIZE = 4


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class NCKind(enum.Enum):
    """The network-cache organisations evaluated in the paper."""

    NONE = "none"  #: no network cache (the `base` system)
    DIRTY_INCLUSION = "dirty_inclusion"  #: SRAM NC, inclusion for dirty only (`nc`)
    VICTIM = "victim"  #: network victim cache (`vb` / `vp`)
    DRAM_FULL_INCLUSION = "dram"  #: large DRAM NC with full inclusion (`NCD`)
    INFINITE_SRAM = "inf_sram"  #: infinite fast NC (`NCS`)
    INFINITE_DRAM = "inf_dram"  #: infinite slow NC (normalisation reference)


class NCIndexing(enum.Enum):
    """How a set-associative NC computes its set index (Sec. 3.3/6.1.3)."""

    BLOCK = "block"  #: least-significant bits of the block address (`vb`)
    PAGE = "page"  #: least-significant bits of the page address (`vp`)


class RelocationCounters(enum.Enum):
    """Where the page-relocation counters live (Sec. 3.4)."""

    DIRECTORY = "directory"  #: R-NUMA: per (page, cluster) at the home directory
    NC_SET = "nc_set"  #: the paper's proposal: per set of the victim NC (`vxp`)


#: The paper initialises relocation thresholds to 32 (Sec. 6.2) for traces
#: of full benchmark executions (>= 10^8 references).  Our bounded traces
#: (default 400k) see proportionally fewer capacity misses per page, so the
#: library's default threshold and increment are the paper's values scaled
#: by THRESHOLD_SCALE; experiments that compare thresholds (Figs. 6/11)
#: keep the paper's 2x ratio (scaled 32 vs 64 -> 8 vs 16).
PAPER_INITIAL_THRESHOLD = 32
PAPER_THRESHOLD_INCREMENT = 8
THRESHOLD_SCALE = 4
DEFAULT_INITIAL_THRESHOLD = PAPER_INITIAL_THRESHOLD // THRESHOLD_SCALE
DEFAULT_THRESHOLD_INCREMENT = PAPER_THRESHOLD_INCREMENT // THRESHOLD_SCALE


class ThresholdPolicy(enum.Enum):
    """Relocation threshold policy (Sec. 6.2)."""

    FIXED = "fixed"
    ADAPTIVE = "adaptive"


class BusProtocol(enum.Enum):
    """Intra-cluster bus protocol variant (Sec. 3.2).

    The paper's base protocol is MESIR (MESI + the R remote-clean-master
    state).  MOESIR adds the dirty-shared O state the authors evaluated
    and rejected ("very little benefit"): with O, a peer read of an M
    remote block keeps the dirty data in the supplier instead of pushing a
    write-back into the victim NC.
    """

    MESIR = "mesir"
    MOESIR = "moesir"


@dataclass(frozen=True)
class LatencyModel:
    """Constant event latencies in bus cycles (Table 2).

    The model deliberately ignores contention and hop-count variation, as
    the paper's does.  The composite latencies of Table 1 are exposed as
    properties: e.g. a DRAM NC hit costs a DRAM access plus tag checking.
    """

    dram_access: int = 10
    tag_check: int = 3
    cache_to_cache: int = 1
    remote_access: int = 30
    page_relocation: int = 225

    def __post_init__(self) -> None:
        for name in (
            "dram_access",
            "tag_check",
            "cache_to_cache",
            "remote_access",
            "page_relocation",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"latency {name} must be >= 0")

    # ---- Table 1 composites --------------------------------------------

    @property
    def sram_nc_hit(self) -> int:
        """SRAM NC hit: a cache-to-cache transfer on the bus."""
        return self.cache_to_cache

    @property
    def sram_nc_miss(self) -> int:
        """SRAM NC miss: plain remote access (NC snoops at bus speed)."""
        return self.remote_access

    @property
    def dram_nc_hit(self) -> int:
        """DRAM NC hit: DRAM access plus tag checking."""
        return self.dram_access + self.tag_check

    @property
    def dram_nc_miss(self) -> int:
        """DRAM NC miss: remote access plus the wasted tag check."""
        return self.remote_access + self.tag_check

    @property
    def pc_hit(self) -> int:
        """Page-cache hit: one local DRAM access (block state snooped in SRAM)."""
        return self.dram_access

    @property
    def relocation_equivalent_misses(self) -> float:
        """One page relocation expressed in remote-miss equivalents (225/30)."""
        return self.page_relocation / self.remote_access


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/block-size triple for any set-associative cache."""

    size: int
    assoc: int
    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.block_size <= 0:
            raise ConfigurationError("cache geometry fields must be positive")
        if not _is_pow2(self.block_size):
            raise ConfigurationError("block size must be a power of two")
        if self.size % (self.assoc * self.block_size) != 0:
            raise ConfigurationError(
                f"cache size {self.size} not divisible by assoc*block "
                f"({self.assoc}*{self.block_size})"
            )
        if not _is_pow2(self.n_sets):
            raise ConfigurationError(
                f"number of sets ({self.n_sets}) must be a power of two"
            )

    @property
    def n_blocks(self) -> int:
        return self.size // self.block_size

    @property
    def n_sets(self) -> int:
        return self.n_blocks // self.assoc


@dataclass(frozen=True)
class NCConfig:
    """Network-cache configuration."""

    kind: NCKind = NCKind.NONE
    size: int = DEFAULT_NC_SIZE
    assoc: int = DEFAULT_NC_ASSOC
    indexing: NCIndexing = NCIndexing.BLOCK

    def __post_init__(self) -> None:
        if self.kind in (NCKind.NONE, NCKind.INFINITE_SRAM, NCKind.INFINITE_DRAM):
            return
        # finite caches must have a valid geometry
        CacheGeometry(self.size, self.assoc)

    @property
    def is_infinite(self) -> bool:
        return self.kind in (NCKind.INFINITE_SRAM, NCKind.INFINITE_DRAM)

    @property
    def is_dram(self) -> bool:
        return self.kind in (NCKind.DRAM_FULL_INCLUSION, NCKind.INFINITE_DRAM)

    def geometry(self, block_size: int) -> CacheGeometry:
        """Geometry of the finite NC; raises for NONE/infinite kinds."""
        if self.kind is NCKind.NONE or self.is_infinite:
            raise ConfigurationError(f"NC kind {self.kind} has no finite geometry")
        return CacheGeometry(self.size, self.assoc, block_size)


@dataclass(frozen=True)
class PCConfig:
    """Page-cache configuration.

    The page-cache size is given either as a byte count (``size_bytes``,
    used for the 512 KB comparisons of Figs. 9/10) or as a fraction of the
    application's dataset size (``fraction`` — e.g. 1/5 for the `*5`
    systems).  Exactly one of the two must be set when ``enabled``.
    """

    enabled: bool = False
    size_bytes: Optional[int] = None
    fraction: Optional[float] = None
    counters: RelocationCounters = RelocationCounters.DIRECTORY
    threshold_policy: ThresholdPolicy = ThresholdPolicy.ADAPTIVE
    initial_threshold: int = DEFAULT_INITIAL_THRESHOLD
    threshold_increment: int = DEFAULT_THRESHOLD_INCREMENT
    break_even: int = 12
    window_factor: int = 2
    hit_counter_max: int = 63
    #: Sec. 3.4 refinement (off in the paper's base system): a late
    #: invalidation decrements the relocation counter it inflated
    decrement_on_invalidation: bool = False
    #: NC-set counter sharing for `vxp` (1 = the paper's one-per-set)
    nc_counter_sharing: int = 1

    def __post_init__(self) -> None:
        if not self.enabled:
            return
        if (self.size_bytes is None) == (self.fraction is None):
            raise ConfigurationError(
                "exactly one of size_bytes / fraction must be set for an "
                "enabled page cache"
            )
        if self.size_bytes is not None and self.size_bytes <= 0:
            raise ConfigurationError("page cache size_bytes must be positive")
        if self.fraction is not None and not (0.0 < self.fraction <= 1.0):
            raise ConfigurationError("page cache fraction must be in (0, 1]")
        if self.initial_threshold < 1:
            raise ConfigurationError("initial_threshold must be >= 1")
        if self.nc_counter_sharing < 1:
            raise ConfigurationError("nc_counter_sharing must be >= 1")

    def frames_for_dataset(self, dataset_bytes: int, page_size: int) -> int:
        """Number of page frames the PC gets for a given dataset size."""
        if not self.enabled:
            return 0
        if self.size_bytes is not None:
            nbytes = self.size_bytes
        else:
            assert self.fraction is not None
            nbytes = int(dataset_bytes * self.fraction)
        return max(1, nbytes // page_size)


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated machine configuration."""

    name: str = "custom"
    n_nodes: int = DEFAULT_NODES
    procs_per_node: int = DEFAULT_PROCS_PER_NODE
    cache: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(DEFAULT_CACHE_SIZE, DEFAULT_CACHE_ASSOC)
    )
    page_size: int = DEFAULT_PAGE_SIZE
    nc: NCConfig = field(default_factory=NCConfig)
    pc: PCConfig = field(default_factory=PCConfig)
    latency: LatencyModel = field(default_factory=LatencyModel)
    protocol: BusProtocol = BusProtocol.MESIR

    def __post_init__(self) -> None:
        if self.n_nodes <= 0 or self.procs_per_node <= 0:
            raise ConfigurationError("node/processor counts must be positive")
        if not _is_pow2(self.page_size):
            raise ConfigurationError("page size must be a power of two")
        if self.page_size < self.cache.block_size:
            raise ConfigurationError("page size must be >= block size")
        if self.pc.enabled and self.nc.kind is NCKind.NONE:
            # Allowed: Fig. 7's "no NC" page-cache system.  Counters must
            # then live at the directory.
            if self.pc.counters is RelocationCounters.NC_SET:
                raise ConfigurationError(
                    "NC-set relocation counters require a victim NC"
                )
        if (
            self.pc.enabled
            and self.pc.counters is RelocationCounters.NC_SET
            and self.nc.kind is not NCKind.VICTIM
        ):
            raise ConfigurationError(
                "NC-set relocation counters require a victim NC"
            )

    @property
    def n_procs(self) -> int:
        return self.n_nodes * self.procs_per_node

    @property
    def block_size(self) -> int:
        return self.cache.block_size

    @property
    def block_bits(self) -> int:
        return self.block_size.bit_length() - 1

    @property
    def page_bits(self) -> int:
        return self.page_size.bit_length() - 1

    @property
    def blocks_per_page(self) -> int:
        return self.page_size // self.block_size

    def node_of(self, pid: int) -> int:
        """Cluster (node) id of processor ``pid``."""
        if not 0 <= pid < self.n_procs:
            raise ConfigurationError(
                f"processor id {pid} out of range [0, {self.n_procs})"
            )
        return pid // self.procs_per_node

    def with_(self, **changes: object) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]
