"""Figure 3: cluster miss ratio vs. L1 associativity and victim-NC size.

Paper setup: 16 KB processor caches at associativity 1/2/4, with a
block-indexed network victim cache of size 0 (none), 1 KB, or 16 KB.
Expected shape: the 1 KB victim NC lifts 2-way caches to roughly 4-way
no-NC miss ratios (it absorbs conflict misses); 16 KB additionally absorbs
capacity misses (clearest for Barnes/Ocean; for Radix the win is on write
misses).
"""

from __future__ import annotations

import time

from typing import Dict, Optional, Tuple

from ..analysis.report import format_grid
from ..sim.runner import simulate
from .common import BENCHES, ExperimentResult, default_refs, matrix_timing

ASSOCS = (1, 2, 4)
NC_SIZES = (0, 1024, 16 * 1024)  # 0 = no NC


def _label(assoc: int, nc_size: int) -> str:
    kb = nc_size // 1024
    return f"{assoc}w-vb{kb}"


def run(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    n = refs if refs is not None else default_refs()
    start = time.perf_counter()
    results = {}
    data: Dict[Tuple[str, str], float] = {}
    for bench in BENCHES:
        for assoc in ASSOCS:
            for nc_size in NC_SIZES:
                label = _label(assoc, nc_size)
                if nc_size == 0:
                    r = simulate("base", bench, refs=n, seed=seed, cache_assoc=assoc)
                else:
                    r = simulate(
                        "vb", bench, refs=n, seed=seed,
                        cache_assoc=assoc, nc_size=nc_size,
                    )
                results[(label, bench)] = r
                data[(label, bench)] = r.miss_ratio

    timing = matrix_timing(results, time.perf_counter() - start, 1)
    cols = [_label(a, s) for a in ASSOCS for s in NC_SIZES]
    table = format_grid(
        "Cluster miss ratio (% of shared refs); L1 assoc x victim-NC size",
        list(BENCHES),
        cols,
        lambda b, c: data[(c, b)],
        col_width=9,
    )
    return ExperimentResult(
        "fig03",
        "Effects of the network victim cache on the cluster remote miss ratio",
        table,
        data,
        results,
        timing=timing,
    )
