"""Figure 7: page-cache systems at several memory pressures.

Paper setup: three system families — no NC (`p*`), dirty-inclusion NC
(`ncp*`, i.e. R-NUMA), victim NC (`vbp*`) — each with page caches of 0,
1/9, 1/7, and 1/5 of the dataset (memory pressures 90/87.5/83.3%).  The
relocation overhead is stacked on top of the read+write miss-ratio bars.

Expected shape: the 16 KB NC (either kind) lowers both the miss ratio and
the relocation overhead over the no-NC system (it filters conflict misses
out of the relocation counters); the victim NC beats the inclusion NC,
most clearly for the irregular applications (Barnes, FMM, Radix,
Raytrace) and at the smaller page caches; FFT and Ocean show no
`ncp`-vs-`vbp` difference (their relocated sets are small and stable).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.metrics import stacked_miss_bars
from ..analysis.report import format_stacked_bars
from .common import BENCHES, ExperimentResult, run_matrix_timed

#: columns: family x PC fraction; fraction 0 = no page cache
FAMILIES = ("p", "ncp", "vbp")
FRACTIONS = (0, 9, 7, 5)

_NO_PC = {"p": "base", "ncp": "nc", "vbp": "vb"}


def _label(family: str, frac: int) -> str:
    return f"{family}{frac}" if frac else _NO_PC[family]


def run(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    systems = [_label(f, frac) for f in FAMILIES for frac in FRACTIONS]
    results, timing = run_matrix_timed(systems, refs=refs, seed=seed)
    stacks = {key: stacked_miss_bars(r) for key, r in results.items()}
    data: Dict[Tuple[str, str], float] = {
        key: r.miss_ratio + r.relocation_overhead_ratio
        for key, r in results.items()
    }
    table = format_stacked_bars(
        "Cluster miss ratios (%) + relocation overhead for page-cache "
        "systems at PC = 0, 1/9, 1/7, 1/5 of the dataset",
        list(BENCHES),
        systems,
        {(b, s): stacks[(s, b)] for s in systems for b in BENCHES},
        col_width=20,
    )
    return ExperimentResult(
        "fig07",
        "Comparison of cluster miss ratios for several systems with page caches",
        table,
        data,
        results,
        timing=timing,
    )
