"""Figure 8: victim-cache indexing (`vbp` vs `vpp`) with a 1/5 page cache.

Expected shape: the page cache largely evens out the indexing schemes —
pages that conflict in the page-indexed NC get relocated and served from
the PC — so the Fig. 5 gaps shrink (Cholesky) or vanish (Ocean, FFT),
demonstrating that a page-address-indexed victim cache is feasible.  LU
remains the worst case for `vpp`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.metrics import stacked_miss_bars
from ..analysis.report import format_stacked_bars
from .common import BENCHES, ExperimentResult, run_matrix_timed

SYSTEMS = ("vbp5", "vpp5")


def run(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    results, timing = run_matrix_timed(SYSTEMS, refs=refs, seed=seed)
    stacks = {key: stacked_miss_bars(r) for key, r in results.items()}
    data: Dict[Tuple[str, str], float] = {
        key: r.miss_ratio + r.relocation_overhead_ratio
        for key, r in results.items()
    }
    table = format_stacked_bars(
        "Cluster miss ratios (%) with a 1/5 page cache: block- vs. "
        "page-indexed victim NC",
        list(BENCHES),
        list(SYSTEMS),
        {(b, s): stacks[(s, b)] for s in SYSTEMS for b in BENCHES},
    )
    return ExperimentResult(
        "fig08",
        "Victim-cache indexing in systems with page caches",
        table,
        data,
        results,
        timing=timing,
    )
