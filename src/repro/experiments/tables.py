"""Tables 1-3: the paper's structural tables, regenerated from the code.

These are consistency artifacts rather than measurements: Table 1's
latency components and Table 2's cycle counts are produced from the live
:class:`~repro.params.LatencyModel` (so a change to the model shows up in
the regenerated table), and Table 3 lists each synthetic benchmark with
its paper parameters/footprint and the scaled footprint actually
simulated.
"""

from __future__ import annotations

from typing import Optional

from ..params import LatencyModel
from ..sim.runner import DEFAULT_SCALE
from ..trace.synthetic import BENCHMARKS
from .common import ExperimentResult


def table1(latency: Optional[LatencyModel] = None) -> ExperimentResult:
    """Latency components for remote data references, per system."""
    lat = latency or LatencyModel()
    rows = [
        ("PC hit", "-", "-", "-", f"DRAM access ({lat.pc_hit})"),
        (
            "PC miss",
            "-",
            "-",
            "-",
            f"remote access ({lat.remote_access})",
        ),
        (
            "NC hit",
            "-",
            f"DRAM+tag ({lat.dram_nc_hit})",
            f"c2c ({lat.sram_nc_hit})",
            f"c2c ({lat.sram_nc_hit})",
        ),
        (
            "NC miss",
            f"remote ({lat.remote_access})",
            f"remote+tag ({lat.dram_nc_miss})",
            f"remote ({lat.sram_nc_miss})",
            f"remote ({lat.sram_nc_miss})",
        ),
    ]
    header = f"{'Event':10s}{'No NC':>18s}{'DRAM NC':>18s}{'SRAM NC':>18s}{'SRAM NC & PC':>22s}"
    lines = ["Latency components for remote data references (cycles)", header,
             "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row[0]:10s}{row[1]:>18s}{row[2]:>18s}{row[3]:>18s}{row[4]:>22s}"
        )
    return ExperimentResult("table1", "Latency components", "\n".join(lines))


def table2(latency: Optional[LatencyModel] = None) -> ExperimentResult:
    """Event latencies in 10 ns bus cycles."""
    lat = latency or LatencyModel()
    rows = [
        ("DRAM access", lat.dram_access),
        ("Tag checking", lat.tag_check),
        ("Cache-to-cache transfer", lat.cache_to_cache),
        ("Remote access", lat.remote_access),
        ("Page relocation", lat.page_relocation),
    ]
    lines = ["Latencies for the events in Table 1 (10ns bus cycles)"]
    for name, cycles in rows:
        lines.append(f"  {name:28s}{cycles:>6d}")
    return ExperimentResult("table2", "Event latencies", "\n".join(lines))


def table3(scale: float = DEFAULT_SCALE) -> ExperimentResult:
    """Benchmarks: paper parameters/footprints and scaled footprints."""
    lines = [
        f"Benchmark characteristics (simulated at scale {scale:g})",
        f"  {'Benchmark':12s}{'Parameters':>16s}{'Paper MB':>10s}{'Scaled MB':>11s}",
    ]
    for name in sorted(BENCHMARKS):
        gen = BENCHMARKS[name]()
        scaled_mb = gen.dataset_bytes(scale) / (1 << 20)
        lines.append(
            f"  {name:12s}{gen.paper_params:>16s}{gen.paper_mb:>10.2f}"
            f"{scaled_mb:>11.2f}"
        )
    return ExperimentResult("table3", "Benchmark characteristics", "\n".join(lines))
