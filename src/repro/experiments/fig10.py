"""Figure 10: remote data traffic, normalised to an infinite NC.

Same systems as Fig. 9; traffic = read misses + write misses +
write-backs crossing the network, in blocks.

Expected shapes: page-cache systems match `NCD` for the regular
applications; for Radix — the high-traffic stress case — the victim NC
slashes write/write-back traffic relative to both `base` and `ncp`
(R-NUMA), and the page cache itself absorbs write-backs locally; Raytrace
improves less (read traffic dominates); Barnes/FMM moderately (write
traffic is low).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.report import format_grid
from .common import BENCHES, ExperimentResult, run_matrix_timed
from .fig09 import REFERENCE, SYSTEMS


def run(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    results, timing = run_matrix_timed((REFERENCE,) + SYSTEMS, refs=refs, seed=seed)
    data: Dict[Tuple[str, str], float] = {}
    for bench in BENCHES:
        ref = results[(REFERENCE, bench)]
        for system in SYSTEMS:
            data[(system, bench)] = results[(system, bench)].normalized_traffic(ref)

    table = format_grid(
        "Remote data traffic (blocks), normalised to an infinite NC",
        list(BENCHES),
        list(SYSTEMS),
        lambda b, s: data[(s, b)],
        col_width=8,
    )
    return ExperimentResult(
        "fig10",
        "Remote data traffic",
        table,
        data,
        results,
        timing=timing,
    )
