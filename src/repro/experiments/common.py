"""Shared machinery for the per-figure experiment drivers.

Each ``figNN`` module exposes ``run(refs, seed) -> ExperimentResult`` that
re-generates one figure of the paper: same benchmarks down the rows, same
system configurations across the columns, same metric.  The benchmarks in
``benchmarks/`` print these tables and record timings.

The reference count is taken from the ``REPRO_BENCH_REFS`` environment
variable when not passed explicitly, so CI can dial the fidelity/runtime
trade-off without touching code.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..sim.results import SimulationResult
from ..sim.runner import DEFAULT_REFS, DEFAULT_SCALE, sweep

#: Table 3 order, used for every figure's rows
BENCHES = (
    "barnes",
    "cholesky",
    "fft",
    "fmm",
    "lu",
    "ocean",
    "radix",
    "raytrace",
)

#: scaled equivalents of the paper's 32/64 initial thresholds (see
#: repro.params.THRESHOLD_SCALE)
SCALED_THRESHOLD_32 = 8
SCALED_THRESHOLD_64 = 16


def default_refs() -> int:
    """Trace length for experiments (env ``REPRO_BENCH_REFS`` or 400k)."""
    raw = os.environ.get("REPRO_BENCH_REFS")
    if raw:
        return max(32, int(raw))
    return DEFAULT_REFS


def default_jobs() -> int:
    """Worker processes for experiment sweeps (env ``REPRO_JOBS`` or 1).

    Experiments default to serial so unit tests and one-off figure runs
    stay dependency-free; set ``REPRO_JOBS`` (or pass ``--jobs`` to the
    CLI) to fan matrices out over a process pool.
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        return max(1, int(raw))
    return 1


@dataclass
class ExperimentResult:
    """One regenerated figure/table: identification, data, rendered text."""

    experiment: str  #: e.g. "fig09"
    title: str
    table: str  #: the paper-shaped text table
    data: Dict[Tuple[str, str], float] = field(default_factory=dict)
    results: Dict[Tuple[str, str], SimulationResult] = field(default_factory=dict)
    notes: str = ""
    #: sweep wall-clock and per-cell engine timings (see run_matrix_timed)
    timing: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        out = [f"== {self.experiment}: {self.title} ==", self.table]
        if self.notes:
            out.append(self.notes)
        return "\n".join(out)


def matrix_timing(
    results: Dict[Tuple[str, str], SimulationResult], wall_s: float, jobs: int
) -> Dict[str, float]:
    """Aggregate throughput numbers for one simulated matrix."""
    total_refs = sum(r.refs for r in results.values())
    engine_s = sum(r.elapsed_s for r in results.values())
    timing: Dict[str, float] = {
        "wall_s": wall_s,
        "engine_s": engine_s,
        "total_refs": float(total_refs),
        "refs_per_sec": total_refs / wall_s if wall_s > 0 else 0.0,
        "jobs": float(jobs),
    }
    for (system, bench), r in results.items():
        timing[f"cell_s:{system}/{bench}"] = r.elapsed_s
    return timing


def merge_timings(*timings: Dict[str, float]) -> Dict[str, float]:
    """Combine the timing dicts of several sequential matrices into one."""
    merged: Dict[str, float] = {}
    wall = engine = total_refs = 0.0
    jobs = 1.0
    for t in timings:
        wall += t.get("wall_s", 0.0)
        engine += t.get("engine_s", 0.0)
        total_refs += t.get("total_refs", 0.0)
        jobs = max(jobs, t.get("jobs", 1.0))
        for key, value in t.items():
            if key.startswith("cell_s:"):
                # identical cells across sub-matrices (same system swept
                # twice with different overrides) accumulate
                merged[key] = merged.get(key, 0.0) + value
    merged.update(
        wall_s=wall,
        engine_s=engine,
        total_refs=total_refs,
        refs_per_sec=total_refs / wall if wall > 0 else 0.0,
        jobs=jobs,
    )
    return merged


def run_matrix_timed(
    systems: Iterable[str],
    refs: Optional[int] = None,
    seed: int = 1,
    benches: Iterable[str] = BENCHES,
    jobs: Optional[int] = None,
    **overrides: object,
) -> Tuple[Dict[Tuple[str, str], SimulationResult], Dict[str, float]]:
    """Simulate a matrix at experiment fidelity; returns (results, timing).

    ``timing`` carries the sweep wall-clock, summed engine seconds,
    aggregate refs/sec, and one ``cell_s:system/bench`` entry per cell —
    the payload experiment drivers attach to their ExperimentResult.

    Set ``REPRO_RUN_DIR`` to journal every matrix under
    ``$REPRO_RUN_DIR/matrix-<id>``: an interrupted experiment re-run with
    the same environment skips cells already recorded there and merges
    bit-identically with a from-scratch run (see docs/ROBUSTNESS.md).
    """
    systems = list(systems)
    benches = list(benches)
    n = refs if refs is not None else default_refs()
    j = jobs if jobs is not None else default_jobs()

    matrix_id = None
    if os.environ.get("REPRO_MANIFEST_DIR") or os.environ.get("REPRO_RUN_DIR"):
        from ..obs.manifest import config_digest

        matrix_id = config_digest((tuple(systems), tuple(benches), n, seed,
                                   tuple(sorted(overrides.items(), key=repr))))
    run_dir = None
    if os.environ.get("REPRO_RUN_DIR"):
        run_dir = os.path.join(os.environ["REPRO_RUN_DIR"], f"matrix-{matrix_id}")

    start = time.perf_counter()
    results = sweep(systems, benches, refs=n, seed=seed, jobs=j,
                    run_dir=run_dir, **overrides)
    wall = time.perf_counter() - start

    # Drop a run manifest when a destination is configured (no-op, and no
    # import cost, in the common interactive case).
    if os.environ.get("REPRO_MANIFEST_DIR"):
        from ..obs.manifest import maybe_write_sweep_manifest

        maybe_write_sweep_manifest(
            results,
            command="run_matrix:" + ",".join(systems),
            refs=n,
            seed=seed,
            scale=DEFAULT_SCALE,
            jobs=j,
            wall_s=wall,
            name=f"matrix-{matrix_id}",
        )
    return results, matrix_timing(results, wall, j)


def run_matrix(
    systems: Iterable[str],
    refs: Optional[int] = None,
    seed: int = 1,
    benches: Iterable[str] = BENCHES,
    **overrides: object,
) -> Dict[Tuple[str, str], SimulationResult]:
    """Simulate a systems x benchmarks matrix at experiment fidelity."""
    results, _ = run_matrix_timed(systems, refs=refs, seed=seed, benches=benches, **overrides)
    return results
