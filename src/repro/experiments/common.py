"""Shared machinery for the per-figure experiment drivers.

Each ``figNN`` module exposes ``run(refs, seed) -> ExperimentResult`` that
re-generates one figure of the paper: same benchmarks down the rows, same
system configurations across the columns, same metric.  The benchmarks in
``benchmarks/`` print these tables and record timings.

The reference count is taken from the ``REPRO_BENCH_REFS`` environment
variable when not passed explicitly, so CI can dial the fidelity/runtime
trade-off without touching code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..sim.results import SimulationResult
from ..sim.runner import DEFAULT_REFS, simulate

#: Table 3 order, used for every figure's rows
BENCHES = (
    "barnes",
    "cholesky",
    "fft",
    "fmm",
    "lu",
    "ocean",
    "radix",
    "raytrace",
)

#: scaled equivalents of the paper's 32/64 initial thresholds (see
#: repro.params.THRESHOLD_SCALE)
SCALED_THRESHOLD_32 = 8
SCALED_THRESHOLD_64 = 16


def default_refs() -> int:
    """Trace length for experiments (env ``REPRO_BENCH_REFS`` or 400k)."""
    raw = os.environ.get("REPRO_BENCH_REFS")
    if raw:
        return max(32, int(raw))
    return DEFAULT_REFS


@dataclass
class ExperimentResult:
    """One regenerated figure/table: identification, data, rendered text."""

    experiment: str  #: e.g. "fig09"
    title: str
    table: str  #: the paper-shaped text table
    data: Dict[Tuple[str, str], float] = field(default_factory=dict)
    results: Dict[Tuple[str, str], SimulationResult] = field(default_factory=dict)
    notes: str = ""

    def __str__(self) -> str:
        out = [f"== {self.experiment}: {self.title} ==", self.table]
        if self.notes:
            out.append(self.notes)
        return "\n".join(out)


def run_matrix(
    systems: Iterable[str],
    refs: Optional[int] = None,
    seed: int = 1,
    benches: Iterable[str] = BENCHES,
    **overrides: object,
) -> Dict[Tuple[str, str], SimulationResult]:
    """Simulate a systems x benchmarks matrix at experiment fidelity."""
    n = refs if refs is not None else default_refs()
    out: Dict[Tuple[str, str], SimulationResult] = {}
    for bench in benches:
        for system in systems:
            out[(system, bench)] = simulate(system, bench, refs=n, seed=seed, **overrides)
    return out
