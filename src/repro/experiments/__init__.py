"""Experiment drivers: one module per table/figure of the paper.

Each ``figNN.run(refs=None, seed=1)`` regenerates one evaluation figure
(same rows, columns, and metric as the paper) and returns an
:class:`~repro.experiments.common.ExperimentResult` whose ``table`` is a
paper-shaped text rendering.  ``tables.table1/2/3()`` regenerate the
structural tables.  ``benchmarks/`` wraps these in pytest-benchmark.

>>> from repro.experiments import fig09
>>> print(fig09.run(refs=100_000))  # doctest: +SKIP
"""

from . import ablations, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, tables
from .common import (
    BENCHES,
    ExperimentResult,
    default_jobs,
    default_refs,
    merge_timings,
    run_matrix,
    run_matrix_timed,
)

#: experiment id -> callable returning an ExperimentResult
ALL_EXPERIMENTS = {
    "table1": tables.table1,
    "table2": tables.table2,
    "table3": tables.table3,
    "fig03": fig03.run,
    "fig04": fig04.run,
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    # ablations of the paper's one-line design decisions (see ablations.py)
    "abl_ostate": ablations.ostate,
    "abl_decrement": ablations.decrement,
    "abl_counter_sharing": ablations.counter_sharing,
    "abl_nc_size": ablations.nc_size,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "BENCHES",
    "ExperimentResult",
    "default_refs",
    "default_jobs",
    "run_matrix",
    "run_matrix_timed",
    "merge_timings",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "tables",
    "ablations",
]
