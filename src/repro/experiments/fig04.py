"""Figure 4: miss ratios under dirty-inclusion (`nc`) vs. victim (`vb`) NCs.

Expected shape: `vb` <= `nc` everywhere (the victim cache never duplicates
L1-resident blocks, so its effective capacity is larger); the gap is
moderate for read-capacity applications and dramatic for Radix, where
dirty inclusion caps the cluster's dirty-block capacity at the NC size and
inflates write-backs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.metrics import stacked_miss_bars
from ..analysis.report import format_stacked_bars
from .common import BENCHES, ExperimentResult, run_matrix_timed

SYSTEMS = ("nc", "vb")


def run(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    results, timing = run_matrix_timed(SYSTEMS, refs=refs, seed=seed)
    stacks = {key: stacked_miss_bars(r) for key, r in results.items()}
    data: Dict[Tuple[str, str], float] = {
        key: r.miss_ratio for key, r in results.items()
    }
    table = format_stacked_bars(
        "Cluster miss ratios (%): dirty-inclusion NC vs. victim NC (16 KB, 4-way)",
        list(BENCHES),
        list(SYSTEMS),
        {(b, s): stacks[(s, b)] for s in SYSTEMS for b in BENCHES},
    )
    return ExperimentResult(
        "fig04",
        "Cluster miss ratios for different ways of integrating the NC",
        table,
        data,
        results,
        timing=timing,
    )
