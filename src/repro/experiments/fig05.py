"""Figure 5: block-indexed (`vb`) vs. page-indexed (`vp`) victim caches.

Expected shape: page indexing helps the irregular, low-spatial-locality
applications (FMM, Radix) — their sparse working sets spread across pages
— and hurts the high-spatial-locality ones (LU, Cholesky, Ocean) whose
dense pages collide inside single NC sets.  Because the victim cache keeps
no inclusion, `vp` can never be worse than having no NC at all.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.metrics import stacked_miss_bars
from ..analysis.report import format_stacked_bars
from .common import BENCHES, ExperimentResult, run_matrix_timed

SYSTEMS = ("vb", "vp")


def run(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    results, timing = run_matrix_timed(SYSTEMS, refs=refs, seed=seed)
    stacks = {key: stacked_miss_bars(r) for key, r in results.items()}
    data: Dict[Tuple[str, str], float] = {
        key: r.miss_ratio for key, r in results.items()
    }
    table = format_stacked_bars(
        "Cluster miss ratios (%): victim NC indexed by block vs. page address",
        list(BENCHES),
        list(SYSTEMS),
        {(b, s): stacks[(s, b)] for s in SYSTEMS for b in BENCHES},
    )
    return ExperimentResult(
        "fig05",
        "Cluster miss ratios for different victim-cache indexing schemes",
        table,
        data,
        results,
        timing=timing,
    )
