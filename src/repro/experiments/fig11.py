"""Figure 11: directory-controlled vs. victim-cache relocation counters.

Paper setup: `ncp5` (R-NUMA per-(page, cluster) capacity-miss counters at
the directory) against `vxp5` (the paper's per-NC-set victimisation
counters), page cache at 1/5 of the dataset, adaptive thresholds.
Because victimisation counters increment more often than capacity-miss
counters, `vxp` is also run with a doubled initial threshold (the paper's
32 vs. 64 — scaled here, see ``repro.params.THRESHOLD_SCALE``).

Expected shapes: `vxp` matches `ncp` even for the high-spatial-locality
applications where counter sharing could hurt (Cholesky, Ocean);
it keeps the victim-cache advantage for Barnes/FMM; LU is slightly worse
(page-indexed NC conflicts push its small working set into the PC);
Radix's relocation overhead shrinks markedly at the doubled threshold.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.report import format_grid
from .common import (
    BENCHES,
    ExperimentResult,
    SCALED_THRESHOLD_32,
    SCALED_THRESHOLD_64,
    merge_timings,
    run_matrix_timed,
)

REFERENCE = "dinf"
COLUMNS = ("ncp5", "vxp5-t32", "vxp5-t64")


def run(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    reference, t_ref = run_matrix_timed([REFERENCE], refs=refs, seed=seed)
    ncp, t_ncp = run_matrix_timed(["ncp5"], refs=refs, seed=seed,
                                  initial_threshold=SCALED_THRESHOLD_32)
    vxp32, t_32 = run_matrix_timed(["vxp5"], refs=refs, seed=seed,
                                   initial_threshold=SCALED_THRESHOLD_32)
    vxp64, t_64 = run_matrix_timed(["vxp5"], refs=refs, seed=seed,
                                   initial_threshold=SCALED_THRESHOLD_64)
    timing = merge_timings(t_ref, t_ncp, t_32, t_64)

    results = {}
    data: Dict[Tuple[str, str], float] = {}
    reloc: Dict[Tuple[str, str], float] = {}
    for bench in BENCHES:
        ref = reference[(REFERENCE, bench)]
        for label, run_map, key in (
            ("ncp5", ncp, "ncp5"),
            ("vxp5-t32", vxp32, "vxp5"),
            ("vxp5-t64", vxp64, "vxp5"),
        ):
            r = run_map[(key, bench)]
            results[(label, bench)] = r
            data[(label, bench)] = r.normalized_stall(ref)
            denom = ref.remote_read_stall
            reloc[(label, bench)] = (
                r.relocation_overhead_cycles / denom if denom else 0.0
            )

    table = format_grid(
        "Remote read stall, normalised to an infinite DRAM NC "
        "(thresholds are the paper's 32/64 scaled)",
        list(BENCHES),
        list(COLUMNS),
        lambda b, s: data[(s, b)],
        col_width=10,
    )
    table += "\n\n" + format_grid(
        "...of which page-relocation overhead",
        list(BENCHES),
        list(COLUMNS),
        lambda b, s: reloc[(s, b)],
        col_width=10,
    )
    return ExperimentResult(
        "fig11",
        "Relocation counters at the directory (ncp) vs. in the victim cache (vxp)",
        table,
        data,
        results,
        timing=timing,
    )
