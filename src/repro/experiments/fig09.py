"""Figure 9: remote read stalls, normalised to an infinite DRAM NC.

Paper setup: `base` (nothing), `NCS` (infinite SRAM NC), `NCD` (512 KB
DRAM NC), then the page-cache systems `ncp`/`vbp`/`vpp` at 512 KB (the
equal-DRAM comparison against `NCD`) and at 1/5 of the dataset size.  The
relocation-overhead share of each PC bar is reported alongside.

Expected shapes:

* `base` beats the infinite DRAM NC for FFT (necessary misses dominate;
  the DRAM NC only adds its tag-check overhead) and Cholesky/Ocean come
  close;
* regular, high-spatial-locality applications (Cholesky, FFT, LU, Ocean):
  512 KB-PC systems beat `NCD`;
* irregular, sparse-working-set applications (FMM, Radix, Raytrace):
  `NCD` beats the PC systems (page fragmentation + relocation churn);
  Barnes sits with the PC systems because its dataset is small;
* the victim-NC variants beat `ncp` (R-NUMA), most visibly at PC = 1/5.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.report import format_grid
from .common import BENCHES, ExperimentResult, run_matrix_timed

REFERENCE = "dinf"
SYSTEMS = ("base", "ncs", "ncd", "ncp", "vbp", "vpp", "ncp5", "vbp5", "vpp5")


def run(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    results, timing = run_matrix_timed((REFERENCE,) + SYSTEMS, refs=refs, seed=seed)
    data: Dict[Tuple[str, str], float] = {}
    reloc_share: Dict[Tuple[str, str], float] = {}
    for bench in BENCHES:
        ref = results[(REFERENCE, bench)]
        for system in SYSTEMS:
            r = results[(system, bench)]
            data[(system, bench)] = r.normalized_stall(ref)
            denom = ref.remote_read_stall
            reloc_share[(system, bench)] = (
                r.relocation_overhead_cycles / denom if denom else 0.0
            )

    table = format_grid(
        "Remote read stall, normalised to an infinite DRAM NC",
        list(BENCHES),
        list(SYSTEMS),
        lambda b, s: data[(s, b)],
        col_width=8,
    )
    table += "\n\n" + format_grid(
        "...of which page-relocation overhead (same normalisation)",
        list(BENCHES),
        list(SYSTEMS),
        lambda b, s: reloc_share[(s, b)],
        col_width=8,
    )
    return ExperimentResult(
        "fig09",
        "Remote read stalls",
        table,
        data,
        results,
        timing=timing,
    )
