"""Ablations of the paper's explicit design decisions.

The paper makes several design calls it justifies in one sentence each;
these drivers re-measure them:

* ``ostate`` — Sec. 3.2: "The problem could be solved by adding an
  explicit dirty-shared (O) state... our evaluations have indicated very
  little benefit."  MESIR vs. MOESIR on the victim-NC system.
* ``decrement`` — Sec. 3.4: "The policy can be improved by decrementing
  the counters when invalidations are received... our base system does
  not use this improvement."  `ncp5` with and without the refinement.
* ``counter_sharing`` — Sec. 3.4: "The robustness of counter sharing is
  something well worth investigating, but beyond our scope here."  `vxp5`
  with 1 (the paper), 2, 4, and 8 NC sets per relocation counter.
* ``nc_size`` — Fig. 2's qualitative size axis, measured: the victim NC
  swept from 1 KB to 64 KB.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.report import format_grid
from ..params import BusProtocol
from ..sim.runner import simulate
from .common import BENCHES, ExperimentResult, default_refs


def ostate(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    """MESIR vs. MOESIR: does the dirty-shared O state matter?"""
    n = refs if refs is not None else default_refs()
    data: Dict[Tuple[str, str], float] = {}
    results = {}
    for bench in BENCHES:
        for label, protocol in (
            ("mesir", BusProtocol.MESIR),
            ("moesir", BusProtocol.MOESIR),
        ):
            r = simulate("vb", bench, refs=n, seed=seed, protocol=protocol)
            results[(label, bench)] = r
            data[(label, bench)] = r.stall_per_reference
            data[(label + ":wb", bench)] = float(
                r.counters.writebacks_absorbed + r.counters.writebacks_remote
            )
    cols = ("mesir", "moesir", "mesir:wb", "moesir:wb")
    table = format_grid(
        "Victim-NC system `vb`: remote read stall per reference (cycles) and "
        "write-backs, MESIR vs. MOESIR",
        list(BENCHES),
        list(cols),
        lambda b, c: data[(c, b)],
        col_width=11,
    )
    return ExperimentResult(
        "abl_ostate",
        "Dirty-shared O state ablation (Sec. 3.2)",
        table,
        data,
        results,
        notes="The paper found 'very little benefit'; the stall columns "
        "should be near-identical, with MOESIR trimming write-backs.",
    )


def decrement(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    """Counter decrement-on-invalidation refinement (off in the paper)."""
    n = refs if refs is not None else default_refs()
    data: Dict[Tuple[str, str], float] = {}
    results = {}
    for bench in BENCHES:
        for label, flag in (("base", False), ("decrement", True)):
            r = simulate(
                "ncp5", bench, refs=n, seed=seed,
                decrement_on_invalidation=flag,
            )
            results[(label, bench)] = r
            data[(label, bench)] = r.miss_ratio + r.relocation_overhead_ratio
            data[(label + ":rel", bench)] = float(r.counters.pc_relocations)
    cols = ("base", "decrement", "base:rel", "decrement:rel")
    table = format_grid(
        "ncp5: miss%+overhead and relocation counts, with/without the "
        "Sec. 3.4 counter decrement",
        list(BENCHES),
        list(cols),
        lambda b, c: data[(c, b)],
        col_width=14,
    )
    return ExperimentResult(
        "abl_decrement",
        "Relocation-counter decrement-on-invalidation ablation (Sec. 3.4)",
        table,
        data,
        results,
        notes="The paper judged the improvement 'not significant'.",
    )


def counter_sharing(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    """How robust are vxp's per-set counters to being shared?"""
    n = refs if refs is not None else default_refs()
    sharings = (1, 2, 4, 8)
    data: Dict[Tuple[str, str], float] = {}
    results = {}
    for bench in BENCHES:
        for sh in sharings:
            r = simulate("vxp5", bench, refs=n, seed=seed, nc_counter_sharing=sh)
            label = f"share{sh}"
            results[(label, bench)] = r
            data[(label, bench)] = r.stall_per_reference
            data[(f"{label}:rel", bench)] = float(r.counters.pc_relocations)
    cols = [f"share{sh}" for sh in sharings] + [f"share{sh}:rel" for sh in sharings]
    table = format_grid(
        "vxp5: remote read stall per reference (cycles) and relocations vs. "
        "NC sets per counter",
        list(BENCHES),
        cols,
        lambda b, c: data[(c, b)],
        col_width=11,
    )
    return ExperimentResult(
        "abl_counter_sharing",
        "NC-set relocation-counter sharing robustness (Sec. 3.4)",
        table,
        data,
        results,
        notes="share1 is the paper's design (64 counters per node); higher "
        "sharing saves counter memory at the cost of relocation precision.",
    )


def nc_size(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    """Fig. 2's size axis: victim-NC capacity vs. remote stall."""
    n = refs if refs is not None else default_refs()
    sizes = (1024, 4096, 16 * 1024, 65536)
    data: Dict[Tuple[str, str], float] = {}
    results = {}
    for bench in BENCHES:
        ref = simulate("dinf", bench, refs=n, seed=seed)
        for size in sizes:
            label = f"vb{size // 1024}k"
            r = simulate("vb", bench, refs=n, seed=seed, nc_size=size)
            results[(label, bench)] = r
            data[(label, bench)] = r.normalized_stall(ref)
    cols = [f"vb{s // 1024}k" for s in sizes]
    table = format_grid(
        "Victim-NC size sweep: remote read stall normalised to an infinite "
        "DRAM NC",
        list(BENCHES),
        cols,
        lambda b, c: data[(c, b)],
        col_width=9,
    )
    return ExperimentResult(
        "abl_nc_size",
        "Victim-NC capacity sweep (the Fig. 2 trade-off, measured)",
        table,
        data,
        results,
    )
