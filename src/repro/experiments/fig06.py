"""Figure 6: adaptive vs. fixed relocation-threshold policies for `ncp5`.

Paper setup: `ncp` with a page cache of 1/5 of the dataset; the fixed
policy keeps the initial threshold (paper 32 — scaled here, see
``repro.params.THRESHOLD_SCALE``) for the whole run, the adaptive policy
raises it by the increment whenever PC thrashing is detected.  Expected
shape: the adaptive policy suppresses thrashing for Barnes and Radix
(lower relocation overhead at equal-or-better miss ratios); regular
applications are unaffected.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.metrics import stacked_miss_bars
from ..analysis.report import format_stacked_bars
from ..params import ThresholdPolicy
from .common import BENCHES, ExperimentResult, merge_timings, run_matrix_timed

POLICIES = ("adaptive", "fixed")


def run(refs: Optional[int] = None, seed: int = 1) -> ExperimentResult:
    adaptive, t_adaptive = run_matrix_timed(
        ["ncp5"], refs=refs, seed=seed, threshold_policy=ThresholdPolicy.ADAPTIVE
    )
    fixed, t_fixed = run_matrix_timed(
        ["ncp5"], refs=refs, seed=seed, threshold_policy=ThresholdPolicy.FIXED
    )
    timing = merge_timings(t_adaptive, t_fixed)
    results = {("adaptive", b): adaptive[("ncp5", b)] for b in BENCHES}
    results.update({("fixed", b): fixed[("ncp5", b)] for b in BENCHES})
    stacks = {key: stacked_miss_bars(r) for key, r in results.items()}
    data: Dict[Tuple[str, str], float] = {
        key: r.miss_ratio + r.relocation_overhead_ratio
        for key, r in results.items()
    }
    table = format_stacked_bars(
        "Cluster miss ratios (%) + relocation overhead: adaptive vs. fixed "
        "threshold, ncp5 (PC = 1/5 of dataset)",
        list(BENCHES),
        list(POLICIES),
        {(b, p): stacks[(p, b)] for p in POLICIES for b in BENCHES},
    )
    return ExperimentResult(
        "fig06",
        "Adaptive vs. fixed relocation threshold policies for ncp5",
        table,
        data,
        results,
        timing=timing,
    )
