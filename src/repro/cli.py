"""Command-line interface: ``python -m repro <command>``.

Commands
--------
simulate
    Run one (system, benchmark) pair and print the metric summary.
sweep
    Run a systems x benchmarks matrix and print a miss-ratio/stall grid.
experiment
    Regenerate one paper table/figure (or ``all``) and print it.
report
    Re-run figure experiments and compare them against the pinned
    baseline run, printing per-figure paper-fidelity tables with percent
    deviation (``--check`` fails on structural mismatches).
trace
    Generate, save, load, and characterise benchmark traces; ``trace
    export SYSTEM BENCHMARK`` writes a Chrome/Perfetto ``trace.json``.
perf
    Measure engine throughput (refs/sec) and print a report; ``--json``
    also writes the machine-readable form the bench-regression gate reads.
explore
    Calibrate the analytic surrogate on a real sweep, rank a large
    NC/PC/threshold/latency design space in seconds, simulate only the
    predicted Pareto frontier, and report predicted-vs-simulated error
    per Eq. 1 component; ``--check`` is the CI accuracy gate against
    ``benchmarks/baseline_surrogate.json``.
top
    Live monitor for a running (or finished) checkpointed sweep.
list
    Show the available systems, benchmarks, and experiments.

Examples
--------
::

    python -m repro simulate vbp5 radix --refs 200000 --profile
    python -m repro sweep base,vb,ncd barnes,radix --metric stall --jobs 4
    python -m repro sweep base,vb barnes,radix --profile --metric breakdown
    python -m repro sweep base,vb barnes,fft --jobs 4 --resume runs/night1
    python -m repro sweep base,vb fft --max-retries 3 --cell-timeout 600
    python -m repro sweep base,vb fft --inject-faults 'seed=7;kill=0.5@1'
    python -m repro experiment fig09 --refs 400000 --jobs 4
    python -m repro report --figures fig03,fig09 --refs 40000
    python -m repro report --check --refs 2000 --figures fig04
    python -m repro perf --refs 40000 --out throughput.txt --json perf.json
    python -m repro explore --benchmarks barnes,radix --jobs 4 --json out.json
    python -m repro explore --check --refs 30000 --jobs 4 --json gate.json
    python -m repro trace radix --refs 100000 --out radix.npz --stats
    python -m repro trace export vpp5 radix --refs 50000 --out trace.json
    python -m repro top runs/night1 --follow --jobs 4
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .analysis.charts import bar_chart
from .analysis.report import format_grid
from .errors import ReproError
from .experiments import ALL_EXPERIMENTS
from .params import BusProtocol, ThresholdPolicy
from .sim.parallel import default_jobs, throughput_report, timed_sweep
from .sim.runner import (
    DEFAULT_REFS,
    DEFAULT_SCALE,
    get_trace,
    resolve_sweep_configs,
    simulate,
    sweep,
)
from .system.builder import SYSTEM_NAMES
from .trace.io import save_trace
from .trace.stats import characterize
from .trace.synthetic import BENCHMARK_NAMES


def _add_sim_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--refs", type=int, default=DEFAULT_REFS,
                   help="shared references per trace (default %(default)s)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                   help="dataset scale vs. Table 3 (default %(default)s)")
    p.add_argument("--cache-assoc", type=int, default=None)
    p.add_argument("--nc-size", type=int, default=None)
    p.add_argument("--threshold", type=int, default=None,
                   help="initial relocation threshold")
    p.add_argument("--fixed-threshold", action="store_true",
                   help="use the fixed (non-adaptive) threshold policy")
    p.add_argument("--moesir", action="store_true",
                   help="enable the dirty-shared O state (Sec. 3.2 ablation)")
    p.add_argument("--decrement-on-invalidation", action="store_true",
                   help="enable the Sec. 3.4 counter-decrement refinement")
    p.add_argument("--engine", choices=("interp", "batch"), default=None,
                   help="execution backend (default: REPRO_ENGINE or interp); "
                        "'batch' is the vectorised engine, bit-identical to "
                        "the interpreter")


def _sim_kwargs(args: argparse.Namespace) -> dict:
    kw: dict = {}
    if args.cache_assoc is not None:
        kw["cache_assoc"] = args.cache_assoc
    if args.nc_size is not None:
        kw["nc_size"] = args.nc_size
    if args.threshold is not None:
        kw["initial_threshold"] = args.threshold
    if args.fixed_threshold:
        kw["threshold_policy"] = ThresholdPolicy.FIXED
    if args.moesir:
        kw["protocol"] = BusProtocol.MOESIR
    if args.decrement_on_invalidation:
        kw["decrement_on_invalidation"] = True
    return kw


def _cmd_simulate(args: argparse.Namespace) -> int:
    result = simulate(
        args.system, args.benchmark, refs=args.refs, seed=args.seed,
        scale=args.scale, profile=args.profile, engine=args.engine,
        **_sim_kwargs(args),
    )
    print(f"{result.system} / {result.benchmark}  "
          f"({result.refs} refs, {result.elapsed_s:.2f}s)")
    for key, value in result.summary().items():
        print(f"  {key:28s} {value:14.2f}")
    if args.profile:
        from .analysis.report import format_stall_breakdown
        from .obs.profile import stall_breakdown

        parts = stall_breakdown(
            result.metrics or {}, result.system, result.benchmark
        )
        print()
        print(format_stall_breakdown(
            "Eq. 1 stall attribution (cycles)",
            [result.system],
            {result.system: {k: float(v) for k, v in parts.items()}},
        ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from .faults import FAULTS_ENV, FaultPlan
    from .sim.parallel import RecoveryLog, resolve_policy

    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    benches = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    # validate the retry/timeout knobs before any cell runs
    resolve_policy(max_retries=args.max_retries, cell_timeout=args.cell_timeout)
    if args.profile or args.metric == "breakdown":
        # export, don't just set a local: forked workers inherit the switch
        from .obs.profile import PROFILE_ENV

        os.environ[PROFILE_ENV] = "1"
    if args.inject_faults is not None:
        # parse eagerly (bad grammar fails now, not in a worker), then export
        # the canonical spec so forked workers inherit the same schedule
        plan = FaultPlan.parse(args.inject_faults)
        os.environ[FAULTS_ENV] = plan.spec()
    recovery = RecoveryLog()
    results = sweep(
        systems, benches, refs=args.refs, seed=args.seed, scale=args.scale,
        jobs=args.jobs, run_dir=args.resume, max_retries=args.max_retries,
        cell_timeout=args.cell_timeout, recovery=recovery, engine=args.engine,
        **_sim_kwargs(args),
    )

    if args.metric == "breakdown":
        _print_stall_breakdowns(results, systems, benches, chart=args.chart)
    else:
        if args.metric == "miss":
            cell = lambda b, s: results[(s, b)].miss_ratio  # noqa: E731
            title = "Cluster miss ratio (%)"
        elif args.metric == "stall":
            cell = lambda b, s: results[(s, b)].stall_per_reference  # noqa: E731
            title = "Remote read stall (cycles/ref)"
        else:
            cell = lambda b, s: float(results[(s, b)].traffic_blocks)  # noqa: E731
            title = "Remote traffic (blocks)"
        if args.chart:
            values = {(s, b): cell(b, s) for s in systems for b in benches}
            print(bar_chart(title, benches, systems, values))
        else:
            print(format_grid(title, benches, systems, cell))
    if len(recovery):
        summary = ", ".join(
            f"{kind}={n}" for kind, n in sorted(recovery.counts.items())
        )
        print(f"recovery: {summary}", file=sys.stderr)
    return 0


def _print_stall_breakdowns(results, systems, benches, chart: bool) -> None:
    """Render the profiled Eq. 1 stall attribution of a sweep.

    Prefers the profiler's attribution out of each cell's metrics snapshot
    (bit-identical across serial/parallel runs); cells without profile
    data fall back to the equivalent closed-form
    ``result.stall_components`` — the two agree exactly by the
    conservation invariant.
    """
    from .analysis.charts import stall_component_chart
    from .analysis.report import format_stall_breakdown
    from .obs.profile import profiled_cells, stall_breakdown

    stacks = {}
    for s in systems:
        for b in benches:
            result = results[(s, b)]
            snap = result.metrics or {}
            if f"{s}/{b}" in profiled_cells(snap):
                parts = stall_breakdown(snap, s, b)
            else:
                parts = result.stall_components
            stacks[(s, b)] = {k: float(v) for k, v in parts.items()}
    if chart:
        print(stall_component_chart(
            "Remote read stall attribution (Eq. 1 cycles)",
            benches, systems, stacks,
        ))
        return
    for i, b in enumerate(benches):
        if i:
            print()
        print(format_stall_breakdown(
            f"Eq. 1 stall attribution — {b} (cycles)",
            systems,
            {s: stacks[(s, b)] for s in systems},
        ))


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    import os

    if args.refs is not None:
        os.environ["REPRO_BENCH_REFS"] = str(args.refs)
    if args.jobs is not None:
        # experiment drivers read REPRO_JOBS through common.default_jobs()
        os.environ["REPRO_JOBS"] = str(args.jobs)
    for name in names:
        print(ALL_EXPERIMENTS[name]())
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import os
    import time

    from .analysis.fidelity import (
        REPORT_FIGURES,
        compare_figure,
        render_report,
        report_summary_dict,
    )
    from .experiments.common import default_refs
    from .obs.manifest import build_manifest, manifest_dir_from_env, write_manifest

    if args.figures == "all":
        figures = list(REPORT_FIGURES)
    else:
        figures = [f.strip() for f in args.figures.split(",") if f.strip()]
    unknown = [f for f in figures if f not in REPORT_FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(REPORT_FIGURES)}", file=sys.stderr)
        return 2

    if args.jobs is not None:
        # figure drivers read REPRO_JOBS through common.default_jobs()
        os.environ["REPRO_JOBS"] = str(args.jobs)
    refs = args.refs if args.refs is not None else default_refs()

    comparisons = []
    merged_results = {}
    start = time.perf_counter()
    for fig in figures:
        exp = ALL_EXPERIMENTS[fig](refs=refs, seed=args.seed)
        comparisons.append(compare_figure(fig, exp.data, tolerance_pct=args.tolerance))
        for (system, bench), r in exp.results.items():
            merged_results[(f"{fig}/{system}", bench)] = r
    wall = time.perf_counter() - start

    text = render_report(comparisons, refs=refs, seed=args.seed)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"report written to {args.out}")

    # the manifest backing the report: next to --out, else --manifest-dir,
    # else $REPRO_MANIFEST_DIR
    manifest_dest = args.manifest_dir or manifest_dir_from_env()
    if args.out:
        manifest_dest = os.path.dirname(os.path.abspath(args.out))
    if manifest_dest:
        manifest = build_manifest(
            merged_results,
            kind="report",
            command="repro report --figures " + ",".join(figures),
            refs=refs,
            seed=args.seed,
            jobs=args.jobs,
            wall_s=wall,
            extra={
                "fidelity": report_summary_dict(comparisons),
                "tolerance_pct": args.tolerance,
            },
        )
        path = write_manifest(manifest, manifest_dest, name="report")
        print(f"manifest written to {path}")

    if args.check:
        problems = [p for comp in comparisons for p in comp.structural_problems]
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"check ok: {sum(len(c.cells) for c in comparisons)} cells "
              f"across {len(comparisons)} figures match the baseline's shape")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.benchmark == "export":
        return _cmd_trace_export(args)
    if args.benchmark == "serve-export":
        return _cmd_trace_serve_export(args)
    if args.export_args:
        print("error: unexpected arguments "
              f"{' '.join(args.export_args)!r} (only 'trace export' and "
              "'trace serve-export' take positionals)", file=sys.stderr)
        return 2
    trace = get_trace(args.benchmark, refs=args.refs, seed=args.seed,
                      scale=args.scale)
    print(f"{trace!r}")
    if args.stats:
        c = characterize(trace)
        print(f"  distinct pages        {c.distinct_pages}")
        print(f"  distinct blocks       {c.distinct_blocks}")
        print(f"  footprint             {c.footprint_bytes / (1 << 20):.2f} MB")
        print(f"  write fraction        {c.write_fraction:.3f}")
        print(f"  block utilisation     {c.block_utilization:.3f}")
        print(f"  page utilisation      {c.page_utilization:.3f}")
        print(f"  remote fraction       {c.remote_fraction:.3f}")
        print(f"  refs / distinct block {c.block_reuse:.2f}")
    if args.out:
        save_trace(trace, args.out)
        print(f"saved to {args.out}")
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from .obs.timeline import trace_simulation, validate_chrome_trace, write_chrome_trace

    if len(args.export_args) != 2:
        print("usage: repro trace export SYSTEM BENCHMARK "
              "[--refs N] [--seed S] [--scale F] [--out trace.json]",
              file=sys.stderr)
        return 2
    system, benchmark = args.export_args
    result, doc = trace_simulation(
        system, benchmark, refs=args.refs, seed=args.seed, scale=args.scale,
    )
    problems = validate_chrome_trace(doc)
    if problems:  # should be unreachable; belt-and-braces before writing
        for p in problems:
            print(f"invalid trace: {p}", file=sys.stderr)
        return 1
    out = args.out or "trace.json"
    write_chrome_trace(doc, out)
    n_events = len(doc["traceEvents"])
    print(f"{system} / {benchmark}: {n_events} trace events "
          f"({result.refs} refs) written to {out}")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_trace_serve_export(args: argparse.Namespace) -> int:
    """``repro trace serve-export RUN_DIR``: wall-clock span tree export.

    Reads the ``spans.jsonl`` a service job recorded (HTTP receive →
    queue-wait → per-cell simulate/cache-hit → store-put → respond) and
    writes it as Chrome/Perfetto trace-event JSON in the **wall-clock**
    clock domain — unlike ``trace export``, whose timeline is simulated
    bus cycles.
    """
    from .obs.spans import load_spans, span_tree_problems, spans_to_chrome
    from .obs.timeline import validate_chrome_trace, write_chrome_trace

    if len(args.export_args) != 1:
        print("usage: repro trace serve-export RUN_DIR [--out spans.json]",
              file=sys.stderr)
        return 2
    run_dir = args.export_args[0]
    spans = load_spans(run_dir)
    if not spans:
        print(f"error: no spans found under {run_dir} (expected "
              "spans.jsonl from a service-run job)", file=sys.stderr)
        return 1
    for problem in span_tree_problems(spans):
        print(f"warning: {problem}", file=sys.stderr)
    doc = spans_to_chrome(spans)
    problems = validate_chrome_trace(doc)
    if problems:  # should be unreachable; belt-and-braces before writing
        for p in problems:
            print(f"invalid trace: {p}", file=sys.stderr)
        return 1
    out = args.out or "spans.json"
    write_chrome_trace(doc, out)
    traces = sorted({s.get("trace_id") for s in spans if s.get("trace_id")})
    print(f"{len(spans)} span(s) across {len(traces)} trace(s) "
          f"written to {out}")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.monitor import watch

    progress = watch(
        args.run_dir, follow=args.follow, interval=args.interval,
        jobs=args.jobs, max_updates=args.max_updates,
    )
    if not progress.header_present:
        print(f"warning: no run.json in {args.run_dir} "
              "(sweep not started, or not a --resume run directory)",
              file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.app import run_service

    run_service(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        job_workers=args.job_workers,
        max_queued_jobs=args.max_queued_jobs,
        max_inflight_cells=args.max_inflight_cells,
        job_ttl_s=args.job_ttl,
        drain_timeout=args.drain_timeout,
    )
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    benches = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    configs = resolve_sweep_configs(systems)
    if args.engine == "both":
        from .sim.parallel import engine_comparison_json, engine_comparison_report

        interp, wall_i = timed_sweep(
            configs, benches, refs=args.refs, seed=args.seed, jobs=args.jobs,
            engine="interp", manifest_name="perf-interp",
            command="perf --engine both",
        )
        batch, wall_b = timed_sweep(
            configs, benches, refs=args.refs, seed=args.seed, jobs=args.jobs,
            engine="batch", manifest_name="perf-batch",
            command="perf --engine both",
        )
        report = engine_comparison_report(interp, batch)
        doc = engine_comparison_json(
            interp, batch, wall_interp=wall_i, wall_batch=wall_b, jobs=args.jobs
        )
    else:
        results, wall = timed_sweep(
            configs, benches, refs=args.refs, seed=args.seed, jobs=args.jobs,
            engine=args.engine,
        )
        report = throughput_report(results, wall_s=wall, jobs=args.jobs)
        from .sim.parallel import perf_json

        doc = perf_json(results, wall_s=wall, jobs=args.jobs)
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"report written to {args.out}")
    if args.json:
        import json as _json

        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"machine-readable report written to {args.json}")
    return 0


def _parse_sizes(text: str) -> tuple:
    """'4k,64k,1m' -> (4096, 65536, 1048576); bare numbers are bytes."""
    out = []
    for part in text.split(","):
        part = part.strip().lower()
        if not part:
            continue
        mult = 1
        if part.endswith("k"):
            mult, part = 1024, part[:-1]
        elif part.endswith("m"):
            mult, part = 1024 * 1024, part[:-1]
        try:
            out.append(int(part) * mult)
        except ValueError:
            raise ReproError(f"bad size {part!r} (use e.g. 4k, 64k, 1m)") from None
    return tuple(out)


def _parse_ints(text: str) -> tuple:
    try:
        return tuple(int(p) for p in text.split(",") if p.strip())
    except ValueError:
        raise ReproError(f"bad integer list {text!r}") from None


def _cmd_explore(args: argparse.Namespace) -> int:
    import json as _json

    from .surrogate import DesignSpace, SurrogateModel, check_surrogate, explore
    from .surrogate.explore import explore_json, explore_report, validation_report

    space = DesignSpace(
        families=tuple(f.strip() for f in args.families.split(",") if f.strip()),
        nc_sizes=_parse_sizes(args.nc_sizes),
        dram_nc_sizes=_parse_sizes(args.dram_nc_sizes),
        pc_denoms=_parse_ints(args.pc_denoms),
        thresholds=_parse_ints(args.thresholds),
        remote_latencies=_parse_ints(args.remote_latencies),
    )
    benches = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    store = None
    if args.store:
        from .service.store import ResultStore

        store = ResultStore(root=args.store)

    if args.check:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = _json.load(fh)
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"cannot read surrogate baseline {args.baseline}: {exc}"
            ) from None
        doc, cells, failures = check_surrogate(
            baseline, space, benches, refs=args.refs, seed=args.seed,
            scale=args.scale, jobs=args.jobs, engine=args.engine,
            sample=args.sample, result_store=store,
        )
        report = validation_report(cells)
        report += (
            f"\n\nranked {doc['n_candidates_ranked']:,} candidates in "
            f"{doc['rank_seconds']:.3f}s ({doc['candidates_per_sec']:,.0f}/s)"
        )
        print(report)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(report + "\n")
            print(f"report written to {args.out}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"machine-readable report written to {args.json}")
        if failures:
            print("surrogate check: FAILED")
            for f in failures:
                print(f"  {f}")
            return 1
        print("surrogate check: within baseline "
              f"({doc['validation']['cells']} held-out cells)")
        return 0

    model = SurrogateModel.load(args.model) if args.model else None
    outcome = explore(
        space, benches, refs=args.refs, seed=args.seed, scale=args.scale,
        jobs=args.jobs, engine=args.engine, sample=args.sample,
        frontier_max=args.frontier_max,
        simulate_frontier=not args.no_simulate,
        result_store=store, model=model,
    )
    report = explore_report(outcome)
    print(report)
    if args.save_model:
        outcome.model.save(args.save_model)
        print(f"surrogate model written to {args.save_model}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"report written to {args.out}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(explore_json(outcome), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"machine-readable report written to {args.json}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import os
    import time

    from .check import (
        DEFAULT_VARIANTS,
        diff_cell,
        diff_parallel_sweep,
        explore_variant,
        replay_artifact,
        run_fuzz,
    )
    from .errors import ModelCheckViolation, OracleDivergenceError
    from .obs import EventTracer
    from .obs.manifest import build_manifest, manifest_dir_from_env, write_manifest

    if args.replay:
        verdict = replay_artifact(args.replay)
        status = "REPRODUCED" if verdict["reproduced"] else "passes now"
        print(f"{args.replay}: {status} "
              f"({verdict['events']} events, expected {verdict['expected_error']}, "
              f"got {verdict['error']})")
        return 1 if verdict["reproduced"] else 0

    # no engine selected => run all three (explore, diff, a short fuzz)
    run_all = not (args.explore or args.diff or args.fuzz)
    if args.events and os.path.dirname(args.events):
        os.makedirs(os.path.dirname(args.events), exist_ok=True)
    tracer = EventTracer(jsonl_path=args.events) if args.events else None
    started = time.time()
    summary: dict = {}
    failed = False

    try:
        if args.explore or run_all:
            variants = (
                [v.strip() for v in args.variants.split(",") if v.strip()]
                if args.variants else list(DEFAULT_VARIANTS)
            )
            for system in variants:
                try:
                    rep = explore_variant(
                        system, n_blocks=args.blocks, max_states=args.max_states
                    )
                except ModelCheckViolation as exc:
                    failed = True
                    if tracer is not None:
                        tracer.emit("explore_violation", 0, detail=str(exc))
                    print(f"explore {system:6s} VIOLATION\n{exc}")
                    continue
                if tracer is not None:
                    tracer.emit(
                        "explore_variant", rep.n_states,
                        detail=f"{system}={rep.n_states}={rep.n_transitions}",
                    )
                print(f"explore {system:6s} OK  {rep.n_states:7d} states  "
                      f"{rep.n_transitions:8d} transitions  depth {rep.max_depth}")
            summary["explored_variants"] = len(variants)

        if args.diff or run_all:
            systems = [s.strip() for s in args.systems.split(",") if s.strip()]
            benches = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
            cells = 0
            for system in systems:
                for bench in benches:
                    try:
                        diff_cell(system, bench, refs=args.refs,
                                  seed=args.seed, scale=args.scale)
                        cells += 1
                        if tracer is not None:
                            tracer.emit("diff_cell", cells,
                                        detail=f"{system}/{bench}")
                    except OracleDivergenceError as exc:
                        failed = True
                        if tracer is not None:
                            tracer.emit("diff_divergence", cells, detail=str(exc))
                        print(f"diff {system}/{bench} DIVERGENCE: {exc}")
            print(f"diff    {cells} cells agree (simulator == oracle, "
                  f"{args.refs} refs each)")
            n = diff_parallel_sweep(systems, benches, refs=args.refs,
                                    seed=args.seed, scale=args.scale,
                                    jobs=args.jobs)
            if tracer is not None:
                tracer.emit("diff_parallel", n, detail="identical")
            print(f"diff    serial == --jobs {args.jobs} on {n} cells")
            summary["diffed_cells"] = cells

        if args.fuzz or run_all:
            budget = args.budget if not run_all else min(args.budget, 10.0)
            report = run_fuzz(
                seed=args.seed, budget_s=budget, max_cases=args.max_cases,
                out_dir=args.out_dir, tracer=tracer,
            )
            print(f"fuzz    {report.cases_run} cases in {report.elapsed:.1f}s, "
                  f"{len(report.failures)} failures")
            for f in report.failures:
                failed = True
                print(f"  {f.error}: shrunk {f.original_length} -> "
                      f"{len(f.case.events)} events -> {f.artifact_path}")
            summary["fuzz_cases"] = report.cases_run
            summary["fuzz_failures"] = len(report.failures)
    finally:
        if tracer is not None:
            tracer.close()

    manifest_dest = args.manifest_dir or manifest_dir_from_env()
    if manifest_dest:
        summary["verdict"] = "fail" if failed else "pass"
        manifest = build_manifest(
            {}, kind="check", command="check",
            seed=args.seed, wall_s=time.time() - started, extra=summary,
        )
        path = write_manifest(manifest, manifest_dest, name="check")
        print(f"manifest written to {path}")

    if failed:
        print("check: FAILED")
        return 1
    print("check: all engines passed")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("systems:     " + " ".join(SYSTEM_NAMES)
          + "   (+ digit suffix for PC fraction, e.g. ncp5)")
    print("benchmarks:  " + " ".join(BENCHMARK_NAMES))
    print("experiments: " + " ".join(ALL_EXPERIMENTS))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SRAM network caches in clustered DSMs (HPCA 1998) "
                    "reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run one system on one benchmark")
    p.add_argument("system")
    p.add_argument("benchmark")
    p.add_argument("--profile", action="store_true",
                   help="attribute the remote read stall to its Eq. 1 "
                        "components and print the breakdown")
    _add_sim_options(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("sweep", help="run a systems x benchmarks matrix")
    p.add_argument("systems", help="comma-separated system names")
    p.add_argument("benchmarks", help="comma-separated benchmark names")
    p.add_argument("--metric", choices=("miss", "stall", "traffic", "breakdown"),
                   default="miss",
                   help="'breakdown' prints the profiled Eq. 1 stall "
                        "attribution per benchmark (implies --profile)")
    p.add_argument("--chart", action="store_true",
                   help="draw horizontal bars instead of a number grid")
    p.add_argument("--profile", action="store_true",
                   help="run the stall profiler in every cell (workers "
                        "inherit it); profile data lands in each cell's "
                        "metrics snapshot")
    p.add_argument("--jobs", type=int, default=default_jobs(),
                   help="worker processes for the matrix "
                        "(default: REPRO_JOBS or CPU count)")
    p.add_argument("--resume", metavar="DIR", default=None,
                   help="journal completed cells in DIR and skip any already "
                        "recorded there; an interrupted sweep re-run with the "
                        "same DIR resumes bit-identically")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="attempts per cell beyond the first before the sweep "
                        "fails (default: REPRO_MAX_RETRIES or 2)")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-cell wall-clock budget; a stuck cell's worker is "
                        "killed and the cell retried (default: "
                        "REPRO_CELL_TIMEOUT or unlimited)")
    p.add_argument("--inject-faults", metavar="SPEC", default=None,
                   help="deterministic fault injection for robustness "
                        "testing, e.g. 'seed=7;kill=0.5@1;slow=0.2:1.5' "
                        "(see docs/ROBUSTNESS.md for the grammar)")
    _add_sim_options(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", help="fig03..fig11, table1..table3, or 'all'")
    p.add_argument("--refs", type=int, default=None)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for the figure's sweeps "
                        "(default: REPRO_JOBS or serial)")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "report",
        help="compare fresh figure runs against the pinned baseline",
    )
    p.add_argument("--figures", default="all",
                   help="comma-separated fig03..fig11 (default: all)")
    p.add_argument("--refs", type=int, default=None,
                   help="references per trace (default: REPRO_BENCH_REFS "
                        "or 400000; the pinned baseline is a 400000-ref run)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for the figure sweeps "
                        "(default: REPRO_JOBS or serial)")
    p.add_argument("--tolerance", type=float, default=5.0,
                   help="flag cells deviating more than this %% from the "
                        "baseline (default %(default)s)")
    p.add_argument("--out", default=None,
                   help="write the report here (manifest lands next to it)")
    p.add_argument("--manifest-dir", default=None,
                   help="write the run manifest here (default: next to "
                        "--out, else $REPRO_MANIFEST_DIR)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero on structural problems (missing "
                        "cells, non-finite values); deviations never fail")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "perf", help="measure engine throughput and print a report"
    )
    p.add_argument("--systems", default="base,vb,vpp5",
                   help="comma-separated system names (default %(default)s)")
    p.add_argument("--benchmarks", default="barnes",
                   help="comma-separated benchmark names (default %(default)s)")
    p.add_argument("--refs", type=int, default=40_000,
                   help="references per trace (default %(default)s)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default serial — single-core "
                        "refs/sec is the regression-tracked number)")
    p.add_argument("--engine", choices=("interp", "batch", "both"),
                   default=None,
                   help="execution backend to measure (default: REPRO_ENGINE "
                        "or interp); 'both' runs each engine and prints a "
                        "side-by-side speedup column")
    p.add_argument("--out", default=None,
                   help="also write the report to this file")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write a machine-readable report here (the "
                        "shape scripts/check_bench_regression.py consumes)")
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser(
        "explore",
        help="rank an NC/PC design space with the analytic surrogate and "
             "simulate only the predicted Pareto frontier",
    )
    p.add_argument("--benchmarks", default="barnes,ocean,radix,raytrace",
                   help="benchmarks to calibrate on and optimise for "
                        "(default %(default)s)")
    p.add_argument("--refs", type=int, default=40_000,
                   help="references per trace for calibration/frontier "
                        "sweeps (default %(default)s)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                   help="dataset scale vs. Table 3 (default %(default)s)")
    p.add_argument("--jobs", type=int, default=default_jobs(),
                   help="worker processes for the real sweeps "
                        "(default: REPRO_JOBS or CPU count)")
    p.add_argument("--engine", choices=("interp", "batch"), default=None,
                   help="execution backend for the real sweeps")
    p.add_argument("--families",
                   default="base,nc,vb,vp,ncd,p,ncp,vbp,vpp,vxp",
                   help="system families to search (default %(default)s)")
    p.add_argument("--nc-sizes", default="4k,8k,16k,32k,64k,128k",
                   metavar="SIZES",
                   help="SRAM NC capacities, k/m suffixes "
                        "(default %(default)s)")
    p.add_argument("--dram-nc-sizes", default="256k,512k,1m", metavar="SIZES",
                   help="DRAM NC capacities for the ncd family "
                        "(default %(default)s)")
    p.add_argument("--pc-denoms", default="9,7,5,3", metavar="DENOMS",
                   help="page-cache fraction denominators, i.e. PC holds "
                        "1/N of the dataset (default %(default)s)")
    p.add_argument("--thresholds", default="2,4,8,16", metavar="THRESHOLDS",
                   help="initial relocation thresholds (default %(default)s)")
    p.add_argument("--remote-latencies", default="30", metavar="CYCLES",
                   help="remote-access latency axis; event counts are "
                        "latency-independent, so this axis adds no model "
                        "error (default %(default)s)")
    p.add_argument("--sample", type=int, default=None, metavar="N",
                   help="rank a deterministic random sample of N candidates "
                        "instead of the full cross product")
    p.add_argument("--frontier-max", type=int, default=12, metavar="N",
                   help="simulate at most N frontier points, evenly spaced "
                        "(default %(default)s)")
    p.add_argument("--no-simulate", action="store_true",
                   help="stop after ranking; print the predicted frontier "
                        "without simulating (no error report)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="content-addressed result store to reuse across "
                        "runs (the sweep service's ResultStore layout)")
    p.add_argument("--model", default=None, metavar="PATH",
                   help="load a saved surrogate model instead of "
                        "calibrating (see --save-model)")
    p.add_argument("--save-model", default=None, metavar="PATH",
                   help="write the fitted surrogate model JSON here")
    p.add_argument("--check", action="store_true",
                   help="CI accuracy gate: calibrate, validate on held-out "
                        "configurations, and fail if any error metric "
                        "exceeds the committed baseline")
    p.add_argument("--baseline", default="benchmarks/baseline_surrogate.json",
                   help="baseline thresholds for --check "
                        "(default %(default)s)")
    p.add_argument("--out", default=None,
                   help="also write the report to this file")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the machine-readable outcome here "
                        "(mirrors 'repro perf --json')")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser(
        "trace",
        help="generate/inspect a benchmark trace, 'trace export "
             "SYSTEM BENCHMARK' for a Chrome/Perfetto trace.json, or "
             "'trace serve-export RUN_DIR' for a service job's "
             "wall-clock span tree",
    )
    p.add_argument("benchmark",
                   help="benchmark name, 'export' to write a Chrome "
                        "trace-event file of a simulated run, or "
                        "'serve-export' for a service run directory's "
                        "wall-clock spans")
    p.add_argument("export_args", nargs="*", metavar="ARGS",
                   help="for 'trace export': SYSTEM BENCHMARK to simulate "
                        "with event tracing on; for 'trace serve-export': "
                        "the job RUN_DIR holding spans.jsonl")
    p.add_argument("--refs", type=int, default=DEFAULT_REFS)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p.add_argument("--out", default=None,
                   help="save as .npz (trace) / trace.json (trace export) "
                        "/ spans.json (trace serve-export)")
    p.add_argument("--stats", action="store_true",
                   help="print trace characterisation")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "top",
        help="live monitor for a checkpointed sweep's run directory",
    )
    p.add_argument("run_dir", help="the sweep's --resume directory")
    p.add_argument("--follow", action="store_true",
                   help="keep refreshing until the sweep completes")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes with --follow "
                        "(default %(default)s)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker count the sweep runs with (sharpens the ETA)")
    p.add_argument("--max-updates", type=int, default=None,
                   help="stop after N refreshes even if incomplete")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "check",
        help="run the protocol verification suite "
             "(model checker / oracle diff / fuzzer)",
    )
    p.add_argument("--explore", action="store_true",
                   help="exhaustively model-check tiny configurations")
    p.add_argument("--diff", action="store_true",
                   help="diff the simulator against the reference oracle")
    p.add_argument("--fuzz", action="store_true",
                   help="fuzz adversarial interleavings")
    p.add_argument("--replay", metavar="ARTIFACT",
                   help="re-execute a saved fuzz artifact and exit")
    p.add_argument("--variants", default=None,
                   help="comma-separated systems to explore "
                        "(default: the built-in tiny-config set)")
    p.add_argument("--blocks", type=int, default=2,
                   help="blocks in the explored address space "
                        "(default %(default)s; 3+ is much slower)")
    p.add_argument("--max-states", type=int, default=2_000_000,
                   help="abort exploration past this many states")
    p.add_argument("--systems", default="base,nc,ncd,ncs,vb,vp,p2,vbp2,vxp2",
                   help="systems for --diff (comma-separated)")
    p.add_argument("--benchmarks",
                   default="barnes,cholesky,fft,fmm,lu,ocean,radix,raytrace",
                   help="benchmarks for --diff (comma-separated)")
    p.add_argument("--refs", type=int, default=10_000,
                   help="references per --diff cell (default %(default)s)")
    p.add_argument("--scale", type=float, default=0.03125,
                   help="dataset scale for --diff traces (default %(default)s)")
    p.add_argument("--jobs", type=int, default=2,
                   help="parallel jobs for the serial-vs-parallel diff")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--budget", type=float, default=60.0,
                   help="fuzzing time budget in seconds (default %(default)s)")
    p.add_argument("--max-cases", type=int, default=None,
                   help="stop fuzzing after N cases (overrides --budget)")
    p.add_argument("--out-dir", default="fuzz-artifacts",
                   help="directory for shrunk failing-case artifacts")
    p.add_argument("--events", default=None,
                   help="stream verification events to this JSONL file")
    p.add_argument("--manifest-dir", default=None,
                   help="write a check manifest here (or $REPRO_MANIFEST_DIR)")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser(
        "serve",
        help="run the sweep job server (async HTTP + result cache)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default %(default)s)")
    p.add_argument("--port", type=int, default=8752,
                   help="bind port; 0 picks an ephemeral one "
                        "(default %(default)s)")
    p.add_argument("--data-dir", default=None,
                   help="service state directory: result store + job "
                        "journals (default $REPRO_SERVICE_DIR, then "
                        "~/.cache/repro/service)")
    p.add_argument("--job-workers", type=int, default=2,
                   help="sweep jobs run concurrently (default %(default)s)")
    p.add_argument("--max-queued-jobs", type=int, default=None,
                   help="admission control: queued jobs before submissions "
                        "are 503'd; 0 disables the bound (default "
                        "$REPRO_MAX_QUEUED_JOBS, then 64)")
    p.add_argument("--max-inflight-cells", type=int, default=None,
                   help="admission control: queued+running sweep cells "
                        "before submissions are 503'd; 0 disables "
                        "(default $REPRO_MAX_INFLIGHT_CELLS, then 4096)")
    p.add_argument("--job-ttl", type=float, default=None,
                   help="seconds a finished job is kept before TTL garbage "
                        "collection removes it (default $REPRO_JOB_TTL, "
                        "then keep forever)")
    p.add_argument("--drain-timeout", type=float, default=None,
                   help="graceful-shutdown seconds to let running jobs "
                        "finish before parking them at a cell boundary "
                        "(default $REPRO_DRAIN_TIMEOUT, then 30)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("list", help="show systems/benchmarks/experiments")
    p.set_defaults(func=_cmd_list)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
