"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent system/benchmark configuration."""


class ProtocolError(ReproError):
    """An illegal coherence-protocol state or transition was observed.

    This indicates a bug in the simulator (a violated invariant), never a
    user mistake, and is therefore raised eagerly rather than logged.
    """


class TraceError(ReproError):
    """A malformed trace record, file, or generator specification."""


class CorruptTraceError(TraceError):
    """A trace file failed its integrity check (digest mismatch, torn write).

    Raised by :func:`repro.trace.io.load_trace`; the disk trace cache
    converts it into quarantine-and-regenerate instead of letting it
    propagate out of a sweep worker.
    """

    def __init__(self, path: object, reason: str) -> None:
        super().__init__(f"corrupt trace file {path}: {reason}")
        self.path = str(path)
        self.reason = reason


class InjectedFaultError(ReproError):
    """A transient fault raised on purpose by :mod:`repro.faults`.

    Only ever seen when fault injection is enabled (``REPRO_FAULTS`` /
    ``--inject-faults``); the sweep executor treats it exactly like any
    other transient per-cell failure, which is the point.
    """


class CellTimeoutError(ReproError):
    """A sweep cell exceeded its wall-clock budget and its worker was killed."""

    def __init__(self, system: str, benchmark: str, timeout_s: float, attempt: int) -> None:
        super().__init__(
            f"cell {system}/{benchmark} exceeded its {timeout_s:g}s wall-clock "
            f"budget (attempt {attempt + 1})"
        )
        self.system = system
        self.benchmark = benchmark
        self.timeout_s = timeout_s
        self.attempt = attempt


class RetryExhaustedError(ReproError):
    """A sweep cell kept failing after every configured retry.

    Carries the full cell context — system, benchmark, seed, chunk — plus
    how many attempts were made and a description of the last failure, so
    a multi-hour sweep that dies names the exact cell to investigate.
    """

    def __init__(
        self,
        system: str,
        benchmark: str,
        seed: int,
        attempts: int,
        last_error: object,
        chunk: "int | None" = None,
    ) -> None:
        where = f"cell {system}/{benchmark} (seed {seed}"
        if chunk is not None:
            where += f", chunk {chunk}"
        where += ")"
        super().__init__(
            f"{where} failed after {attempts} attempt(s); last error: {last_error}"
        )
        self.system = system
        self.benchmark = benchmark
        self.seed = seed
        self.attempts = attempts
        self.last_error = last_error
        self.chunk = chunk


class CheckpointError(ReproError):
    """A sweep journal cannot be resumed (parameter mismatch, bad header)."""


class UnknownSystemError(ConfigurationError):
    """A system name was requested that is not in the registry."""

    def __init__(self, name: str, known: "list[str]") -> None:
        super().__init__(
            f"unknown system {name!r}; known systems: {', '.join(sorted(known))}"
        )
        self.name = name
        self.known = list(known)


class UnknownBenchmarkError(ConfigurationError):
    """A benchmark name was requested that is not in the registry."""

    def __init__(self, name: str, known: "list[str]") -> None:
        super().__init__(
            f"unknown benchmark {name!r}; known benchmarks: "
            f"{', '.join(sorted(known))}"
        )
        self.name = name
        self.known = list(known)
