"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent system/benchmark configuration."""


class ProtocolError(ReproError):
    """An illegal coherence-protocol state or transition was observed.

    This indicates a bug in the simulator (a violated invariant), never a
    user mistake, and is therefore raised eagerly rather than logged.
    """


class TraceError(ReproError):
    """A malformed trace record, file, or generator specification."""


class UnknownSystemError(ConfigurationError):
    """A system name was requested that is not in the registry."""

    def __init__(self, name: str, known: "list[str]") -> None:
        super().__init__(
            f"unknown system {name!r}; known systems: {', '.join(sorted(known))}"
        )
        self.name = name
        self.known = list(known)


class UnknownBenchmarkError(ConfigurationError):
    """A benchmark name was requested that is not in the registry."""

    def __init__(self, name: str, known: "list[str]") -> None:
        super().__init__(
            f"unknown benchmark {name!r}; known benchmarks: "
            f"{', '.join(sorted(known))}"
        )
        self.name = name
        self.known = list(known)
