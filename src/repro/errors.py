"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent system/benchmark configuration."""


class ProtocolError(ReproError):
    """An illegal coherence-protocol state or transition was observed.

    This indicates a bug in the simulator (a violated invariant), never a
    user mistake, and is therefore raised eagerly rather than logged.
    """


class TraceError(ReproError):
    """A malformed trace record, file, or generator specification."""


class CorruptTraceError(TraceError):
    """A trace file failed its integrity check (digest mismatch, torn write).

    Raised by :func:`repro.trace.io.load_trace`; the disk trace cache
    converts it into quarantine-and-regenerate instead of letting it
    propagate out of a sweep worker.
    """

    def __init__(self, path: object, reason: str) -> None:
        super().__init__(f"corrupt trace file {path}: {reason}")
        self.path = str(path)
        self.reason = reason


class InjectedFaultError(ReproError):
    """A transient fault raised on purpose by :mod:`repro.faults`.

    Only ever seen when fault injection is enabled (``REPRO_FAULTS`` /
    ``--inject-faults``); the sweep executor treats it exactly like any
    other transient per-cell failure, which is the point.
    """


class CellTimeoutError(ReproError):
    """A sweep cell exceeded its wall-clock budget and its worker was killed."""

    def __init__(self, system: str, benchmark: str, timeout_s: float, attempt: int) -> None:
        super().__init__(
            f"cell {system}/{benchmark} exceeded its {timeout_s:g}s wall-clock "
            f"budget (attempt {attempt + 1})"
        )
        self.system = system
        self.benchmark = benchmark
        self.timeout_s = timeout_s
        self.attempt = attempt


class RetryExhaustedError(ReproError):
    """A sweep cell kept failing after every configured retry.

    Carries the full cell context — system, benchmark, seed, chunk — plus
    how many attempts were made and a description of the last failure, so
    a multi-hour sweep that dies names the exact cell to investigate.
    """

    def __init__(
        self,
        system: str,
        benchmark: str,
        seed: int,
        attempts: int,
        last_error: object,
        chunk: "int | None" = None,
    ) -> None:
        where = f"cell {system}/{benchmark} (seed {seed}"
        if chunk is not None:
            where += f", chunk {chunk}"
        where += ")"
        super().__init__(
            f"{where} failed after {attempts} attempt(s); last error: {last_error}"
        )
        self.system = system
        self.benchmark = benchmark
        self.seed = seed
        self.attempts = attempts
        self.last_error = last_error
        self.chunk = chunk


class CheckpointError(ReproError):
    """A sweep journal cannot be resumed (parameter mismatch, bad header)."""


class VerificationError(ReproError):
    """Base class for failures reported by the ``repro check`` suite."""


class ModelCheckViolation(VerificationError):
    """The exhaustive explorer reached a state that breaks an invariant.

    Carries the minimal event path (BFS order guarantees minimality) from
    the initial machine state to the violating transition, so the failure
    is replayable by hand: each entry is ``(pid, block, is_write)``.
    """

    def __init__(self, system: str, reason: str, path: "list[tuple[int, int, bool]]") -> None:
        steps = " -> ".join(
            f"{'W' if w else 'R'}(pid={pid}, block={block})" for pid, block, w in path
        )
        super().__init__(
            f"model check of {system!r} failed after {len(path)} event(s): "
            f"{reason}\n  minimal path: {steps or '<initial state>'}"
        )
        self.system = system
        self.reason = reason
        self.path = list(path)


class OracleDivergenceError(VerificationError):
    """The optimised simulator and the reference oracle disagree.

    Names the cell, the first divergent reference index (when localised),
    and the counters that differ, so the disagreement is immediately
    actionable.
    """

    def __init__(
        self,
        system: str,
        benchmark: str,
        detail: str,
        first_divergence: "int | None" = None,
    ) -> None:
        where = f"cell {system}/{benchmark}"
        if first_divergence is not None:
            where += f" at reference {first_divergence}"
        super().__init__(f"oracle divergence in {where}: {detail}")
        self.system = system
        self.benchmark = benchmark
        self.detail = detail
        self.first_divergence = first_divergence


class UnknownSystemError(ConfigurationError):
    """A system name was requested that is not in the registry."""

    def __init__(self, name: str, known: "list[str]") -> None:
        super().__init__(
            f"unknown system {name!r}; known systems: {', '.join(sorted(known))}"
        )
        self.name = name
        self.known = list(known)


class UnknownBenchmarkError(ConfigurationError):
    """A benchmark name was requested that is not in the registry."""

    def __init__(self, name: str, known: "list[str]") -> None:
        super().__init__(
            f"unknown benchmark {name!r}; known benchmarks: "
            f"{', '.join(sorted(known))}"
        )
        self.name = name
        self.known = list(known)


class JobSpecError(ReproError):
    """A sweep-job specification submitted to the service is invalid.

    Raised by :meth:`repro.service.jobs.JobSpec.from_dict` with a message
    naming the offending field; the HTTP layer maps it to a 400 response.
    """


class ServiceUnavailableError(ReproError):
    """The job server refused new work (saturated queue or draining).

    Raised by :meth:`repro.service.jobs.JobManager.submit` when admission
    control rejects a spec; carries the backoff hint the HTTP layer turns
    into a ``503`` with a ``Retry-After`` header.  The rejection is load
    shedding, not failure — the client's request was never enqueued and
    can safely be retried.
    """

    def __init__(self, reason: str, retry_after_s: float = 2.0) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = float(retry_after_s)


class JobCancelledError(ReproError):
    """A running sweep was aborted between cells (cancel or drain).

    Raised out of :func:`repro.sim.parallel.run_parallel_sweep` when its
    ``should_abort`` callback turns true.  Every cell completed before
    the abort is already journalled, so a cancelled-then-resubmitted (or
    drained-then-restarted) job restores them bit-identically instead of
    re-simulating.
    """
