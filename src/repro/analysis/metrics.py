"""Aggregation helpers used by the experiment drivers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Tuple

from ..sim.results import SimulationResult


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; 0 if any value is non-positive or the input empty."""
    vals = list(values)
    if not vals or any(v <= 0 for v in vals):
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize_map(
    results: Mapping[Tuple[str, str], SimulationResult],
    reference_system: str,
    metric: str = "stall",
) -> Dict[Tuple[str, str], float]:
    """Normalise a (system, benchmark) result map against one system.

    ``metric`` is ``"stall"`` (remote read stall, Figs. 9/11) or
    ``"traffic"`` (remote data traffic, Fig. 10).  Benchmarks where the
    reference metric is zero map to 0.0 (nothing to normalise).
    """
    out: Dict[Tuple[str, str], float] = {}
    benchmarks = {b for (_, b) in results}
    for bench in benchmarks:
        ref = results[(reference_system, bench)]
        if metric == "stall":
            denom = ref.remote_read_stall
        elif metric == "traffic":
            denom = float(ref.traffic_blocks)
        else:
            raise ValueError(f"unknown metric {metric!r}")
        for (system, b), res in results.items():
            if b != bench:
                continue
            num = (
                res.remote_read_stall
                if metric == "stall"
                else float(res.traffic_blocks)
            )
            out[(system, bench)] = num / denom if denom else 0.0
    return out


def stacked_miss_bars(
    result: SimulationResult,
) -> Dict[str, float]:
    """The three stacked components of the paper's miss-ratio bars.

    Figs. 3-8 draw read miss ratio + write miss ratio, with the page
    relocation overhead (scaled to equivalent misses, x225/30) on top.
    All values in % of shared references.
    """
    return {
        "read": result.read_miss_ratio,
        "write": result.write_miss_ratio,
        "relocation": result.relocation_overhead_ratio,
    }
