"""Metrics helpers and plain-text report tables for experiment output."""

from .charts import bar_chart, stacked_chart, stall_component_chart
from .metrics import geometric_mean, normalize_map, stacked_miss_bars
from .report import format_grid, format_stacked_bars, format_stall_breakdown

__all__ = [
    "bar_chart",
    "stacked_chart",
    "stall_component_chart",
    "geometric_mean",
    "normalize_map",
    "stacked_miss_bars",
    "format_grid",
    "format_stacked_bars",
    "format_stall_breakdown",
]
