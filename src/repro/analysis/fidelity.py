"""Paper-vs-repro fidelity comparison — the ``repro report`` engine.

Compares freshly simulated figure data (``ExperimentResult.data``) against
the pinned reference run in :mod:`repro.analysis.baseline_data` and
renders per-figure comparison tables with percent deviation.

The reference values are this repository's recorded 400k-reference run of
every figure (``results/experiments_output.txt``), standing in for the
paper's figures: the paper's absolute numbers are not reachable from
bounded synthetic traces, so fidelity is measured as drift against the
pinned run — zero when re-run at baseline fidelity (same refs/seed), and
an expected, quantified deviation at smaller trace lengths.

Two severities come out of a comparison:

* **deviations** beyond the tolerance are *flagged* in the tables and the
  summary (informative: expected for short traces);
* **structural problems** — a figure that produced no data, baseline
  cells with no measured value, non-finite values — fail
  ``repro report --check`` (exit 1): they mean the drivers and the
  baseline no longer agree on the experiment's shape, which is a
  regression no matter the trace length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .baseline_data import (
    BASELINE,
    BASELINE_COLUMNS,
    BASELINE_METRIC,
    BASELINE_REFS,
    BASELINE_SEED,
    BASELINE_TITLES,
)
from .report import format_comparison_grid

#: the figures `repro report` covers, in paper order
REPORT_FIGURES: Tuple[str, ...] = tuple(sorted(BASELINE))

#: default flagging tolerance (percent deviation from the pinned baseline)
DEFAULT_TOLERANCE_PCT = 5.0


@dataclass
class CellDeviation:
    """One (column, benchmark) cell of one figure, baseline vs. measured."""

    figure: str
    column: str
    benchmark: str
    baseline: float
    measured: float
    #: percent deviation from baseline; None when the baseline is zero
    deviation_pct: Optional[float]

    @property
    def abs_deviation_pct(self) -> float:
        return abs(self.deviation_pct) if self.deviation_pct is not None else 0.0


@dataclass
class FigureComparison:
    """The full baseline-vs-measured comparison for one figure."""

    figure: str
    title: str
    metric: str
    tolerance_pct: float
    cells: List[CellDeviation] = field(default_factory=list)
    #: baseline cells the measured data did not cover (structural problem)
    missing: List[Tuple[str, str]] = field(default_factory=list)
    #: measured cells with no baseline counterpart (structural problem)
    unexpected: List[Tuple[str, str]] = field(default_factory=list)
    #: measured values that are NaN/inf (structural problem)
    non_finite: List[Tuple[str, str]] = field(default_factory=list)

    # ---- aggregates ------------------------------------------------------

    @property
    def mean_abs_deviation_pct(self) -> float:
        if not self.cells:
            return 0.0
        return sum(c.abs_deviation_pct for c in self.cells) / len(self.cells)

    @property
    def max_abs_deviation_pct(self) -> float:
        return max((c.abs_deviation_pct for c in self.cells), default=0.0)

    @property
    def flagged(self) -> List[CellDeviation]:
        """Cells whose deviation exceeds the tolerance."""
        return [c for c in self.cells if c.abs_deviation_pct > self.tolerance_pct]

    @property
    def structural_problems(self) -> List[str]:
        problems = []
        if not self.cells:
            problems.append(f"{self.figure}: no measured data")
        for col, bench in self.missing:
            problems.append(f"{self.figure}: no measured value for ({col}, {bench})")
        for col, bench in self.unexpected:
            problems.append(f"{self.figure}: measured cell ({col}, {bench}) has no baseline")
        for col, bench in self.non_finite:
            problems.append(f"{self.figure}: non-finite value at ({col}, {bench})")
        return problems

    @property
    def ok(self) -> bool:
        """Structurally sound (deviation flags are informative, not fatal)."""
        return not self.structural_problems


def compare_figure(
    figure: str,
    data: Mapping[Tuple[str, str], float],
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
) -> FigureComparison:
    """Compare one figure's measured ``data`` against its pinned baseline.

    ``data`` is the ``(column, benchmark) -> value`` map an experiment
    driver stores in ``ExperimentResult.data``.
    """
    if figure not in BASELINE:
        raise KeyError(
            f"no baseline for {figure!r}; known figures: {', '.join(REPORT_FIGURES)}"
        )
    baseline = BASELINE[figure]
    comp = FigureComparison(
        figure=figure,
        title=BASELINE_TITLES[figure],
        metric=BASELINE_METRIC[figure],
        tolerance_pct=tolerance_pct,
    )
    for key, base_val in baseline.items():
        if key not in data:
            comp.missing.append(key)
            continue
        measured = float(data[key])
        if not math.isfinite(measured):
            comp.non_finite.append(key)
            continue
        if base_val != 0.0:
            dev: Optional[float] = (measured - base_val) / abs(base_val) * 100.0
        else:
            dev = None if measured == 0.0 else float("inf")
        comp.cells.append(
            CellDeviation(
                figure=figure,
                column=key[0],
                benchmark=key[1],
                baseline=base_val,
                measured=measured,
                deviation_pct=dev,
            )
        )
    comp.unexpected = sorted(set(data) - set(baseline))
    return comp


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _cell_text(cell: Optional[CellDeviation]) -> Optional[str]:
    if cell is None:
        return None
    if cell.deviation_pct is None:
        return f"{cell.measured:.2f} (n/a)"
    return f"{cell.measured:.2f} ({cell.deviation_pct:+.1f}%)"


def render_figure_comparison(comp: FigureComparison) -> str:
    """One figure's comparison table: measured value + percent deviation."""
    by_key = {(c.column, c.benchmark): c for c in comp.cells}
    columns = list(BASELINE_COLUMNS[comp.figure])
    benches = sorted({bench for _, bench in BASELINE[comp.figure]})
    table = format_comparison_grid(
        f"{comp.figure}: {comp.title}\n"
        f"measured {comp.metric} vs. pinned {BASELINE_REFS:,}-ref baseline "
        f"(deviation %)",
        benches,
        columns,
        lambda b, c: _cell_text(by_key.get((c, b))),
    )
    lines = [table]
    flagged = comp.flagged
    summary = (
        f"{len(comp.cells)} cells, mean |dev| "
        f"{comp.mean_abs_deviation_pct:.1f}%, max |dev| "
        f"{comp.max_abs_deviation_pct:.1f}%, "
        f"{len(flagged)} beyond ±{comp.tolerance_pct:g}%"
    )
    lines.append(summary)
    for problem in comp.structural_problems:
        lines.append(f"STRUCTURAL: {problem}")
    return "\n".join(lines)


def render_report(
    comparisons: Sequence[FigureComparison],
    refs: Optional[int] = None,
    seed: Optional[int] = None,
) -> str:
    """The full fidelity report: header, summary table, per-figure tables."""
    lines = ["paper-fidelity report", "=" * 21]
    if refs is not None:
        lines.append(
            f"measured at {refs:,} refs (seed {seed}), baseline pinned at "
            f"{BASELINE_REFS:,} refs (seed {BASELINE_SEED})"
        )
        if refs != BASELINE_REFS:
            lines.append(
                "note: trace length differs from the baseline run; deviation "
                "reflects trace truncation as well as any code drift"
            )
    lines.append("")
    header = (
        f"{'figure':<8} {'cells':>6} {'mean|dev|':>10} {'max|dev|':>10} "
        f"{'flagged':>8} {'status':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for comp in comparisons:
        status = "ok" if comp.ok else "BROKEN"
        lines.append(
            f"{comp.figure:<8} {len(comp.cells):>6} "
            f"{comp.mean_abs_deviation_pct:>9.1f}% {comp.max_abs_deviation_pct:>9.1f}% "
            f"{len(comp.flagged):>8} {status:>8}"
        )
    for comp in comparisons:
        lines.append("")
        lines.append(render_figure_comparison(comp))
    return "\n".join(lines)


def report_summary_dict(
    comparisons: Sequence[FigureComparison],
) -> Dict[str, Dict[str, object]]:
    """Machine-readable per-figure summary (embedded in the run manifest)."""
    return {
        comp.figure: {
            "metric": comp.metric,
            "cells": len(comp.cells),
            "mean_abs_deviation_pct": comp.mean_abs_deviation_pct,
            "max_abs_deviation_pct": comp.max_abs_deviation_pct,
            "flagged": len(comp.flagged),
            "tolerance_pct": comp.tolerance_pct,
            "structural_problems": comp.structural_problems,
        }
        for comp in comparisons
    }
