"""Terminal bar charts for experiment results.

The paper's figures are bar charts (benchmarks x systems); these
renderers draw the same shape in plain text so a bench/CLI run can show
the *picture*, not just the numbers.  No plotting dependency is used.

Example (Fig. 9 style)::

    barnes   base | ######################8 1.14
             ncs  | ###############5        0.77
             ncd  | ####################    1.00
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

_FULL = "#"
_PARTIAL = "0123456789"


def _bar(value: float, scale: float, width: int) -> str:
    """A proportional bar of at most ``width`` chars, eighth-resolution."""
    if value <= 0 or scale <= 0:
        return ""
    cells = min(1.0, value / scale) * width
    whole = int(cells)
    frac = int((cells - whole) * 10)
    out = _FULL * whole
    if whole < width and frac > 0:
        out += _PARTIAL[frac]
    return out


def bar_chart(
    title: str,
    groups: Sequence[str],
    series: Sequence[str],
    values: Mapping[Tuple[str, str], float],
    width: int = 40,
    reference: Optional[float] = None,
    fmt: str = "{:.2f}",
) -> str:
    """Grouped horizontal bar chart: one group per benchmark, one bar per
    system — the layout of Figs. 3-11.

    ``values`` maps (series, group) -> value.  With ``reference`` given
    (e.g. 1.0 for normalised stalls), a ``|`` ruler column marks it.
    """
    maxval = max((v for v in values.values() if v > 0), default=1.0)
    scale = max(maxval, reference or 0.0)
    label_w = max((len(s) for s in series), default=4)
    ref_col = int(round((reference / scale) * width)) if reference else None

    lines = [title]
    for group in groups:
        first = True
        for s in series:
            v = values.get((s, group))
            if v is None:
                continue
            bar = _bar(v, scale, width)
            if ref_col is not None:
                padded = bar.ljust(width)
                if len(bar) < ref_col:
                    padded = padded[:ref_col] + "|" + padded[ref_col + 1:]
                bar = padded.rstrip()
            head = f"{group:10s}" if first else " " * 10
            lines.append(f"{head} {s:{label_w}s} | {bar} {fmt.format(v)}")
            first = False
        lines.append("")
    if reference is not None:
        lines.append(f"('|' marks {fmt.format(reference)})")
    return "\n".join(lines)


def stacked_chart(
    title: str,
    groups: Sequence[str],
    series: Sequence[str],
    stacks: Mapping[Tuple[str, str], Dict[str, float]],
    width: int = 40,
) -> str:
    """Stacked bars (read/write/relocation) — the Figs. 3-8 layout.

    Components are drawn with distinct fills: ``#`` read, ``=`` write,
    ``%`` relocation overhead.
    """
    totals = [sum(v.values()) for v in stacks.values()]
    scale = max([t for t in totals if t > 0], default=1.0)
    label_w = max((len(s) for s in series), default=4)

    fills = {"read": "#", "write": "=", "relocation": "%"}
    lines = [title]
    for group in groups:
        first = True
        for s in series:
            parts = stacks.get((s, group))
            if parts is None:
                continue
            bar = ""
            for key in ("read", "write", "relocation"):
                component = parts.get(key, 0.0)
                cells = int(round(component / scale * width))
                bar += fills[key] * cells
            total = sum(parts.values())
            head = f"{group:10s}" if first else " " * 10
            lines.append(f"{head} {s:{label_w}s} | {bar} {total:.2f}")
            first = False
        lines.append("")
    lines.append("(# read miss, = write miss, % relocation overhead)")
    return "\n".join(lines)


#: fill character per Eq. 1 stall component, in the paper's stacking order
STALL_FILLS = (
    ("cluster_hit", "c"),
    ("nc_hit", "#"),
    ("pc_hit", "="),
    ("remote_miss", "@"),
    ("relocation", "%"),
)


def stall_component_chart(
    title: str,
    groups: Sequence[str],
    series: Sequence[str],
    stacks: Mapping[Tuple[str, str], Dict[str, float]],
    width: int = 48,
) -> str:
    """Stacked stall-attribution bars — the Fig. 6-style system comparison
    drawn from the profiler's Eq. 1 decomposition.

    ``stacks`` maps (system, benchmark) to component -> cycles (the shape
    :func:`repro.sim.latency.stall_components` and
    :func:`repro.obs.profile.stall_breakdown` both produce).  One group
    per benchmark, one bar per system, five fills in Eq. 1 order.
    """
    totals = [sum(v.values()) for v in stacks.values()]
    scale = max([t for t in totals if t > 0], default=1.0)
    label_w = max((len(s) for s in series), default=4)

    lines = [title]
    for group in groups:
        first = True
        for s in series:
            parts = stacks.get((s, group))
            if parts is None:
                continue
            bar = ""
            for key, fill in STALL_FILLS:
                component = parts.get(key, 0.0)
                cells = int(round(component / scale * width))
                bar += fill * cells
            total = sum(parts.values())
            head = f"{group:10s}" if first else " " * 10
            lines.append(f"{head} {s:{label_w}s} | {bar} {total:,.0f}")
            first = False
        lines.append("")
    lines.append(
        "(c cluster c2c, # NC hit, = PC hit, @ remote miss, % relocation; "
        "cycles)"
    )
    return "\n".join(lines)
