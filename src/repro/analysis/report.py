"""Plain-text tables in the shape of the paper's figures.

Every experiment driver renders its output through these formatters, so a
bench run prints the same rows/series the paper reports (benchmarks down,
systems/configurations across).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple


def format_grid(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cell: Callable[[str, str], Optional[float]],
    fmt: str = "{:.2f}",
    col_width: int = 9,
) -> str:
    """A labelled 2-D grid: rows x columns with a title line."""
    lines = [title]
    header = f"{'':12s}" + "".join(f"{c:>{col_width}s}" for c in col_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for r in row_labels:
        cells = []
        for c in col_labels:
            v = cell(r, c)
            cells.append("-".rjust(col_width) if v is None else fmt.format(v).rjust(col_width))
        lines.append(f"{r:12s}" + "".join(cells))
    return "\n".join(lines)


def format_comparison_grid(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cell: Callable[[str, str], Optional[str]],
    col_width: int = 17,
) -> str:
    """A grid of pre-formatted string cells (fidelity comparisons).

    Like :func:`format_grid` but the cell callback returns display text
    (e.g. ``"4.11 (+2.3%)"``) rather than a float; ``None`` renders ``-``.
    The title may span several lines.
    """
    lines = list(title.splitlines())
    header = f"{'':12s}" + "".join(f"{c:>{col_width}s}" for c in col_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for r in row_labels:
        cells = []
        for c in col_labels:
            txt = cell(r, c)
            cells.append(("-" if txt is None else txt).rjust(col_width))
        lines.append(f"{r:12s}" + "".join(cells))
    return "\n".join(lines)


def format_stacked_bars(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    stacks: Mapping[Tuple[str, str], Dict[str, float]],
    col_width: int = 18,
) -> str:
    """Miss-ratio 'bars': read+write(+relocation) per cell, like Figs. 3-8.

    Each cell renders ``read/write`` or ``read/write+reloc`` percentages.
    """
    lines = [title]
    header = f"{'':12s}" + "".join(f"{c:>{col_width}s}" for c in col_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for r in row_labels:
        cells = []
        for c in col_labels:
            s = stacks.get((r, c)) or stacks.get((c, r))
            if s is None:
                cells.append("-".rjust(col_width))
                continue
            txt = f"{s['read']:.2f}r+{s['write']:.2f}w"
            if s.get("relocation"):
                txt += f"+{s['relocation']:.2f}p"
            cells.append(txt.rjust(col_width))
        lines.append(f"{r:12s}" + "".join(cells))
    lines.append(
        "(r = read miss %, w = write miss %, p = relocation overhead in "
        "equivalent miss %)"
    )
    return "\n".join(lines)


def format_prediction_grid(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    predicted: Mapping[Tuple[str, str], float],
    actual: Mapping[Tuple[str, str], float],
    fmt: str = "{:.3f}",
    col_width: int = 22,
) -> str:
    """Predicted-vs-measured cells: ``pred/meas (signed err%)``.

    The surrogate error report renders through this: each cell shows the
    model's prediction, the simulated truth, and the signed relative
    error — ``(err%)`` is omitted when the truth is zero.  ``None``/
    missing cells render ``-``.
    """

    def cell(r: str, c: str) -> Optional[str]:
        p = predicted.get((r, c))
        a = actual.get((r, c))
        if p is None or a is None:
            return None
        txt = f"{fmt.format(p)}/{fmt.format(a)}"
        if a != 0.0:
            txt += f" ({(p - a) / a * 100.0:+.1f}%)"
        return txt

    grid = format_comparison_grid(title, row_labels, col_labels, cell,
                                  col_width=col_width)
    return grid + "\n(predicted/simulated stall cycles per reference, signed error in parens)"


#: Eq. 1 component order and display labels for the stall breakdown table
_STALL_COLUMNS = (
    ("cluster_hit", "c2c"),
    ("nc_hit", "nc_hit"),
    ("pc_hit", "pc_hit"),
    ("remote_miss", "remote"),
    ("relocation", "reloc"),
)


def format_stall_breakdown(
    title: str,
    row_labels: Sequence[str],
    breakdowns: Mapping[str, Dict[str, float]],
    col_width: int = 14,
) -> str:
    """Per-system Eq. 1 stall attribution table (cycles and % of total).

    ``breakdowns`` maps a row label (usually a system) to component ->
    cycles — the shape the stall profiler and
    :func:`repro.sim.latency.stall_components` both produce.  Components
    render as absolute cycles with their share of the row's total, so a
    reader sees at a glance *where* each system's stall goes.
    """
    lines = [title]
    header = f"{'':12s}" + "".join(
        f"{label:>{col_width}s}" for _key, label in _STALL_COLUMNS
    ) + f"{'total':>{col_width}s}"
    lines.append(header)
    lines.append("-" * len(header))
    for r in row_labels:
        parts = breakdowns.get(r)
        if parts is None:
            lines.append(f"{r:12s}" + "-".rjust(col_width) * (len(_STALL_COLUMNS) + 1))
            continue
        total = sum(parts.values())
        cells = []
        for key, _label in _STALL_COLUMNS:
            v = parts.get(key, 0.0)
            pct = 100.0 * v / total if total else 0.0
            cells.append(f"{v:,.0f}({pct:.0f}%)".rjust(col_width))
        cells.append(f"{total:,.0f}".rjust(col_width))
        lines.append(f"{r:12s}" + "".join(cells))
    lines.append("(Eq. 1 cycles per component, share of the row total in parens)")
    return "\n".join(lines)
