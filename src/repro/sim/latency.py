"""Applying the paper's constant-latency model (Table 1/2, Eq. 1).

The simulator produces pure event counts; this module turns them into the
paper's two headline metrics:

* **remote read stall** —

  ``RS = N_hit^NC L_hit^NC + N_hit^PC L_hit^PC + N_miss L_miss + N_rel T_rel``

  with the latencies of Table 1 resolved per system: an SRAM NC hit is a
  1-cycle cache-to-cache transfer, a DRAM NC hit is a DRAM access plus tag
  check (13), a DRAM NC *miss* adds the wasted tag check to the remote
  access (33 vs. 30), and a page-cache hit is one DRAM access (10).
  Cache-to-cache hits from peer caches in the cluster are also charged one
  bus cycle (they ride the same transaction as an SRAM NC hit).

* **remote data traffic** — read misses + write misses + write-backs that
  crossed the network, in blocks (Sec. 6.4).
"""

from __future__ import annotations

from ..params import SystemConfig
from ..stats import Counters


def nc_hit_latency(config: SystemConfig) -> int:
    """Latency of a network-cache hit in this system (Table 1)."""
    lat = config.latency
    return lat.dram_nc_hit if config.nc.is_dram else lat.sram_nc_hit


def remote_miss_latency(config: SystemConfig) -> int:
    """Latency of a miss that goes all the way to the home node."""
    lat = config.latency
    return lat.dram_nc_miss if config.nc.is_dram else lat.remote_access


def remote_read_stall(counters: Counters, config: SystemConfig) -> float:
    """Eq. 1: the total remote read stall, in bus cycles."""
    lat = config.latency
    return (
        counters.read_cluster_hits * lat.cache_to_cache
        + counters.read_nc_hits * nc_hit_latency(config)
        + counters.read_pc_hits * lat.pc_hit
        + counters.read_remote * remote_miss_latency(config)
        + counters.pc_relocations * lat.page_relocation
    )


def stall_components(counters: Counters, config: SystemConfig) -> "dict[str, int]":
    """Eq. 1 term by term: the stall decomposed into its five components.

    Keys match :data:`repro.obs.profile.STALL_COMPONENTS`; values are
    integers and sum exactly to :func:`remote_read_stall` — the invariant
    the stall profiler's attribution is verified against.
    """
    lat = config.latency
    return {
        "cluster_hit": counters.read_cluster_hits * lat.cache_to_cache,
        "nc_hit": counters.read_nc_hits * nc_hit_latency(config),
        "pc_hit": counters.read_pc_hits * lat.pc_hit,
        "remote_miss": counters.read_remote * remote_miss_latency(config),
        "relocation": counters.pc_relocations * lat.page_relocation,
    }


def relocation_overhead_cycles(counters: Counters, config: SystemConfig) -> int:
    """The relocation component of the stall, separated as in Figs. 7/9/11."""
    return counters.pc_relocations * config.latency.page_relocation


def traffic_blocks(counters: Counters) -> int:
    """Remote data traffic in block transfers (Sec. 6.4)."""
    return counters.traffic_blocks


def miss_ratio_read(counters: Counters) -> float:
    """Cluster read miss ratio, % of all shared references (Figs. 3-8)."""
    if counters.refs == 0:
        return 0.0
    return 100.0 * counters.read_remote / counters.refs


def miss_ratio_write(counters: Counters) -> float:
    """Cluster write miss ratio, % of all shared references."""
    if counters.refs == 0:
        return 0.0
    return 100.0 * counters.write_remote / counters.refs


def relocation_overhead_ratio(counters: Counters, config: SystemConfig) -> float:
    """Page-relocation overhead scaled to equivalent remote misses, in %.

    Fig. 7 stacks this on top of the miss-ratio bars: each relocation is
    worth 225/30 remote misses.
    """
    if counters.refs == 0:
        return 0.0
    lat = config.latency
    equivalent = counters.pc_relocations * lat.relocation_equivalent_misses
    return 100.0 * equivalent / counters.refs
