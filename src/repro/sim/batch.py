"""The vectorised batch execution engine.

:class:`BatchSimulator` runs the same protocol as
:class:`~repro.sim.simulator.Simulator` — it *is* one, by inheritance —
but classifies whole batches of references at once with numpy instead of
deciding hit/miss per reference in Python.  The dominant case — an L1
read hit — never touches a Python-level branch: a dense tag mirror of
every L1 is compared against the batch's block vector, and the surviving
references are committed with a handful of array operations.  Everything
else — misses, writes, and references whose mirror slot an earlier
in-batch reference touched — drops into the inherited per-reference
protocol code (``_upgrade`` / ``_miss``), which stays the single source
of truth for coherence semantics.  Counters, final machine state,
profiler attribution, and traced events are bit-identical to the
interpreter engine (CI-enforced by ``repro check --diff`` across all
nine NC variants).

Mechanics
---------
* **Tag mirror.**  Two flat numpy arrays of shape
  ``n_procs * n_sets * assoc`` shadow every L1 frame: the resident block
  number (``-1`` when empty) and an LRU timestamp.  Frames are addressed
  as ``(pid * n_sets + set) * assoc + way``; a line carries its frame
  index for the whole time it is resident (:class:`_BLine`), and the L1s
  are :class:`MirroredL1` caches whose ``remove`` clears the tag mirror —
  so every slow-path invalidation, inclusion eviction, and owner flush
  keeps the mirror exact without changing a line of protocol code.
* **Reads only.**  Only read hits are vector-committed.  Reads are
  state-independent (any resident line serves them), so the mirror needs
  no MESIR state and protocol state transitions (`ln.state = X`) stay
  plain attribute stores at full interpreter speed.  Writes always take
  the per-reference path; a write hit on an already-M line costs one
  dict probe there, which is noise at real write fractions.
* **LRU as timestamps.**  The interpreter keeps LRU as list order inside
  each set; the batch engine instead stamps a frame with the reference
  index (``now``) on every touch.  At most one frame per (pid, set) is
  touched per reference and ``now`` strictly increases, so stamps within
  a set are unique and stamp order is exactly the interpreter's list
  order; eviction picks the min-stamp way where the interpreter pops
  ``lines[0]``.  :meth:`sync_lru_order` re-sorts the Python line lists
  by stamp so final-state snapshots compare equal to the interpreter's.
* **In-batch coherence.**  Per-reference work can invalidate the batch's
  up-front classification (the adversarial cases: an upgrade then a read
  of the same block by two pids in one batch, a miss-evicted line
  re-referenced within the batch).  Every frame whose *tag* changes
  during the batch is flagged in a touched mask; a span of fast reads is
  committed wholesale only if none of its frames are flagged, and
  otherwise is re-classified against the live mirror, splitting at the
  first demoted reference — which then runs through the per-reference
  path, where the authoritative Python state is re-probed from scratch.
  Demotion is therefore always safe, never a correctness decision.
* **Chained-reuse promotion.**  The one classification the chunk-start
  mirror cannot make is a hit on a line the batch itself fills (short
  reuse distances put a miss and its re-references in one chunk).  A
  read whose (pid, block) occurred *earlier in the chunk* is resident by
  the time it executes — any reference leaves its line cached — so it is
  promoted to provisionally-fast; spans containing provisional reads
  re-classify against the live mirror rather than trusting chunk-start
  frames.  An intervening conflict eviction or invalidation simply
  demotes the read back to the per-reference path.

Profiler and tracer instrumentation sit entirely on the miss path inside
the inherited machinery, and ``self.now`` is set before every
per-reference call, so ``simulate(..., profile=True, engine="batch")``
attributes stalls identically to the interpreter at full vector speed
(no downgrade path needed); the Eq. 1 conservation invariant holds
bit-for-bit.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..coherence.cache import CacheLine, SetAssocCache
from ..errors import ConfigurationError
from ..params import CacheGeometry
from ..stats import Counters
from ..system.machine import Machine
from ..trace.record import Trace
from .simulator import _E, _M, Simulator

#: environment variable selecting the execution engine (CLI flags win)
ENGINE_ENV = "REPRO_ENGINE"

#: the available execution engines, in (default, alternative) order
ENGINES = ("interp", "batch")

DEFAULT_ENGINE = "interp"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Fold an explicit engine choice over ``$REPRO_ENGINE``, validating.

    ``None`` (the library default) consults the environment so sweep
    worker processes inherit ``--engine`` the same way they inherit
    ``--profile``; an unknown name raises :class:`ConfigurationError`
    naming the valid choices.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or DEFAULT_ENGINE
    engine = str(engine).lower()
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; valid engines: {', '.join(ENGINES)}"
        )
    return engine


def make_simulator(
    engine: Optional[str], machine: Machine, tracer=None, profiler=None
) -> Simulator:
    """Construct the chosen engine over ``machine`` (fresh caches required)."""
    if resolve_engine(engine) == "batch":
        return BatchSimulator(machine, tracer=tracer, profiler=profiler)
    return Simulator(machine, tracer=tracer, profiler=profiler)


class _BLine(CacheLine):
    """A cache line that knows which mirror frame it occupies.

    ``state`` stays the inherited plain attribute — protocol state
    transitions pay nothing for the mirror, because the vector path only
    serves reads and reads are state-independent.
    """

    __slots__ = ("flat",)

    def __init__(self, block: int, state: int, flat: int) -> None:
        # direct stores: this runs once per L1 fill, on the hot miss path
        self.block = block
        self.state = state
        self.flat = flat


class MirroredL1(SetAssocCache):
    """A processor cache that keeps the batch engine's tag mirror exact.

    Only ``remove`` needs overriding: every slow-path invalidation,
    inclusion eviction, owner flush, and victim swap funnels through it.
    Insertions are owned by :meth:`BatchSimulator._fill`.
    """

    __slots__ = ("_mirror_base", "_tags_flat", "_tags_mv", "_tmask_mv")

    def __init__(
        self,
        geometry: CacheGeometry,
        tags_flat: np.ndarray,
        tags_mv: "memoryview",
        tmask_mv: "memoryview",
        mirror_base: int,
    ) -> None:
        super().__init__(geometry)
        self._tags_flat = tags_flat
        # scalar stores go through memoryviews over the same buffers:
        # measurably cheaper than ndarray item access, and they yield
        # plain Python ints on loads
        self._tags_mv = tags_mv
        self._tmask_mv = tmask_mv
        self._mirror_base = mirror_base

    def remove(self, block: int):
        line = self._tag.pop(block, None)
        if line is None:
            return None
        self._sets[(block >> self._shift) & self._set_mask].remove(line)
        flat = line.flat
        self._tags_mv[flat] = -1
        self._tmask_mv[flat] = 1
        return line

    def clear(self) -> None:
        super().clear()
        base = self._mirror_base
        self._tags_flat[base : base + self.n_sets * self.assoc] = -1


class BatchSimulator(Simulator):
    """Drives one machine through one trace in vectorised batches.

    Construct over a **fresh** machine (empty caches), exactly as
    :func:`~repro.sim.runner.run_trace` does — the constructor replaces
    every node's L1s with :class:`MirroredL1` instances.  Semantics are
    bit-identical to :class:`~repro.sim.simulator.Simulator` (counters,
    final machine state, profile attribution, traced events); see the
    module docstring for the equivalence argument.
    """

    #: references classified per vector batch
    _BATCH = 1 << 14

    #: spans shorter than this are walked per-reference instead of paying
    #: numpy fixed costs on a handful of elements
    _SHORT_SPAN = 32

    def __init__(self, machine: Machine, tracer=None, profiler=None) -> None:
        geom = machine.config.cache
        n_procs = machine.config.n_procs
        self._n_sets = geom.n_sets
        self._assoc = geom.assoc
        total = n_procs * geom.n_sets * geom.assoc
        self._tags_flat = np.full(total, -1, dtype=np.int64)
        self._stamps_flat = np.zeros(total, dtype=np.int64)
        #: frames whose tag changed since the current batch was classified
        self._tmask = np.zeros(total, dtype=bool)
        self._tags_mv = memoryview(self._tags_flat)
        self._stamps_mv = memoryview(self._stamps_flat)
        self._tmask_mv = memoryview(self._tmask.view(np.uint8))
        self._ways = np.arange(geom.assoc, dtype=np.int64)
        frame = geom.n_sets * geom.assoc
        pid = 0
        for node in machine.nodes:
            for i, l1 in enumerate(node.l1s):
                if len(l1):
                    raise ConfigurationError(
                        "BatchSimulator requires a fresh machine (non-empty L1)"
                    )
                node.l1s[i] = MirroredL1(
                    geom, self._tags_flat, self._tags_mv, self._tmask_mv,
                    pid * frame,
                )
                pid += 1
        super().__init__(machine, tracer=tracer, profiler=profiler)

    # ------------------------------------------------------------------
    # per-reference path (inherited protocol code underneath)
    # ------------------------------------------------------------------

    def _slow_ref(self, now: int, pid: int, block: int, is_write: bool) -> None:
        """One reference through the authoritative per-reference path.

        Re-probes the Python tag map from scratch, so it is always
        correct to demote a reference here — including references whose
        batch classification an earlier in-batch mutation invalidated.
        """
        self.now = now
        c = self.counters
        line = self._l1s[pid]._tag.get(block)
        if line is not None:
            # any hit refreshes LRU, exactly as the interpreter's inline
            # list reordering would — here it is one stamp store
            self._stamps_mv[line.flat] = now
            if not is_write:
                c.l1_read_hits += 1
                return
            c.l1_write_hits += 1
            st = line.state
            if st == _M:
                return
            if st == _E:
                line.state = _M
                return
            self._upgrade(pid, block, line)
            return
        self._miss(pid, block, is_write)

    def _fill(self, pid: int, node, block: int, page: int, state: int) -> None:
        """Insert a fetched block, evicting the min-stamp (LRU) way.

        Mirrors :meth:`Simulator._fill` exactly: the interpreter pops
        ``lines[0]`` (list-order LRU); stamp order equals list order, so
        the min-stamp way is the same victim.
        """
        l1 = self._l1s[pid]
        set_idx = block & l1._set_mask
        lines = l1._sets[set_idx]
        assoc = self._assoc
        base = l1._mirror_base + set_idx * assoc
        stamps = self._stamps_mv
        n_res = len(lines)
        if n_res >= assoc:
            if n_res == 2:
                # unrolled two-way victim pick: min-stamp way == the way
                # the interpreter's list order would pop first
                flat = base + 1 if stamps[base + 1] < stamps[base] else base
                a = lines[0]
                if a.flat == flat:
                    evicted = a
                    del lines[0]
                else:
                    evicted = lines[1]
                    del lines[1]
            else:
                flat = base
                best = stamps[base]
                for w in range(1, assoc):
                    s = stamps[base + w]
                    if s < best:
                        best = s
                        flat = base + w
                # the victim line knows its frame; no tag-mirror load needed
                evicted = lines[0]
                if evicted.flat != flat:
                    for ln in lines:
                        if ln.flat == flat:
                            evicted = ln
                            break
                lines.remove(evicted)
            del l1._tag[evicted.block]
            # the frame's tag changes under any chunk-start classification
            self._tmask_mv[flat] = 1
        else:
            # find a free way without touching numpy: the resident lines
            # know their frames, and assoc is small
            evicted = None
            if not lines:
                flat = base
            elif len(lines) == 1:
                flat = base + 1 if lines[0].flat == base else base
            else:
                taken = {ln.flat for ln in lines}
                flat = base
                while flat in taken:
                    flat += 1
        line = _BLine(block, state, flat)
        self._tags_mv[flat] = block
        stamps[flat] = self.now
        lines.append(line)
        l1._tag[block] = line
        if evicted is not None:
            self._handle_l1_victim(node, evicted)

    def step(self, pid: int, addr: int, is_write: bool) -> None:
        """Process one shared reference (fuzz/lockstep entry point)."""
        c = self.counters
        if is_write:
            c.writes += 1
        else:
            c.reads += 1
        self._slow_ref(self.now + 1, pid, addr >> self._block_bits, bool(is_write))

    # ------------------------------------------------------------------
    # the batch loop
    # ------------------------------------------------------------------

    def run(self, trace: Trace) -> Counters:
        """Simulate the whole trace in vectorised batches."""
        if trace.placement:
            for page, home in trace.placement.items():
                self._placement.touch(page, home)
        c = self.counters
        n = len(trace)
        if n == 0:
            return c
        # ---- per-chunk scratch buffers -------------------------------
        # Trace-wide precompute arrays (one per quantity, each refs*8
        # bytes) are large enough that the allocator hands them back to
        # the OS on free, so every run pays mmap + page-fault costs.
        # Chunk-sized buffers are allocated once and reused by every
        # batch, so the derived vectors are computed in place instead.
        set_mask = self._l1s[0]._set_mask
        n_sets = self._n_sets
        assoc = self._assoc
        block_bits = self._block_bits
        pids_arr = trace.pids
        addrs_arr = trace.addrs
        writes_arr = trace.writes
        pmax = int(pids_arr.max())
        writes_total = int(np.count_nonzero(writes_arr))
        c.reads += n - writes_total
        c.writes += writes_total
        now0 = self.now
        # chained-reuse keys: (block, pid) packed into one int64
        pshift = pmax.bit_length()
        chunk = self._BATCH
        bn = min(n, chunk)
        blkbuf = np.empty(bn, dtype=np.int64)
        basebuf = np.empty(bn, dtype=np.int64)
        nowsbuf = np.empty(bn, dtype=np.int64)
        iota = np.arange(1, bn + 1, dtype=np.int64)
        pmbuf = np.empty(bn, dtype=np.int64) if pmax else None
        keybuf = np.empty(bn, dtype=np.int64) if pmax else None
        wbbuf = np.empty(bn, dtype=bool) if writes_total else None
        zeros_list = None
        if not (writes_total and pmax):
            # shared all-zeros list for wl (read-only trace) / pl (single pid)
            zeros_list = [0] * bn

        ways = self._ways
        tags = self._tags_flat
        stamps = self._stamps_flat
        tmask = self._tmask
        slow = self._slow_ref
        two_way = assoc == 2
        SHORT = self._SHORT_SPAN

        for s in range(0, n, chunk):
            e = min(s + chunk, n)
            m = e - s
            blk = blkbuf[:m]
            np.right_shift(addrs_arr[s:e], block_bits, out=blk)
            base = basebuf[:m]
            np.bitwise_and(blk, set_mask, out=base)
            if pmax:
                pm = pmbuf[:m]
                np.multiply(pids_arr[s:e], n_sets, out=pm)
                base += pm
            base *= assoc
            nows = nowsbuf[:m]
            np.add(iota[:m], now0 + s, out=nows)
            if writes_total:
                wb = wbbuf[:m]
                np.not_equal(writes_arr[s:e], 0, out=wb)
                chunk_writes = int(np.count_nonzero(wb))
            else:
                wb = None
                chunk_writes = 0
            tmask[:] = False

            # classify: fast == read hit against the mirror as it stands;
            # writes and misses are per-reference work
            if two_way:
                h1 = tags[base + 1] == blk
                fast = h1 | (tags[base] == blk)
                flat = base + h1
            else:
                hitm = tags[base[:, None] + ways] == blk[:, None]
                fast = hitm.any(axis=1)
                flat = base + hitm.argmax(axis=1)
            if chunk_writes:
                fast &= ~wb

            if fast.all():
                # pure fast batch: one fancy store commits every LRU
                # touch (duplicate frames keep the last — latest — stamp)
                stamps[flat] = nows
                c.l1_read_hits += m
                continue
            slow_pos = np.flatnonzero(~fast)

            # chained-reuse promotion: a read whose (pid, block) occurred
            # earlier in the chunk is resident by the time it executes
            if pmax:
                key = keybuf[:m]
                np.left_shift(blk, pshift, out=key)
                np.bitwise_or(key, pids_arr[s:e], out=key)
            else:
                key = blk
            order = np.argsort(key, kind="stable")
            sk = key[order]
            prov = np.empty(m, dtype=bool)
            prov[order[0]] = False
            prov[order[1:]] = sk[1:] == sk[:-1]
            prov &= ~fast
            if chunk_writes:
                prov &= ~wb
            if prov.any():
                fast |= prov
                slow_pos = np.flatnonzero(~fast)
            pcum = np.zeros(m + 1, dtype=np.int64)
            np.cumsum(prov, out=pcum[1:])

            t = now0 + s
            pl = pids_arr[s:e].tolist() if pmax else zeros_list
            bl = blk.tolist()
            wl = wb.tolist() if writes_total else zeros_list
            if slow_pos.size * 2 >= m:
                # mostly-slow batch: the per-reference path wins outright
                for j in range(m):
                    slow(t + j + 1, pl[j], bl[j], wl[j])
                continue

            def commit(fl: np.ndarray, p: int, q: int) -> None:
                # spans hold reads only — writes never classify fast
                stamps[fl] = nows[p:q]
                c.l1_read_hits += q - p

            def run_span(p: int, q: int) -> None:
                """Commit fast reads [p, q), demoting any a mutation hit."""
                while p < q:
                    if q - p < SHORT:
                        # short span: numpy fixed costs exceed the walk
                        for j in range(p, q):
                            slow(t + j + 1, pl[j], bl[j], wl[j])
                        return
                    if pcum[q] == pcum[p]:  # no provisional reads inside
                        if not tmask[flat[p:q]].any():
                            commit(flat[p:q], p, q)
                            return
                    # a frame this span depends on changed under it, or a
                    # provisional read needs its line looked up: re-classify
                    # the span against the live mirror
                    if two_way:
                        h2 = tags[base[p:q] + 1] == blk[p:q]
                        fast2 = h2 | (tags[base[p:q]] == blk[p:q])
                        flat2 = base[p:q] + h2
                    else:
                        hitm2 = tags[base[p:q, None] + ways] == blk[p:q, None]
                        fast2 = hitm2.any(axis=1)
                        flat2 = base[p:q] + hitm2.argmax(axis=1)
                    if fast2.all():
                        commit(flat2, p, q)
                        return
                    d = p + int(np.argmin(fast2))
                    if d > p:
                        commit(flat2[: d - p], p, d)
                    slow(t + d + 1, pl[d], bl[d], wl[d])
                    p = d + 1

            p = 0
            for q in slow_pos.tolist():
                if p < q:
                    run_span(p, q)
                slow(t + q + 1, pl[q], bl[q], wl[q])
                p = q + 1
            if p < m:
                run_span(p, m)

        self.now = now0 + n
        self.sync_lru_order()
        return c

    def sync_lru_order(self) -> None:
        """Re-sort every L1 set's line list into LRU (stamp) order.

        Stamps within a set are unique (one touch per set per reference),
        so the sort reproduces the interpreter's list order exactly —
        required for final-state snapshots (``machine_snapshot``,
        ``set_contents``) to compare equal.  Called automatically at the
        end of :meth:`run`; call it manually after a ``step`` stream
        before snapshotting.
        """
        stamps = self._stamps_mv
        for l1 in self._l1s:
            for lines in l1._sets:
                if len(lines) > 1:
                    lines.sort(key=lambda ln: stamps[ln.flat])
