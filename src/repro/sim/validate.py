"""Machine-wide coherence validation.

:func:`check_machine` sweeps a machine's entire state and verifies every
structural invariant of the protocol.  It is deliberately exhaustive and
slow — it exists for tests, debugging sessions, and the hypothesis
property suite, not for the simulation hot path (the simulator's own
inline :class:`~repro.errors.ProtocolError` checks guard that).

Invariants checked
------------------
1. **Single writer**: at most one dirty copy (L1 M/O, NC DIRTY, or PC
   DIRTY block) of any block machine-wide.
2. **Owner substance**: if the directory records a dirty owner, that
   cluster really holds a dirty copy; conversely a dirty copy of a
   *remote* block implies directory ownership (home-cluster M via silent
   E->M is the allowed exception).
3. **Presence over-approximation**: any node holding a valid copy of a
   remote block has its presence bit set (non-notifying protocols may
   over-report, never under-report).
4. **Exclusivity of E/M**: an E or M copy is the only valid copy
   machine-wide (O is shared-dirty and exempt).
5. **NC discipline**: NCs hold only remote blocks; a victim NC never
   holds a block an L1 in the same node holds *clean* is allowed (the
   pollution case) but duplicate dirty is not (covered by 1).
6. **Inclusion**: under FULL inclusion every remote block in an L1 has an
   NC frame; under DIRTY_ONLY every L1 dirty remote block has one.
7. **PC discipline**: page caches hold only remote pages; capacity is
   respected.
"""

from __future__ import annotations

from typing import List

from ..coherence.states import MESIR, NCState, PCBlockState
from ..rdc.base import InclusionPolicy
from ..system.machine import Machine

_DIRTY_L1 = (int(MESIR.M), int(MESIR.O))


class InvariantViolation(AssertionError):
    """A machine-state invariant does not hold."""


def _fail(msg: str) -> None:
    raise InvariantViolation(msg)


def check_machine(machine: Machine) -> None:
    """Verify every structural invariant; raises InvariantViolation."""
    cfg = machine.config
    bpp = cfg.blocks_per_page

    # gather every block any structure holds
    blocks = set()
    for node in machine.nodes:
        for l1 in node.l1s:
            blocks.update(l1.blocks())
        blocks.update(node.nc.resident_blocks())
        if node.pc is not None:
            if len(node.pc) > node.pc.capacity:
                _fail(f"node {node.node_id} PC over capacity")
            for frame in node.pc.frames():
                for off, st in enumerate(frame.states):
                    if st != int(PCBlockState.INVALID):
                        blocks.add(frame.page * bpp + off)

    blocks.update(machine.directory.owned_blocks())

    for block in blocks:
        _check_block(machine, block)

    _check_structures(machine)


def _check_block(machine: Machine, block: int) -> None:
    cfg = machine.config
    bpp = cfg.blocks_per_page
    page, offset = divmod(block, bpp)
    home = machine.placement.home_of(page)

    dirty_nodes: List[int] = []  # node id per dirty copy found
    exclusive_nodes: List[int] = []  # node id per E/M copy found
    valid_nodes = set()

    for node in machine.nodes:
        nid = node.node_id
        for l1 in node.l1s:
            ln = l1.peek(block)
            if ln is None:
                continue
            valid_nodes.add(nid)
            if ln.state in _DIRTY_L1:
                dirty_nodes.append(nid)
            if ln.state in (int(MESIR.M), int(MESIR.E)):
                exclusive_nodes.append(nid)
            if ln.state == int(MESIR.E) and home != nid:
                _fail(f"E state on remote block {block:#x} in node {nid}")
        ncst = node.nc.probe(block)
        if ncst is not None:
            valid_nodes.add(nid)
            if home == nid:
                _fail(f"node {nid} NC holds its own local block {block:#x}")
            if ncst == int(NCState.DIRTY):
                dirty_nodes.append(nid)
        if node.pc is not None:
            st = node.pc.block_state(page, offset)
            if st != int(PCBlockState.INVALID):
                valid_nodes.add(nid)
                if home == nid:
                    _fail(f"node {nid} PC holds its own local page {page:#x}")
                if st == int(PCBlockState.DIRTY):
                    dirty_nodes.append(nid)

    # 1. single writer
    if len(dirty_nodes) > 1:
        _fail(f"block {block:#x} dirty in nodes {dirty_nodes}")

    # 4. E/M exclusivity: only the holder's own node may have other
    # (stale NC frame) copies; cross-node duplication is a violation
    if exclusive_nodes and valid_nodes - set(exclusive_nodes):
        _fail(
            f"block {block:#x} is E/M in node {exclusive_nodes} but also "
            f"valid in nodes {sorted(valid_nodes - set(exclusive_nodes))}"
        )

    # 2. owner substance
    owner = machine.directory.owner(block)
    if owner is not None:
        if owner not in dirty_nodes:
            _fail(
                f"directory says cluster {owner} owns {block:#x} dirty, "
                f"but dirty copies are in nodes {dirty_nodes}"
            )
    else:
        for nid in dirty_nodes:
            if home != nid:
                _fail(
                    f"block {block:#x} dirty in remote node {nid} without "
                    "directory ownership"
                )

    # 3. presence over-approximation
    mask = machine.directory.presence_mask(block)
    for nid in valid_nodes:
        if nid != home and not (mask >> nid) & 1:
            _fail(
                f"node {nid} holds remote block {block:#x} without a "
                "presence bit"
            )


def _check_structures(machine: Machine) -> None:
    cfg = machine.config
    for node in machine.nodes:
        nc = node.nc
        if nc.inclusion is InclusionPolicy.FULL:
            for l1 in node.l1s:
                for ln in l1.lines():
                    page = ln.block // cfg.blocks_per_page
                    if machine.placement.home_of(page) == node.node_id:
                        continue
                    if nc.probe(ln.block) is None:
                        _fail(
                            f"full inclusion violated: node {node.node_id} "
                            f"caches {ln.block:#x} without an NC frame"
                        )
        elif nc.inclusion is InclusionPolicy.DIRTY_ONLY:
            for l1 in node.l1s:
                for ln in l1.lines():
                    if ln.state not in _DIRTY_L1:
                        continue
                    page = ln.block // cfg.blocks_per_page
                    if machine.placement.home_of(page) == node.node_id:
                        continue
                    if node.pc is not None and page in node.pc:
                        continue  # PC-resident pages absorb locally instead
                    if nc.probe(ln.block) is None:
                        _fail(
                            f"dirty inclusion violated: node {node.node_id} "
                            f"holds {ln.block:#x} dirty without an NC frame"
                        )
