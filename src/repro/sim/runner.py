"""High-level entry points: ``simulate`` one (system, benchmark) pair, or
``sweep`` a whole matrix.

Traces are cached per (benchmark, refs, seed, scale, n_procs) within the
process, since every figure sweeps many systems over identical traces —
exactly as the paper's trace-driven methodology does.  The in-process
cache is LRU-bounded (:data:`TRACE_CACHE_MAX` entries) so long sweeps over
many trace shapes cannot grow memory without limit; an optional on-disk
cache (see :mod:`repro.trace.io`) shares generated traces across
processes, which the parallel sweep engine relies on.
"""

from __future__ import annotations

import inspect
import time
from collections import OrderedDict
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..obs.metrics import merge_snapshots, run_metrics
from ..obs.profile import StallProfiler, profiling_enabled
from ..params import SystemConfig
from ..system.builder import build_machine, system_config
from ..trace.record import Trace, TraceSpec
from ..trace.synthetic import generate_trace
from .batch import make_simulator
from .results import SimulationResult

#: default dataset scale: 1/8 of the paper's Table 3 footprints, matched to
#: the default trace length (see DESIGN.md's scaling argument)
DEFAULT_SCALE = 0.125
DEFAULT_REFS = 400_000

#: in-process trace cache bound; oldest-used entries are dropped beyond it
TRACE_CACHE_MAX = 16

_trace_cache: "OrderedDict[Tuple[str, int, int, float, int], Trace]" = OrderedDict()


def get_trace(
    benchmark: str,
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    n_procs: int = 32,
    disk_cache: bool = False,
) -> Trace:
    """Generate (or fetch from cache) one benchmark trace.

    With ``disk_cache=True`` the content-addressed on-disk cache is
    consulted before generating, and a freshly generated trace is stored
    there — the mechanism parallel sweep workers use to share traces.
    """
    key = (benchmark.lower(), refs, seed, scale, n_procs)
    trace = _trace_cache.get(key)
    if trace is None:
        spec = TraceSpec(
            benchmark=benchmark.lower(),
            refs=refs,
            seed=seed,
            scale=scale,
            n_procs=n_procs,
        )
        if disk_cache:
            from ..trace import io as trace_io

            trace = trace_io.load_cached_trace(spec)
            if trace is None:
                trace = generate_trace(spec)
                try:
                    trace_io.store_cached_trace(spec, trace)
                except OSError as exc:
                    # a full disk (or an injected I/O fault) must not sink
                    # the run: continue with the in-memory trace, uncached
                    trace_io.note_recovery(
                        "trace_cache_skipped", f"{benchmark}: {exc}"
                    )
        else:
            trace = generate_trace(spec)
        _trace_cache[key] = trace
        if len(_trace_cache) > TRACE_CACHE_MAX:
            _trace_cache.popitem(last=False)
    else:
        _trace_cache.move_to_end(key)
    return trace


def clear_trace_cache() -> None:
    _trace_cache.clear()


def run_trace(
    config: SystemConfig,
    trace: Trace,
    system_name: str = "",
    tracer=None,
    profiler=None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Run one prepared trace through one machine configuration.

    ``tracer`` — an optional :class:`repro.obs.events.EventTracer` —
    enables structured event emission for this run (see ``repro.obs``).
    ``profiler`` — an optional :class:`repro.obs.profile.StallProfiler` —
    enables per-reference stall attribution; with ``$REPRO_PROFILE`` set
    (how sweep worker processes inherit ``--profile``) one is constructed
    automatically.  A profiled run's snapshot carries the attribution
    under ``profile.*``/``hist.stall/*``/``series.profile/*`` keys.
    Every result carries a deterministic metrics snapshot either way.
    ``engine`` selects the execution backend (``"interp"`` or
    ``"batch"``); ``None`` defers to ``$REPRO_ENGINE``, then the
    interpreter.  Both engines produce bit-identical results.
    """
    if profiler is None and profiling_enabled():
        profiler = StallProfiler(config)
    machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
    sim = make_simulator(engine, machine, tracer=tracer, profiler=profiler)
    start = time.perf_counter()
    counters = sim.run(trace)
    elapsed = time.perf_counter() - start
    counters.check()
    metrics = run_metrics(counters, machine, tracer=tracer)
    name = system_name or config.name
    if profiler is not None:
        profiler.finish(sim.now)
        metrics = merge_snapshots(metrics, profiler.snapshot(name, trace.name))
    return SimulationResult(
        system=name,
        benchmark=trace.name,
        config=config,
        counters=counters,
        refs=len(trace),
        seed=int(trace.meta.get("seed", 0)),
        elapsed_s=elapsed,
        metrics=metrics,
    )


def simulate(
    system: str,
    benchmark: str,
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    config: Optional[SystemConfig] = None,
    tracer=None,
    profile: bool = False,
    engine: Optional[str] = None,
    **config_overrides: object,
) -> SimulationResult:
    """Simulate one paper system on one benchmark.

    >>> result = simulate("vbp5", "radix", refs=100_000)
    >>> result.miss_ratio  # doctest: +SKIP

    ``config`` supplies a fully-custom :class:`SystemConfig`; otherwise the
    named system is built with optional keyword overrides (``cache_assoc``,
    ``nc_size``, ``threshold_policy``, ``initial_threshold``, ...).
    ``tracer`` attaches an :class:`repro.obs.events.EventTracer` to the run;
    ``profile=True`` attaches a :class:`repro.obs.profile.StallProfiler`.
    ``engine="batch"`` runs the vectorised backend (see
    :mod:`repro.sim.batch`); results are bit-identical either way.
    """
    trace = get_trace(benchmark, refs=refs, seed=seed, scale=scale)
    if config is None:
        config = system_config(system, **config_overrides)  # type: ignore[arg-type]
    profiler = StallProfiler(config) if profile else None
    return run_trace(
        config, trace, system_name=system, tracer=tracer, profiler=profiler,
        engine=engine,
    )


# ---------------------------------------------------------------------------
# matrix sweeps
# ---------------------------------------------------------------------------

#: keyword overrides system_config accepts; computed once for validation
_VALID_OVERRIDES = frozenset(
    name
    for name, p in inspect.signature(system_config).parameters.items()
    if p.kind is inspect.Parameter.KEYWORD_ONLY
)


def _check_override_names(overrides: Mapping[str, object], context: str) -> None:
    for key in overrides:
        if key not in _VALID_OVERRIDES:
            raise ConfigurationError(
                f"unknown config override {key!r} {context}; valid overrides: "
                f"{', '.join(sorted(_VALID_OVERRIDES))}"
            )


def resolve_sweep_configs(
    systems: Iterable[str],
    config_overrides: Optional[Mapping[str, Mapping[str, object]]] = None,
    **shared_overrides: object,
) -> "OrderedDict[str, SystemConfig]":
    """Build one :class:`SystemConfig` per system, validating eagerly.

    ``shared_overrides`` apply to every system; ``config_overrides`` maps a
    system name to overrides for **that system only** (layered over the
    shared ones).  Unknown override names and overrides for systems not in
    the sweep raise :class:`ConfigurationError` up front, naming the bad
    key — not after half the matrix has already been simulated.
    """
    systems = list(systems)
    _check_override_names(shared_overrides, "(shared)")
    per_system: Dict[str, Mapping[str, object]] = dict(config_overrides or {})
    for name, overrides in per_system.items():
        if name not in systems:
            raise ConfigurationError(
                f"config_overrides given for system {name!r}, which is not in "
                f"the sweep ({', '.join(systems)})"
            )
        _check_override_names(overrides, f"for system {name!r}")
    configs: "OrderedDict[str, SystemConfig]" = OrderedDict()
    for system in systems:
        merged = dict(shared_overrides)
        merged.update(per_system.get(system, {}))
        configs[system] = system_config(system, **merged)  # type: ignore[arg-type]
    return configs


def sweep(
    systems: Iterable[str],
    benchmarks: Iterable[str],
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    jobs: int = 1,
    config_overrides: Optional[Mapping[str, Mapping[str, object]]] = None,
    run_dir: Optional[str] = None,
    max_retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    recovery=None,
    engine: Optional[str] = None,
    result_store=None,
    **shared_overrides: object,
) -> Dict[Tuple[str, str], SimulationResult]:
    """Run a systems x benchmarks matrix; keys are ``(system, benchmark)``.

    ``jobs > 1`` fans the cells out over a process pool (see
    :mod:`repro.sim.parallel`); results are merged deterministically and are
    bit-identical to a serial run.  ``config_overrides`` scopes overrides to
    a single system (``{"vxp5": {"initial_threshold": 8}}``) while plain
    keyword overrides apply to the whole matrix.

    Resilience knobs (serial and parallel alike; see ``docs/ROBUSTNESS.md``):
    ``run_dir`` journals completed cells so an interrupted sweep resumes
    bit-identically; ``max_retries``/``cell_timeout`` bound per-cell fault
    handling (defaults from ``REPRO_MAX_RETRIES``/``REPRO_CELL_TIMEOUT``);
    ``recovery`` — a :class:`repro.sim.parallel.RecoveryLog` — collects
    every recovery action the sweep took.  ``engine`` selects the
    execution backend for every cell (``None`` defers to
    ``$REPRO_ENGINE``, then the interpreter).  ``result_store`` — a
    :class:`repro.service.store.ResultStore` — memoises completed cells
    by content key, so repeating a sweep serves them without simulating
    (see ``docs/SERVICE.md``).
    """
    systems = list(systems)
    benchmarks = list(benchmarks)
    configs = resolve_sweep_configs(
        systems, config_overrides=config_overrides, **shared_overrides
    )
    from .parallel import run_parallel_sweep

    return run_parallel_sweep(
        configs, benchmarks, refs=refs, seed=seed, scale=scale, jobs=jobs,
        run_dir=run_dir, max_retries=max_retries, cell_timeout=cell_timeout,
        recovery=recovery, engine=engine, result_store=result_store,
    )
