"""High-level entry points: ``simulate`` one (system, benchmark) pair, or
``sweep`` a whole matrix.

Traces are cached per (benchmark, refs, seed, scale, n_procs) within the
process, since every figure sweeps many systems over identical traces —
exactly as the paper's trace-driven methodology does.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Tuple

from ..params import SystemConfig
from ..system.builder import build_machine, system_config
from ..system.placement import FirstTouchPlacement
from ..trace.record import Trace, TraceSpec
from ..trace.synthetic import generate_trace
from .results import SimulationResult
from .simulator import Simulator

#: default dataset scale: 1/8 of the paper's Table 3 footprints, matched to
#: the default trace length (see DESIGN.md's scaling argument)
DEFAULT_SCALE = 0.125
DEFAULT_REFS = 400_000

_trace_cache: Dict[Tuple[str, int, int, float, int], Trace] = {}


def get_trace(
    benchmark: str,
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    n_procs: int = 32,
) -> Trace:
    """Generate (or fetch from cache) one benchmark trace."""
    key = (benchmark.lower(), refs, seed, scale, n_procs)
    trace = _trace_cache.get(key)
    if trace is None:
        spec = TraceSpec(
            benchmark=benchmark.lower(),
            refs=refs,
            seed=seed,
            scale=scale,
            n_procs=n_procs,
        )
        trace = generate_trace(spec)
        _trace_cache[key] = trace
    return trace


def clear_trace_cache() -> None:
    _trace_cache.clear()


def run_trace(config: SystemConfig, trace: Trace, system_name: str = "") -> SimulationResult:
    """Run one prepared trace through one machine configuration."""
    machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
    sim = Simulator(machine)
    start = time.perf_counter()
    counters = sim.run(trace)
    elapsed = time.perf_counter() - start
    counters.check()
    return SimulationResult(
        system=system_name or config.name,
        benchmark=trace.name,
        config=config,
        counters=counters,
        refs=len(trace),
        seed=int(trace.meta.get("seed", 0)),
        elapsed_s=elapsed,
    )


def simulate(
    system: str,
    benchmark: str,
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    config: Optional[SystemConfig] = None,
    **config_overrides: object,
) -> SimulationResult:
    """Simulate one paper system on one benchmark.

    >>> result = simulate("vbp5", "radix", refs=100_000)
    >>> result.miss_ratio  # doctest: +SKIP

    ``config`` supplies a fully-custom :class:`SystemConfig`; otherwise the
    named system is built with optional keyword overrides (``cache_assoc``,
    ``nc_size``, ``threshold_policy``, ``initial_threshold``, ...).
    """
    trace = get_trace(benchmark, refs=refs, seed=seed, scale=scale)
    if config is None:
        config = system_config(system, **config_overrides)  # type: ignore[arg-type]
    return run_trace(config, trace, system_name=system)


def sweep(
    systems: Iterable[str],
    benchmarks: Iterable[str],
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    **config_overrides: object,
) -> Dict[Tuple[str, str], SimulationResult]:
    """Run a systems x benchmarks matrix; keys are (system, benchmark)."""
    out: Dict[Tuple[str, str], SimulationResult] = {}
    for bench in benchmarks:
        for system in systems:
            out[(system, bench)] = simulate(
                system, bench, refs=refs, seed=seed, scale=scale, **config_overrides
            )
    return out
