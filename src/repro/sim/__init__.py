"""Trace-driven simulation: the protocol engine, Eq. 1, and result types."""

from .simulator import Simulator
from .latency import remote_read_stall, traffic_blocks
from .results import SimulationResult
from .runner import simulate, sweep

__all__ = [
    "Simulator",
    "remote_read_stall",
    "traffic_blocks",
    "SimulationResult",
    "simulate",
    "sweep",
]
