"""Trace-driven simulation: the protocol engine, Eq. 1, and result types."""

from .simulator import Simulator
from .latency import remote_read_stall, traffic_blocks
from .checkpoint import SweepJournal
from .parallel import (
    RecoveryLog,
    SweepPolicy,
    default_jobs,
    resolve_policy,
    run_parallel_sweep,
    throughput_report,
)
from .results import SimulationResult
from .runner import resolve_sweep_configs, simulate, sweep

__all__ = [
    "Simulator",
    "remote_read_stall",
    "traffic_blocks",
    "SimulationResult",
    "simulate",
    "sweep",
    "resolve_sweep_configs",
    "run_parallel_sweep",
    "default_jobs",
    "throughput_report",
    "SweepJournal",
    "SweepPolicy",
    "RecoveryLog",
    "resolve_policy",
]
