"""Sweep journal: crash-safe checkpoint/resume for sweep matrices.

The paper's figures are hours-long systems x benchmarks sweeps; a worker
crash or a killed parent must not throw away a 400k-reference run.  A
:class:`SweepJournal` is an on-disk run directory holding

* ``run.json`` — the sweep's identifying parameters (refs, seed, scale,
  systems, benchmarks), written atomically when the run starts.  Resuming
  with different parameters raises
  :class:`~repro.errors.CheckpointError` instead of silently mixing runs.
* ``journal.jsonl`` — one JSON record per completed ``(system,
  benchmark)`` cell: the full counter tally, the metrics snapshot, and
  content digests of both the counters and the system configuration.
  Records are appended with flush + fsync, so a crash loses at most the
  line being written — and a torn final line is *tolerated* on load
  (skipped and re-simulated), never fatal.

Resume is **bit-identical** to a from-scratch run: restored cells carry
the exact counters and metrics the original run produced (verified
against their digest on load), and the sweep merges restored + fresh
cells in plan order — pinned by ``tests/sim/test_checkpoint.py``.  A
journal entry whose config digest no longer matches the resolved system
configuration (the code or overrides changed between runs) is discarded
and its cell re-simulated rather than trusted.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import IO, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..errors import CheckpointError
from ..params import SystemConfig
from ..stats import Counters
from .results import SimulationResult

JOURNAL_VERSION = 1
HEADER_NAME = "run.json"
JOURNAL_NAME = "journal.jsonl"
#: live recovery-action feed written beside the journal (one JSON object
#: per RecoveryLog action; tailed by `repro top`)
RECOVERY_NAME = "recovery.jsonl"


def read_run_header(run_dir: Union[str, Path]) -> Optional[dict]:
    """Best-effort read of a run directory's ``run.json``.

    Returns ``None`` when the header is missing or unparsable — monitors
    observing a directory mid-creation must tolerate both, never raise.
    """
    path = Path(run_dir) / HEADER_NAME
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def iter_journal_lines(path: Union[str, Path]):
    """Yield parsed records from a (possibly live) JSONL file.

    Torn or half-written lines — normal while a sweep is appending — are
    skipped, exactly like :meth:`SweepJournal.load` treats them; a missing
    file yields nothing.  Used by ``repro top`` on both ``journal.jsonl``
    and ``recovery.jsonl``.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                if isinstance(rec, dict):
                    yield rec
    except OSError:
        return


def _config_digest(config: SystemConfig) -> str:
    from ..obs.manifest import config_digest

    return config_digest(config)


def _counters_digest(counters: Counters) -> str:
    from ..obs.manifest import counters_digest

    return counters_digest(counters)


class SweepJournal:
    """One sweep's on-disk run directory (see module docstring)."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self._fh: Optional[IO[str]] = None
        #: load() statistics, surfaced by the sweep's recovery log
        self.restored = 0
        self.torn_lines = 0
        self.stale_records = 0
        #: HTTP correlation id stamped into appended rows.  Provenance
        #: only, like ``source``: deliberately NOT part of the run.json
        #: identity (a resumed run under a new request id must match),
        #: and ignored by :meth:`_restore`.
        self.request_id: Optional[str] = None

    # ---- lifecycle -------------------------------------------------------

    @classmethod
    def open(
        cls,
        run_dir: Union[str, Path],
        *,
        refs: int,
        seed: int,
        scale: float,
        systems: Sequence[str],
        benchmarks: Sequence[str],
        engine: str = "interp",
    ) -> "SweepJournal":
        """Open (creating if needed) the journal for one sweep's parameters.

        A fresh directory gets a ``run.json`` header; an existing one must
        match the requested parameters exactly, else resuming would merge
        cells from a different sweep.  The execution engine is part of the
        identity: although engines are bit-identical, a resumed run must
        report the engine that actually produced its cells.  Headers
        written before the engine field existed read as ``"interp"`` —
        the only engine that existed then.
        """
        journal = cls(run_dir)
        params = {
            "journal_version": JOURNAL_VERSION,
            "refs": int(refs),
            "seed": int(seed),
            "scale": float(scale),
            "systems": list(systems),
            "benchmarks": list(benchmarks),
            "engine": str(engine),
        }
        header_path = journal.run_dir / HEADER_NAME
        if header_path.exists():
            try:
                existing = json.loads(header_path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                raise CheckpointError(
                    f"unreadable run header {header_path}: {exc}"
                ) from exc
            existing.setdefault("engine", "interp")
            mismatched = [
                key
                for key, value in params.items()
                if existing.get(key) != value
            ]
            if mismatched:
                raise CheckpointError(
                    f"run directory {journal.run_dir} was started with different "
                    f"parameters ({', '.join(mismatched)}); use a fresh directory "
                    f"or matching --refs/--seed/--scale/--engine/systems/benchmarks"
                )
        else:
            journal.run_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix="run.", suffix=".tmp.json", dir=journal.run_dir
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(params, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp_name, header_path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        return journal

    @property
    def journal_path(self) -> Path:
        return self.run_dir / JOURNAL_NAME

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ---- reading ---------------------------------------------------------

    def load(
        self, configs: Mapping[str, SystemConfig]
    ) -> Dict[Tuple[str, str], SimulationResult]:
        """Restore every trustworthy completed cell from the journal.

        Tolerates a torn trailing line (a worker or parent killed
        mid-append) by skipping it; discards records whose counter digest
        fails or whose config digest no longer matches ``configs`` — those
        cells are simply re-simulated.  Duplicate cells keep the newest
        record.
        """
        self.restored = 0
        self.torn_lines = 0
        self.stale_records = 0
        path = self.journal_path
        if not path.exists():
            return {}
        config_digests = {
            name: _config_digest(config) for name, config in configs.items()
        }
        out: Dict[Tuple[str, str], SimulationResult] = {}
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                    result = self._restore(rec, configs, config_digests)
                except (ValueError, KeyError, TypeError):
                    self.torn_lines += 1
                    continue
                if result is None:
                    self.stale_records += 1
                    continue
                out[(result.system, result.benchmark)] = result
        self.restored = len(out)
        return out

    def _restore(
        self,
        rec: dict,
        configs: Mapping[str, SystemConfig],
        config_digests: Mapping[str, str],
    ) -> Optional[SimulationResult]:
        if rec.get("journal_version") != JOURNAL_VERSION:
            return None
        system = rec["system"]
        if system not in configs:
            return None
        if rec["config_sha"] != config_digests[system]:
            return None  # configuration changed since the cell ran
        counters = Counters(**{k: int(v) for k, v in rec["counters"].items()})
        if _counters_digest(counters) != rec["counters_sha"]:
            return None  # bit-rot or a hand-edited journal
        return SimulationResult(
            system=system,
            benchmark=rec["benchmark"],
            config=configs[system],
            counters=counters,
            refs=int(rec["refs"]),
            seed=int(rec["seed"]),
            elapsed_s=float(rec.get("elapsed_s", 0.0)),
            metrics=rec.get("metrics"),
        )

    # ---- writing ---------------------------------------------------------

    def append(
        self, result: SimulationResult, scale: float, source: str = "simulated"
    ) -> None:
        """Atomically append one completed cell.

        One JSON line, flushed and fsynced before returning: once this
        method returns, the cell survives any crash of the process.
        ``source`` records how the cell was obtained — ``"simulated"`` by
        an engine, or ``"cache"`` from the content-addressed result store
        (:mod:`repro.service.store`); it is provenance only and plays no
        part in resume validation, but ``repro top`` and the service's
        job endpoints surface it so cache hits are visible per cell.
        """
        rec = {
            "journal_version": JOURNAL_VERSION,
            "source": source,
            "system": result.system,
            "benchmark": result.benchmark,
            "refs": result.refs,
            "seed": result.seed,
            "scale": scale,
            "config_sha": _config_digest(result.config),
            "counters": result.counters.as_dict(),
            "counters_sha": _counters_digest(result.counters),
            "metrics": result.metrics,
            "elapsed_s": result.elapsed_s,
        }
        if self.request_id:
            rec["request_id"] = self.request_id
        if self._fh is None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.journal_path, "a", encoding="utf-8")
        self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
