"""Fault-tolerant parallel sweep execution over supervised worker processes.

Every figure in the paper is an embarrassingly parallel systems x
benchmarks matrix, and each cell is an independent simulation over a
deterministic trace — so the matrix fans out over processes with **no**
effect on the results: a parallel sweep is bit-identical to a serial one
(pinned by ``tests/sim/test_parallel.py``).

Mechanics:

* cells are planned benchmark-major (the serial order) and chunked so one
  worker runs all systems of one benchmark back to back, reusing its
  in-process trace cache instead of regenerating the trace per cell;
* the parent **pre-seeds the on-disk trace cache** (`repro.trace.io`)
  before forking, so workers — even under a ``spawn`` start method, which
  inherits no parent memory — load each trace once from disk rather than
  regenerating it per process;
* results come back keyed ``(system, benchmark)`` and are merged in plan
  order, so iteration order of the returned dict matches the serial path;
* anything that prevents pooling (a platform without working
  ``multiprocessing``, a sandboxed interpreter) degrades to the serial
  path rather than failing the sweep.

Resilience (see ``docs/ROBUSTNESS.md``):

* each cell gets ``max_retries`` attempts with exponential backoff; a
  transient failure (corrupt cache entry, injected fault, flaky I/O) is
  retried rather than sinking the sweep, and exhaustion raises
  :class:`~repro.errors.RetryExhaustedError` naming the exact cell;
* an optional per-cell wall-clock timeout kills the wedged worker and
  retries the cell (:class:`~repro.errors.CellTimeoutError` as the last
  error once retries run out);
* a worker that dies mid-cell (OOM-killed, segfault, injected kill) is
  detected by the supervisor; its in-flight cell is re-dispatched and the
  rest of its chunk re-queued at no attempt cost.  A cell that keeps
  dying with its workers falls back to running **serially in the parent**
  — degrade-to-serial affects only that cell, never the whole sweep;
* every recovery action is recorded in a :class:`RecoveryLog` — counted
  for ``obs.metrics``, optionally emitted as ``repro.obs`` events, and
  surfaced in the run manifest;
* with a ``run_dir``, completed cells are journalled through
  :class:`~repro.sim.checkpoint.SweepJournal` as they finish, and a
  resumed sweep skips them, re-merging bit-identically with a
  from-scratch run.
"""

from __future__ import annotations

import heapq
import os
import time
import traceback
from collections import OrderedDict, deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .. import faults
from ..errors import (
    CellTimeoutError,
    CheckpointError,
    ConfigurationError,
    JobCancelledError,
    RetryExhaustedError,
)
from ..params import SystemConfig
from ..trace import io as trace_io
from .checkpoint import SweepJournal
from .results import SimulationResult
from .runner import DEFAULT_REFS, DEFAULT_SCALE, get_trace, run_trace


class SweepCell(NamedTuple):
    """One unit of sweep work: a (system, benchmark) cell plus trace shape.

    ``engine`` names the execution backend the cell runs on; it travels
    with the cell so pool workers run exactly the engine the parent
    resolved (a worker never re-reads ``$REPRO_ENGINE``).  The trailing
    default keeps older pickled cells loadable.
    """

    system: str
    benchmark: str
    config: SystemConfig
    refs: int
    seed: int
    scale: float
    engine: str = "interp"


def default_jobs() -> int:
    """Worker count when the caller does not choose: env ``REPRO_JOBS`` or
    the machine's CPU count."""
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        return max(1, int(raw))
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# retry / timeout policy
# ---------------------------------------------------------------------------

#: env knobs for the resilience policy (CLI flags override them)
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

DEFAULT_MAX_RETRIES = 2
DEFAULT_BACKOFF_S = 0.05


class SweepPolicy(NamedTuple):
    """Per-cell fault handling knobs for one sweep."""

    max_retries: int = DEFAULT_MAX_RETRIES  #: retry attempts after the first
    cell_timeout_s: Optional[float] = None  #: wall-clock budget per cell
    backoff_s: float = DEFAULT_BACKOFF_S  #: base of the exponential backoff

    def backoff_for(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (exponential, capped at 30s)."""
        return min(30.0, self.backoff_s * (2.0**attempt)) if self.backoff_s else 0.0


def resolve_policy(
    max_retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    backoff_s: Optional[float] = None,
) -> SweepPolicy:
    """Fold explicit knobs over the environment defaults, validating."""
    if max_retries is None:
        raw = os.environ.get(MAX_RETRIES_ENV)
        max_retries = int(raw) if raw else DEFAULT_MAX_RETRIES
    if cell_timeout is None:
        raw = os.environ.get(CELL_TIMEOUT_ENV)
        cell_timeout = float(raw) if raw else None
    if backoff_s is None:
        raw = os.environ.get(BACKOFF_ENV)
        backoff_s = float(raw) if raw is not None and raw != "" else DEFAULT_BACKOFF_S
    if max_retries < 0:
        raise ConfigurationError("max_retries must be >= 0")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ConfigurationError("cell_timeout must be positive")
    if backoff_s < 0:
        raise ConfigurationError("retry backoff must be >= 0")
    return SweepPolicy(max_retries, cell_timeout, backoff_s)


class RecoveryLog:
    """Every recovery action one sweep took, counted and optionally traced.

    ``counts`` aggregates per action kind (the numbers that land in
    ``obs.metrics``-style snapshots and the run manifest); ``actions``
    keeps the ordered detail.  Attach an
    :class:`~repro.obs.events.EventTracer` to additionally emit each
    action as a structured event (kinds in
    :data:`repro.obs.events.SWEEP_EVENT_KINDS`); attach a JSONL sink
    (:meth:`attach_jsonl`) to additionally stream each action to disk as
    it happens — the feed ``repro top`` tails for a running sweep's
    retry/fault column.  Sweeps given a ``run_dir`` get the sink
    automatically (``recovery.jsonl`` beside the journal).
    """

    def __init__(self, tracer=None) -> None:
        self.counts: Dict[str, int] = {}
        self.actions: List[Dict[str, object]] = []
        self.tracer = tracer
        self._sink = None
        #: HTTP correlation id stamped into every action (provenance only)
        self.request_id: Optional[str] = None

    def attach_jsonl(self, path: Union[str, "os.PathLike[str]"]) -> None:
        """Stream every future action to ``path``, one JSON line each.

        Lines are flushed per action (a monitor sees them promptly); a
        failure to open or write the sink never sinks the sweep — the log
        silently drops the sink and keeps counting in memory.
        """
        try:
            self._sink = open(path, "a", encoding="utf-8")
        except OSError:
            self._sink = None

    def close(self) -> None:
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:
                pass
            self._sink = None

    def note(
        self, kind: str, system: str = "", benchmark: str = "", detail: str = ""
    ) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        action = {
            "kind": kind, "system": system, "benchmark": benchmark, "detail": detail
        }
        if self.request_id:
            action["request_id"] = self.request_id
        self.actions.append(action)
        if self._sink is not None:
            import json as _json

            try:
                self._sink.write(_json.dumps(action, sort_keys=True) + "\n")
                self._sink.flush()
            except (OSError, ValueError):
                self._sink = None  # a broken sink must not sink the sweep
        if self.tracer is not None:
            where = f"{system}/{benchmark}: " if system or benchmark else ""
            self.tracer.emit(kind, now=len(self.actions), detail=where + detail)

    def __len__(self) -> int:
        return len(self.actions)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The counts as an ``obs.metrics``-style snapshot (``sweep.`` keys)."""
        return {
            "counters": {f"sweep.{k}": self.counts[k] for k in sorted(self.counts)},
            "gauges": {},
            "histograms": {},
        }

    def summary(self) -> Dict[str, object]:
        """The manifest payload: counts plus the ordered action list."""
        return {
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
            "actions": list(self.actions),
        }


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------


def plan_cells(
    configs: Mapping[str, SystemConfig],
    benchmarks: Sequence[str],
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    engine: str = "interp",
) -> List[SweepCell]:
    """The sweep's work list, benchmark-major (identical to serial order)."""
    return [
        SweepCell(system, bench, config, refs, seed, scale, engine)
        for bench in benchmarks
        for system, config in configs.items()
    ]


def chunk_cells(cells: Sequence[SweepCell], jobs: int) -> List[List[SweepCell]]:
    """Group cells into per-benchmark chunks, splitting only when a single
    benchmark has more cells than would keep ``jobs`` workers busy.

    Keeping one benchmark's cells together lets a worker generate (or load)
    its trace once and reuse it for every system.
    """
    by_bench: "Dict[str, List[SweepCell]]" = {}
    order: List[str] = []
    for cell in cells:
        if cell.benchmark not in by_bench:
            by_bench[cell.benchmark] = []
            order.append(cell.benchmark)
        by_bench[cell.benchmark].append(cell)

    chunks: List[List[SweepCell]] = []
    if len(order) >= jobs:
        chunks = [by_bench[b] for b in order]
    else:
        # fewer benchmarks than workers: split each benchmark's cells so
        # every worker still gets something to do
        per = max(1, (len(cells) + jobs - 1) // jobs)
        for bench in order:
            group = by_bench[bench]
            for i in range(0, len(group), per):
                chunks.append(group[i : i + per])
    return chunks


# ---------------------------------------------------------------------------
# running one cell (shared by workers, the serial path, and serial degrade)
# ---------------------------------------------------------------------------


def _attempt_cell(cell: SweepCell, disk_cache: bool, attempt: int) -> SimulationResult:
    """One attempt at one cell, with the fault-injection sites armed."""
    plan = faults.active_plan()
    if plan is not None:
        context = faults.cell_context(cell.system, cell.benchmark, cell.seed)
        plan.maybe_kill(context, attempt)
        plan.maybe_slow(context, attempt)
        plan.maybe_fail_cell(context, attempt)
    trace = get_trace(
        cell.benchmark,
        refs=cell.refs,
        seed=cell.seed,
        scale=cell.scale,
        disk_cache=disk_cache,
    )
    return run_trace(
        cell.config, trace, system_name=cell.system, engine=cell.engine
    )


#: failures that retrying cannot fix (configuration is validated eagerly,
#: so these indicate caller error, not flakiness)
_NONRETRYABLE_TYPES = frozenset(
    {
        "ConfigurationError",
        "UnknownSystemError",
        "UnknownBenchmarkError",
        "CheckpointError",
        "KeyboardInterrupt",
        "SystemExit",
    }
)


def _run_cell_resilient(
    cell: SweepCell,
    policy: SweepPolicy,
    recovery: RecoveryLog,
    disk_cache: bool,
) -> SimulationResult:
    """Run one cell in this process, retrying transient failures."""
    last: BaseException = RuntimeError("cell never attempted")
    for attempt in range(policy.max_retries + 1):
        try:
            result = _attempt_cell(cell, disk_cache, attempt)
            if attempt:
                recovery.note(
                    "cell_recovered", cell.system, cell.benchmark,
                    f"succeeded on attempt {attempt + 1}",
                )
            return result
        except (ConfigurationError, CheckpointError, KeyboardInterrupt):
            raise
        except Exception as exc:
            last = exc
            if attempt < policy.max_retries:
                recovery.note(
                    "cell_retry", cell.system, cell.benchmark,
                    f"attempt {attempt + 1} failed: {exc!r}",
                )
                delay = policy.backoff_for(attempt)
                if delay:
                    time.sleep(delay)
    raise RetryExhaustedError(
        cell.system, cell.benchmark, cell.seed, policy.max_retries + 1, repr(last)
    )


def _note_simulated(
    metrics, spans, cell: SweepCell, t0_unix: float, dur_s: float,
    proc: str = "sweep",
) -> None:
    """Per-cell telemetry (counter + wall-clock histogram + span).

    All parent-side service-layer accounting — nothing here touches the
    simulator or its counters, so results stay bit-identical with
    telemetry on or off.
    """
    if metrics is not None:
        metrics.inc("repro_sweep_cells_total", labels={"outcome": "simulated"})
        metrics.observe("repro_sweep_cell_seconds", dur_s)
    if spans is not None:
        spans.add(
            "cell simulate", t0_unix, dur_s, proc=proc,
            system=cell.system, benchmark=cell.benchmark,
        )


def _run_cells_serial(
    cells: Iterable[SweepCell],
    policy: SweepPolicy,
    recovery: RecoveryLog,
    journal: Optional[SweepJournal],
    disk_cache: bool,
    should_abort: Optional[Callable[[], bool]] = None,
    metrics=None,
    spans=None,
) -> Dict[Tuple[str, str], SimulationResult]:
    out: Dict[Tuple[str, str], SimulationResult] = {}
    previous_hook = trace_io.set_recovery_hook(
        lambda kind, detail: recovery.note(kind, detail=detail)
    )
    try:
        for cell in cells:
            if should_abort is not None and should_abort():
                raise JobCancelledError(
                    f"sweep aborted before cell {cell.system}/{cell.benchmark}"
                )
            t0 = time.time()
            result = _run_cell_resilient(cell, policy, recovery, disk_cache)
            _note_simulated(metrics, spans, cell, t0, time.time() - t0)
            out[(cell.system, cell.benchmark)] = result
            if journal is not None:
                journal.append(result, cell.scale)
    finally:
        trace_io.set_recovery_hook(previous_hook)
    return out


# ---------------------------------------------------------------------------
# the supervised worker pool
# ---------------------------------------------------------------------------

#: how often the supervisor wakes to check liveness/deadlines/backoff
_POLL_S = 0.05


def _service_worker(worker_id: int, task_q, result_q) -> None:
    """Worker loop: take a task (a list of cells), report per-cell results.

    Runs until it receives the ``None`` sentinel.  Every cell is bracketed
    by a ``start`` message (so the parent can enforce wall-clock deadlines
    and attribute losses) and an ``ok``/``err`` message; a task ends with
    ``idle``.  Trace-cache recovery actions are forwarded as ``note``s.
    """
    faults.mark_worker_process()
    trace_io.set_recovery_hook(
        lambda kind, detail: result_q.put(("note", worker_id, kind, detail))
    )
    while True:
        task = task_q.get()
        if task is None:
            return
        items = task  # list of (cell_index, SweepCell, attempt)
        for idx, cell, attempt in items:
            result_q.put(("start", worker_id, idx))
            try:
                t0 = time.time()
                result = _attempt_cell(cell, disk_cache=True, attempt=attempt)
                # span payload travels BEFORE the result: the supervisor's
                # message loop exits once every cell is accounted for, and
                # queue order per worker guarantees the span is drained
                # first.  Wall-clock measured in the worker process — the
                # cross-process leg of the job's span tree.
                result_q.put((
                    "span", worker_id, idx,
                    {
                        "name": "cell simulate",
                        "t0_unix": t0,
                        "dur_s": time.time() - t0,
                        "proc": f"worker-{worker_id}",
                        "args": {
                            "system": cell.system,
                            "benchmark": cell.benchmark,
                            "attempt": attempt,
                            "os_pid": os.getpid(),
                        },
                    },
                ))
                result_q.put(("ok", worker_id, idx, result))
            except Exception as exc:
                info = {
                    "type": type(exc).__name__,
                    "msg": str(exc),
                    "traceback": traceback.format_exc(limit=8),
                }
                result_q.put(("err", worker_id, idx, info))
        result_q.put(("idle", worker_id))


class _WorkerHandle:
    """Parent-side bookkeeping for one supervised worker process."""

    __slots__ = ("process", "task_q", "items", "started", "idle")

    def __init__(self, process, task_q) -> None:
        self.process = process
        self.task_q = task_q
        self.items: Dict[int, Tuple[SweepCell, int]] = {}  # idx -> (cell, attempt)
        self.started: Optional[Tuple[int, float]] = None  # (idx, t0)
        self.idle = True

    def send(self, items: List[Tuple[int, SweepCell, int]]) -> None:
        self.items = {idx: (cell, attempt) for idx, cell, attempt in items}
        self.started = None
        self.idle = False
        self.task_q.put(items)


def _spawn_worker(ctx, worker_id: int, result_q) -> _WorkerHandle:
    task_q = ctx.Queue()
    process = ctx.Process(
        target=_service_worker,
        args=(worker_id, task_q, result_q),
        daemon=True,
        name=f"repro-sweep-{worker_id}",
    )
    process.start()
    return _WorkerHandle(process, task_q)


def _execute_cells(
    cells: Sequence[SweepCell],
    jobs: int,
    policy: SweepPolicy,
    recovery: RecoveryLog,
    journal: Optional[SweepJournal],
    should_abort: Optional[Callable[[], bool]] = None,
    metrics=None,
    spans=None,
) -> Dict[Tuple[str, str], SimulationResult]:
    """Fan ``cells`` over supervised workers with full fault handling."""
    import queue as queue_mod

    try:
        import multiprocessing

        ctx = multiprocessing.get_context()
        result_q = ctx.Queue()
        workers: Dict[int, _WorkerHandle] = {}
        for wid in range(max(1, min(jobs, len(cells)))):
            workers[wid] = _spawn_worker(ctx, wid, result_q)
    except Exception as exc:
        # sandboxed interpreter / no working multiprocessing: run the whole
        # sweep serially rather than failing it
        recovery.note("pool_unavailable", detail=repr(exc))
        return _run_cells_serial(
            cells, policy, recovery, journal, disk_cache=True,
            should_abort=should_abort, metrics=metrics, spans=spans,
        )

    n = len(cells)
    results: Dict[int, SimulationResult] = {}
    failed_attempts: Dict[int, int] = {}  # idx -> attempts consumed so far
    task_queue: Deque[List[Tuple[int, SweepCell, int]]] = deque(
        [(_idx_of(cells, chunk)) for chunk in chunk_cells(cells, jobs)]
    )
    retry_heap: List[Tuple[float, int, int]] = []  # (ready_time, idx, attempt)
    fatal: List[BaseException] = []

    def record_ok(idx: int, result: SimulationResult) -> None:
        if idx in results:
            return  # duplicate completion after a redispatch race
        results[idx] = result
        if journal is not None:
            journal.append(result, cells[idx].scale)
        if failed_attempts.get(idx):
            cell = cells[idx]
            recovery.note(
                "cell_recovered", cell.system, cell.benchmark,
                f"succeeded after {failed_attempts[idx]} failed attempt(s)",
            )

    def handle_failure(idx: int, attempt: int, kind: str, description: str,
                       error_type: str = "") -> None:
        """One attempt at ``idx`` failed; retry, degrade, or give up."""
        if idx in results:
            return
        cell = cells[idx]
        used = attempt + 1
        failed_attempts[idx] = max(failed_attempts.get(idx, 0), used)
        retryable = error_type not in _NONRETRYABLE_TYPES
        if retryable and used <= policy.max_retries:
            event = {"timeout": "cell_timeout", "lost": "cell_redispatch"}.get(
                kind, "cell_retry"
            )
            recovery.note(event, cell.system, cell.benchmark, description)
            # a lost worker is the pool's fault, not the cell's: re-dispatch
            # immediately instead of backing off
            delay = 0.0 if kind == "lost" else policy.backoff_for(attempt)
            heapq.heappush(retry_heap, (time.monotonic() + delay, idx, used))
            return
        if kind == "lost":
            # the cell keeps taking workers down with it — run it in the
            # parent so only this cell degrades to serial, not the sweep
            recovery.note(
                "cell_degraded_serial", cell.system, cell.benchmark,
                f"after {used} worker loss(es)",
            )
            try:
                t0 = time.time()
                result = _attempt_cell(cell, disk_cache=True, attempt=used)
                _note_simulated(metrics, spans, cell, t0, time.time() - t0)
                record_ok(idx, result)
                return
            except Exception as exc:
                description = f"serial fallback failed: {exc!r}"
        last: object = description
        if kind == "timeout":
            last = CellTimeoutError(
                cell.system, cell.benchmark, policy.cell_timeout_s or 0.0, attempt
            )
        fatal.append(
            RetryExhaustedError(cell.system, cell.benchmark, cell.seed, used, last)
        )

    def dispatch() -> None:
        now = time.monotonic()
        while retry_heap and retry_heap[0][0] <= now:
            _, idx, attempt = heapq.heappop(retry_heap)
            if idx not in results:
                task_queue.append([(idx, cells[idx], attempt)])
        for handle in workers.values():
            if not task_queue:
                break
            if handle.idle and handle.process.is_alive():
                handle.send(task_queue.popleft())

    def respawn(wid: int) -> None:
        handle = workers[wid]
        started_idx = handle.started[0] if handle.started else None
        for idx, (cell, attempt) in handle.items.items():
            if idx == started_idx or idx in results:
                continue
            # unstarted chunk-mates of a dead worker cost no attempt
            task_queue.append([(idx, cell, attempt)])
        try:
            workers[wid] = _spawn_worker(ctx, wid, result_q)
        except Exception as exc:  # pragma: no cover - spawn exhaustion
            recovery.note("pool_unavailable", detail=repr(exc))
            del workers[wid]

    try:
        while len(results) < n and not fatal:
            if should_abort is not None and should_abort():
                # every journalled cell survives; the finally block below
                # shuts the pool down, and the caller parks/cancels the job
                raise JobCancelledError(
                    f"sweep aborted with {len(results)}/{n} cell(s) complete"
                )
            dispatch()
            if not workers:
                # every worker slot died unrecoverably: finish serially
                remaining = [c for i, c in enumerate(cells) if i not in results]
                recovery.note(
                    "pool_unavailable", detail="all workers lost; finishing serially"
                )
                results.update(
                    {
                        _index_by_key(cells)[key]: res
                        for key, res in _run_cells_serial(
                            remaining, policy, recovery, journal, disk_cache=True,
                            should_abort=should_abort, metrics=metrics, spans=spans,
                        ).items()
                    }
                )
                break

            # drain messages (block briefly on the first for pacing)
            messages = []
            try:
                messages.append(result_q.get(timeout=_POLL_S))
                while True:
                    messages.append(result_q.get_nowait())
            except queue_mod.Empty:
                pass
            for message in messages:
                kind, wid = message[0], message[1]
                handle = workers.get(wid)
                if kind == "start":
                    if handle is not None:
                        handle.started = (message[2], time.monotonic())
                elif kind == "ok":
                    idx, result = message[2], message[3]
                    record_ok(idx, result)
                    if handle is not None:
                        handle.items.pop(idx, None)
                        if handle.started and handle.started[0] == idx:
                            handle.started = None
                elif kind == "err":
                    idx, info = message[2], message[3]
                    attempt = 0
                    if handle is not None:
                        entry = handle.items.pop(idx, None)
                        if entry is not None:
                            attempt = entry[1]
                        if handle.started and handle.started[0] == idx:
                            handle.started = None
                    handle_failure(
                        idx, attempt, "error",
                        f"{info['type']}: {info['msg']}", info["type"],
                    )
                elif kind == "idle":
                    if handle is not None:
                        handle.idle = True
                        handle.items = {}
                        handle.started = None
                elif kind == "note":
                    recovery.note(message[2], detail=message[3])
                elif kind == "span":
                    # worker-measured per-cell wall clock: feed the
                    # histogram/counter and the job's span tree
                    idx, payload = message[2], message[3]
                    if idx not in results and metrics is not None:
                        metrics.inc(
                            "repro_sweep_cells_total",
                            labels={"outcome": "simulated"},
                        )
                        metrics.observe(
                            "repro_sweep_cell_seconds",
                            float(payload.get("dur_s", 0.0)),
                        )
                    if spans is not None:
                        spans.add_raw(payload)

            # liveness: a worker that died mid-task loses its in-flight cell
            now = time.monotonic()
            for wid, handle in list(workers.items()):
                if handle.idle:
                    if not handle.process.is_alive():
                        respawn(wid)
                    continue
                if not handle.process.is_alive():
                    exitcode = handle.process.exitcode
                    recovery.note(
                        "worker_lost", detail=f"worker {wid} exited {exitcode}"
                    )
                    # Charge the crash to the cell the worker was on.  A hard
                    # kill (SIGKILL, os._exit) can lose the queued "start"
                    # message, so fall back to the first un-acknowledged cell
                    # in dispatch order — workers run their task in order, so
                    # that is the in-flight one.  Charging an attempt on every
                    # death is what bounds a crash-looping cell.
                    victim: Optional[int] = None
                    if handle.started is not None:
                        victim = handle.started[0]
                    else:
                        for idx in handle.items:
                            if idx not in results:
                                victim = idx
                                break
                    if victim is not None:
                        entry = handle.items.pop(victim, None)
                        attempt = entry[1] if entry is not None else 0
                        handle_failure(
                            victim, attempt, "lost",
                            f"worker {wid} died mid-cell (exit {exitcode})",
                        )
                    respawn(wid)
                elif (
                    policy.cell_timeout_s is not None
                    and handle.started is not None
                    and now - handle.started[1] > policy.cell_timeout_s
                ):
                    idx, _t0 = handle.started
                    entry = handle.items.pop(idx, None)
                    attempt = entry[1] if entry is not None else 0
                    handle.process.kill()
                    handle.process.join(timeout=1.0)
                    handle.started = None
                    handle_failure(
                        idx, attempt, "timeout",
                        f"exceeded {policy.cell_timeout_s:g}s wall clock",
                    )
                    respawn(wid)
    finally:
        for handle in workers.values():
            try:
                handle.task_q.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for handle in workers.values():
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
        result_q.cancel_join_thread()

    if fatal:
        raise fatal[0]
    return {
        (cell.system, cell.benchmark): results[idx]
        for idx, cell in enumerate(cells)
    }


def _idx_of(
    cells: Sequence[SweepCell], chunk: Sequence[SweepCell]
) -> List[Tuple[int, SweepCell, int]]:
    index = _index_by_key(cells)
    return [(index[(c.system, c.benchmark)], c, 0) for c in chunk]


def _index_by_key(cells: Sequence[SweepCell]) -> Dict[Tuple[str, str], int]:
    return {(c.system, c.benchmark): i for i, c in enumerate(cells)}


# ---------------------------------------------------------------------------
# the sweep entry point
# ---------------------------------------------------------------------------


def run_parallel_sweep(
    configs: Mapping[str, SystemConfig],
    benchmarks: Sequence[str],
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    jobs: int = 1,
    run_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
    max_retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    recovery: Optional[RecoveryLog] = None,
    engine: Optional[str] = None,
    result_store=None,
    should_abort: Optional[Callable[[], bool]] = None,
    metrics=None,
    spans=None,
    request_id: Optional[str] = None,
) -> Dict[Tuple[str, str], SimulationResult]:
    """Fan a sweep matrix over ``jobs`` worker processes, fault-tolerantly.

    Returns exactly what the serial sweep would: ``(system, benchmark) ->
    SimulationResult`` with bit-identical counters, in the same iteration
    order — including across crash/resume (``run_dir``), retries, worker
    loss, and injected faults.  ``engine`` is resolved once in the parent
    (explicit choice over ``$REPRO_ENGINE`` over the interpreter) and
    rides inside every cell, so workers and resumed runs use it verbatim.

    ``result_store`` — a :class:`repro.service.store.ResultStore` —
    memoises completed cells by content key: before simulating, each cell
    is looked up (a hit restores the exact counters/metrics the original
    run produced, costs zero engine time, and is journalled with
    ``source="cache"``), and every cell the sweep *did* simulate is
    stored for the next request.  Cache hits are recorded in the
    recovery log (``cell_cache_hit``) so manifests and ``repro top`` can
    report hit rates; a store read that finds corruption quarantines the
    entry and the cell transparently re-simulates.

    ``should_abort`` — an optional zero-argument callable polled between
    cells (and each supervisor tick).  When it turns true the sweep
    raises :class:`~repro.errors.JobCancelledError` at the next cell
    boundary: every completed cell is already journalled, so a resumed
    run restores them bit-identically.  This is how the job service
    implements ``POST /jobs/<id>/cancel`` and graceful drain.

    ``metrics`` / ``spans`` / ``request_id`` — optional wall-clock
    telemetry: a :class:`repro.obs.registry.WallClockRegistry` fed
    per-cell counters and duration histograms, a
    :class:`repro.obs.spans.SpanRecorder` fed per-cell spans (including
    worker-process-measured ones), and the HTTP correlation id stamped
    into journal rows and recovery actions as provenance.  All of it is
    service-layer accounting around the engine — counters and
    ``manifest_core`` are bit-identical with telemetry on or off.  The
    counters derived from the recovery log at the end (retries, timeouts,
    redispatches) assume a fresh ``recovery`` per call.
    """
    from .batch import resolve_engine

    engine = resolve_engine(engine)
    cells = plan_cells(
        configs, benchmarks, refs=refs, seed=seed, scale=scale, engine=engine
    )
    policy = resolve_policy(max_retries, cell_timeout)
    if recovery is None:
        recovery = RecoveryLog()
    if request_id:
        recovery.request_id = request_id

    journal: Optional[SweepJournal] = None
    done: Dict[Tuple[str, str], SimulationResult] = {}
    if run_dir is not None:
        journal = SweepJournal.open(
            run_dir,
            refs=refs,
            seed=seed,
            scale=scale,
            systems=list(configs),
            benchmarks=list(benchmarks),
            engine=engine,
        )
        # provenance only — deliberately NOT part of the header identity,
        # so a resumed run under a different request id still matches
        journal.request_id = request_id
        # live recovery feed beside the journal (tailed by `repro top`)
        from .checkpoint import RECOVERY_NAME

        recovery.attach_jsonl(journal.run_dir / RECOVERY_NAME)
        done = journal.load(configs)
        if done:
            recovery.note(
                "cells_resumed",
                detail=f"{len(done)} cell(s) restored from {journal.run_dir}",
            )
            if metrics is not None:
                metrics.inc(
                    "repro_sweep_cells_total", len(done),
                    labels={"outcome": "resumed"},
                )
        if journal.torn_lines or journal.stale_records:
            recovery.note(
                "journal_repaired",
                detail=(
                    f"skipped {journal.torn_lines} torn line(s) and "
                    f"{journal.stale_records} stale record(s)"
                ),
            )

    # consult the content-addressed result store before simulating anything:
    # a hit is bit-identical to simulating the cell (the store verifies the
    # counter digest on load) and costs no engine time
    cached_keys = set()
    todo = []
    for c in cells:
        if should_abort is not None and should_abort():
            if journal is not None:
                journal.close()
                recovery.close()
            raise JobCancelledError("sweep aborted during result-store lookup")
        key = (c.system, c.benchmark)
        if key in done:
            continue
        if result_store is not None:
            t_get = time.time()
            hit = result_store.get(
                c.config, c.benchmark, refs=c.refs, seed=c.seed,
                scale=c.scale, system=c.system,
            )
            if hit is not None:
                done[key] = hit
                cached_keys.add(key)
                recovery.note("cell_cache_hit", c.system, c.benchmark,
                              "served from the result store")
                if metrics is not None:
                    metrics.inc(
                        "repro_sweep_cells_total", labels={"outcome": "cached"}
                    )
                if spans is not None:
                    spans.add(
                        "cell cache-hit", t_get, time.time() - t_get,
                        system=c.system, benchmark=c.benchmark,
                    )
                if journal is not None:
                    journal.append(hit, c.scale, source="cache")
                continue
        todo.append(c)
    # surface parent-side trace-cache recovery (quarantines during the
    # pre-seed phase, skipped writes) alongside the workers' notes
    previous_hook = trace_io.set_recovery_hook(
        lambda kind, detail: recovery.note(kind, detail=detail)
    )
    try:
        if todo:
            if jobs <= 1 or len(todo) <= 1:
                fresh = _run_cells_serial(
                    todo, policy, recovery, journal, disk_cache=False,
                    should_abort=should_abort, metrics=metrics, spans=spans,
                )
            else:
                # Pre-seed the disk cache so no worker regenerates a trace.
                # Under the default fork start method workers additionally
                # inherit the parent's warm in-process cache for free.
                for bench in {c.benchmark for c in todo}:
                    try:
                        get_trace(bench, refs=refs, seed=seed, scale=scale,
                                  disk_cache=True)
                    except OSError:
                        pass  # workers fall back to generating it themselves
                fresh = _execute_cells(
                    todo, jobs, policy, recovery, journal,
                    should_abort=should_abort, metrics=metrics, spans=spans,
                )
            done.update(fresh)
    finally:
        trace_io.set_recovery_hook(previous_hook)
        if metrics is not None:
            # recovery-action counters, derived once per sweep (valid
            # because the service hands each run a fresh RecoveryLog)
            for note_kind, metric in (
                ("cell_retry", "repro_sweep_cell_retries_total"),
                ("cell_timeout", "repro_sweep_cell_timeouts_total"),
                ("cell_redispatch", "repro_sweep_cell_redispatches_total"),
            ):
                count = recovery.counts.get(note_kind, 0)
                if count:
                    metrics.inc(metric, count)
        if journal is not None:
            journal.close()
            recovery.close()

    if result_store is not None:
        # memoise everything this sweep actually produced (fresh cells and
        # journal-restored ones alike) for the next identical request; a
        # failed write degrades to "not cached", never to a failed sweep.
        # The recovery hook is re-attached so store degradation events
        # (store_degraded / store_recovered / evictions) are logged too.
        stored = 0
        t_put = time.time()
        previous_hook = trace_io.set_recovery_hook(
            lambda kind, detail: recovery.note(kind, detail=detail)
        )
        try:
            for cell in cells:
                key = (cell.system, cell.benchmark)
                if key in cached_keys:
                    continue
                if result_store.put(
                    done[key], cell.scale, refs=cell.refs, seed=cell.seed
                ) is not None:
                    stored += 1
        finally:
            trace_io.set_recovery_hook(previous_hook)
            if spans is not None:
                spans.add("store-put", t_put, time.time() - t_put, stored=stored)
        if stored < len(cells) - len(cached_keys):
            recovery.note(
                "result_store_skipped",
                detail=f"{len(cells) - len(cached_keys) - stored} "
                       f"cell(s) could not be written to the result store",
            )

    # deterministic merge: plan order, exactly the serial dict order
    return {(cell.system, cell.benchmark): done[(cell.system, cell.benchmark)]
            for cell in cells}


# ---------------------------------------------------------------------------
# throughput reporting
# ---------------------------------------------------------------------------


def per_benchmark_throughput(
    results: Mapping[Tuple[str, str], SimulationResult],
) -> "OrderedDict[str, Dict[str, float]]":
    """Aggregate engine throughput per benchmark, in results order.

    Each entry: ``{"refs": total simulated refs, "elapsed_s": engine
    seconds, "refs_per_sec": aggregate rate, "cells": cell count}``.
    """
    out: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
    for (_system, bench), r in results.items():
        agg = out.setdefault(
            bench, {"refs": 0.0, "elapsed_s": 0.0, "refs_per_sec": 0.0, "cells": 0.0}
        )
        agg["refs"] += r.refs
        agg["elapsed_s"] += r.elapsed_s
        agg["cells"] += 1
    for agg in out.values():
        agg["refs_per_sec"] = (
            agg["refs"] / agg["elapsed_s"] if agg["elapsed_s"] > 0 else 0.0
        )
    return out


def throughput_report(
    results: Mapping[Tuple[str, str], SimulationResult],
    wall_s: Optional[float] = None,
    jobs: int = 1,
) -> str:
    """Human-readable engine throughput report for one sweep.

    Per-cell simulated references, engine seconds, and refs/sec; a
    per-benchmark aggregate block; and the sweep total — the number CI
    tracks for hot-path regressions.
    """
    lines = ["engine throughput report", "=" * 24]
    lines.append(f"{'system':<8} {'benchmark':<10} {'refs':>9} {'secs':>8} {'refs/s':>11}")
    total_refs = 0
    total_elapsed = 0.0
    for (system, bench), r in results.items():
        total_refs += r.refs
        total_elapsed += r.elapsed_s
        lines.append(
            f"{system:<8} {bench:<10} {r.refs:>9,} {r.elapsed_s:>8.3f} "
            f"{r.refs_per_sec:>11,.0f}"
        )
    per_bench = per_benchmark_throughput(results)
    if len(per_bench) > 1 or any(a["cells"] > 1 for a in per_bench.values()):
        lines.append("-" * 50)
        lines.append("per benchmark:")
        for bench, agg in per_bench.items():
            lines.append(
                f"{'':<8} {bench:<10} {int(agg['refs']):>9,} "
                f"{agg['elapsed_s']:>8.3f} {agg['refs_per_sec']:>11,.0f}"
                f"  ({int(agg['cells'])} cells)"
            )
    agg_rate = total_refs / total_elapsed if total_elapsed > 0 else 0.0
    lines.append("-" * 50)
    lines.append(
        f"{'total':<8} {'':<10} {total_refs:>9,} {total_elapsed:>8.3f} {agg_rate:>11,.0f}"
    )
    if wall_s is not None and wall_s > 0:
        lines.append(
            f"wall-clock {wall_s:.3f}s with jobs={jobs} "
            f"({total_refs / wall_s:,.0f} refs/s end-to-end, "
            f"speedup x{total_elapsed / wall_s:.2f} over engine time)"
        )
    return "\n".join(lines)


def perf_json(
    results: Mapping[Tuple[str, str], SimulationResult],
    wall_s: Optional[float] = None,
    jobs: int = 1,
) -> Dict[str, object]:
    """Machine-readable throughput payload for ``repro perf --json``.

    The shape matches what ``scripts/check_bench_regression.py`` consumes
    from pytest-benchmark (``benchmarks[].extra_info.refs_per_sec``), so
    one gate script handles both sources.  One benchmark entry per sweep
    *benchmark* (aggregated over its systems) plus a ``sweep_total``
    entry; per-cell rates ride in ``extra_info.cells``.
    """
    per_bench = per_benchmark_throughput(results)
    entries: List[Dict[str, object]] = []
    for bench, agg in per_bench.items():
        cells = {
            system: round(r.refs_per_sec, 1)
            for (system, b), r in results.items()
            if b == bench
        }
        entries.append(
            {
                "name": f"perf::{bench}",
                "extra_info": {
                    "refs_per_sec": agg["refs_per_sec"],
                    "refs": int(agg["refs"]),
                    "elapsed_s": agg["elapsed_s"],
                    "cells": cells,
                },
            }
        )
    total_refs = sum(int(a["refs"]) for a in per_bench.values())
    total_elapsed = sum(a["elapsed_s"] for a in per_bench.values())
    entries.append(
        {
            "name": "perf::sweep_total",
            "extra_info": {
                "refs_per_sec": (
                    total_refs / total_elapsed if total_elapsed > 0 else 0.0
                ),
                "refs": total_refs,
                "elapsed_s": total_elapsed,
                "wall_s": wall_s,
                "jobs": jobs,
            },
        }
    )
    return {"benchmarks": entries}


def sweep_metrics(
    results: Mapping[Tuple[str, str], SimulationResult],
) -> Dict[str, Dict[str, object]]:
    """Deterministic sweep-level metrics aggregate.

    Folds every result's :attr:`SimulationResult.metrics` snapshot in the
    results' iteration order — the plan order both the serial and the
    parallel path produce — so the aggregate of a parallel sweep is
    bit-identical to the serial one (pinned by ``tests/sim/test_obs.py``).
    """
    from ..obs.metrics import aggregate_metrics

    return aggregate_metrics(r.metrics for r in results.values())


def cache_summary(
    results: Mapping[Tuple[str, str], SimulationResult],
    recovery: RecoveryLog,
) -> Dict[str, object]:
    """The hit/simulated split of one store-backed sweep.

    ``hits`` counts cells served from the result store this run (the
    recovery log's ``cell_cache_hit`` tally); ``resumed`` counts cells
    restored from the sweep's own journal; everything else was simulated.
    """
    total = len(results)
    hits = recovery.counts.get("cell_cache_hit", 0)
    resumed = 0
    for action in recovery.actions:
        if action["kind"] == "cells_resumed":
            try:  # detail reads "N cell(s) restored from <dir>"
                resumed += int(str(action["detail"]).split()[0])
            except (ValueError, IndexError):
                pass
    simulated = max(0, total - hits - resumed)
    return {
        "total_cells": total,
        "hits": hits,
        "resumed": resumed,
        "simulated": simulated,
        "hit_rate": round(hits / total, 4) if total else 0.0,
    }


def timed_sweep(
    configs: Mapping[str, SystemConfig],
    benchmarks: Sequence[str],
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    jobs: int = 1,
    manifest_dir: Optional[str] = None,
    manifest_name: str = "sweep",
    command: str = "",
    run_dir: Optional[str] = None,
    max_retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    recovery: Optional[RecoveryLog] = None,
    engine: Optional[str] = None,
    result_store=None,
) -> Tuple[Dict[Tuple[str, str], SimulationResult], float]:
    """Run a sweep (parallel or serial) and return ``(results, wall_s)``.

    A run manifest is written to ``manifest_dir`` when given, else to
    ``$REPRO_MANIFEST_DIR`` when set, else not at all; any recovery
    actions the sweep took are surfaced in it — as is the execution
    engine the sweep ran on, and (with a ``result_store``) the cache
    hit/simulated split under the manifest's ``cache`` key.
    """
    from .batch import resolve_engine

    engine = resolve_engine(engine)
    if recovery is None:
        recovery = RecoveryLog()
    start = time.perf_counter()
    results = run_parallel_sweep(
        configs, benchmarks, refs=refs, seed=seed, scale=scale, jobs=jobs,
        run_dir=run_dir, max_retries=max_retries, cell_timeout=cell_timeout,
        recovery=recovery, engine=engine, result_store=result_store,
    )
    wall_s = time.perf_counter() - start
    from ..obs.manifest import maybe_write_sweep_manifest

    maybe_write_sweep_manifest(
        results,
        command=command or "timed_sweep",
        refs=refs,
        seed=seed,
        scale=scale,
        jobs=jobs,
        wall_s=wall_s,
        directory=manifest_dir,
        name=manifest_name,
        recovery=recovery,
        engine=engine,
        cache=cache_summary(results, recovery) if result_store is not None else None,
    )
    return results, wall_s


# ---------------------------------------------------------------------------
# engine comparison (repro perf --engine both)
# ---------------------------------------------------------------------------


def engine_comparison_report(
    interp: Mapping[Tuple[str, str], SimulationResult],
    batch: Mapping[Tuple[str, str], SimulationResult],
) -> str:
    """Side-by-side interp vs batch throughput with a speedup column.

    Both result maps must cover the same cells (they come from two
    :func:`timed_sweep` calls over one matrix).  The speedup is engine
    time over engine time — wall clock and job count cancel out.
    """
    lines = ["engine comparison (interp vs batch)", "=" * 35]
    lines.append(
        f"{'system':<8} {'benchmark':<10} {'interp/s':>11} {'batch/s':>11} "
        f"{'speedup':>8}"
    )
    t_interp = 0.0
    t_batch = 0.0
    refs = 0
    for key, ri in interp.items():
        rb = batch.get(key)
        if rb is None:
            continue
        system, bench = key
        t_interp += ri.elapsed_s
        t_batch += rb.elapsed_s
        refs += ri.refs
        ratio = ri.elapsed_s / rb.elapsed_s if rb.elapsed_s > 0 else 0.0
        lines.append(
            f"{system:<8} {bench:<10} {ri.refs_per_sec:>11,.0f} "
            f"{rb.refs_per_sec:>11,.0f} {ratio:>7.2f}x"
        )
    lines.append("-" * 52)
    total_ratio = t_interp / t_batch if t_batch > 0 else 0.0
    rate_i = refs / t_interp if t_interp > 0 else 0.0
    rate_b = refs / t_batch if t_batch > 0 else 0.0
    lines.append(
        f"{'total':<8} {'':<10} {rate_i:>11,.0f} {rate_b:>11,.0f} "
        f"{total_ratio:>7.2f}x"
    )
    return "\n".join(lines)


def engine_comparison_json(
    interp: Mapping[Tuple[str, str], SimulationResult],
    batch: Mapping[Tuple[str, str], SimulationResult],
    wall_interp: Optional[float] = None,
    wall_batch: Optional[float] = None,
    jobs: int = 1,
) -> Dict[str, object]:
    """Machine-readable side-by-side payload for ``--engine both --json``.

    Embeds one full :func:`perf_json` payload per engine (so the bench
    regression gate can consume either) plus a per-cell ``speedup`` map
    and the engine-time totals.
    """
    cells: Dict[str, Dict[str, object]] = {}
    t_interp = 0.0
    t_batch = 0.0
    for key, ri in interp.items():
        rb = batch.get(key)
        if rb is None:
            continue
        system, bench = key
        t_interp += ri.elapsed_s
        t_batch += rb.elapsed_s
        cells[f"{system}/{bench}"] = {
            "interp_refs_per_sec": round(ri.refs_per_sec, 1),
            "batch_refs_per_sec": round(rb.refs_per_sec, 1),
            "speedup": (
                round(ri.elapsed_s / rb.elapsed_s, 3) if rb.elapsed_s > 0 else 0.0
            ),
        }
    return {
        "engines": {
            "interp": perf_json(interp, wall_interp, jobs),
            "batch": perf_json(batch, wall_batch, jobs),
        },
        "cells": cells,
        "total_speedup": round(t_interp / t_batch, 3) if t_batch > 0 else 0.0,
    }
