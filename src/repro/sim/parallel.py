"""Parallel sweep execution over a ``multiprocessing`` worker pool.

Every figure in the paper is an embarrassingly parallel systems x
benchmarks matrix, and each cell is an independent simulation over a
deterministic trace — so the matrix fans out over processes with **no**
effect on the results: a parallel sweep is bit-identical to a serial one
(pinned by ``tests/sim/test_parallel.py``).

Mechanics:

* cells are planned benchmark-major (the serial order) and chunked so one
  worker runs all systems of one benchmark back to back, reusing its
  in-process trace cache instead of regenerating the trace per cell;
* the parent **pre-seeds the on-disk trace cache** (`repro.trace.io`)
  before forking, so workers — even under a ``spawn`` start method, which
  inherits no parent memory — load each trace once from disk rather than
  regenerating it per process;
* results come back keyed ``(system, benchmark)`` and are merged in plan
  order, so iteration order of the returned dict matches the serial path;
* anything that prevents pooling (a platform without working
  ``multiprocessing``, unpicklable configs, a sandboxed interpreter)
  degrades to the serial path rather than failing the sweep.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from ..params import SystemConfig
from .results import SimulationResult
from .runner import DEFAULT_REFS, DEFAULT_SCALE, get_trace, run_trace


class SweepCell(NamedTuple):
    """One unit of sweep work: a (system, benchmark) cell plus trace shape."""

    system: str
    benchmark: str
    config: SystemConfig
    refs: int
    seed: int
    scale: float


def default_jobs() -> int:
    """Worker count when the caller does not choose: env ``REPRO_JOBS`` or
    the machine's CPU count."""
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        return max(1, int(raw))
    return os.cpu_count() or 1


def plan_cells(
    configs: Mapping[str, SystemConfig],
    benchmarks: Sequence[str],
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
) -> List[SweepCell]:
    """The sweep's work list, benchmark-major (identical to serial order)."""
    return [
        SweepCell(system, bench, config, refs, seed, scale)
        for bench in benchmarks
        for system, config in configs.items()
    ]


def chunk_cells(cells: Sequence[SweepCell], jobs: int) -> List[List[SweepCell]]:
    """Group cells into per-benchmark chunks, splitting only when a single
    benchmark has more cells than would keep ``jobs`` workers busy.

    Keeping one benchmark's cells together lets a worker generate (or load)
    its trace once and reuse it for every system.
    """
    by_bench: "Dict[str, List[SweepCell]]" = {}
    order: List[str] = []
    for cell in cells:
        if cell.benchmark not in by_bench:
            by_bench[cell.benchmark] = []
            order.append(cell.benchmark)
        by_bench[cell.benchmark].append(cell)

    chunks: List[List[SweepCell]] = []
    if len(order) >= jobs:
        chunks = [by_bench[b] for b in order]
    else:
        # fewer benchmarks than workers: split each benchmark's cells so
        # every worker still gets something to do
        per = max(1, (len(cells) + jobs - 1) // jobs)
        for bench in order:
            group = by_bench[bench]
            for i in range(0, len(group), per):
                chunks.append(group[i : i + per])
    return chunks


def _run_cells(
    cells: Iterable[SweepCell], disk_cache: bool
) -> List[Tuple[str, str, SimulationResult]]:
    out = []
    for cell in cells:
        trace = get_trace(
            cell.benchmark,
            refs=cell.refs,
            seed=cell.seed,
            scale=cell.scale,
            disk_cache=disk_cache,
        )
        result = run_trace(cell.config, trace, system_name=cell.system)
        out.append((cell.system, cell.benchmark, result))
    return out


def _worker(chunk: List[SweepCell]) -> List[Tuple[str, str, SimulationResult]]:
    # module-level so it pickles under every start method
    return _run_cells(chunk, disk_cache=True)


def run_parallel_sweep(
    configs: Mapping[str, SystemConfig],
    benchmarks: Sequence[str],
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    jobs: int = 1,
) -> Dict[Tuple[str, str], SimulationResult]:
    """Fan a sweep matrix over ``jobs`` worker processes.

    Returns exactly what the serial sweep would: ``(system, benchmark) ->
    SimulationResult`` with bit-identical counters, in the same iteration
    order.
    """
    cells = plan_cells(configs, benchmarks, refs=refs, seed=seed, scale=scale)
    if jobs <= 1 or len(cells) <= 1:
        flat = _run_cells(cells, disk_cache=False)
        return {(s, b): r for s, b, r in flat}

    # Pre-seed the disk cache so no worker regenerates a trace.  Under the
    # default fork start method workers additionally inherit the parent's
    # warm in-process cache for free.
    for bench in benchmarks:
        get_trace(bench, refs=refs, seed=seed, scale=scale, disk_cache=True)

    chunks = chunk_cells(cells, jobs)
    flat: List[Tuple[str, str, SimulationResult]] = []
    try:
        import multiprocessing

        with multiprocessing.Pool(processes=min(jobs, len(chunks))) as pool:
            for chunk_result in pool.map(_worker, chunks):
                flat.extend(chunk_result)
    except Exception:
        # pickling-hostile platform / sandboxed interpreter: fall back to
        # the serial path rather than failing the sweep
        flat = _run_cells(cells, disk_cache=True)

    merged = {(s, b): r for s, b, r in flat}
    # deterministic merge: plan order, exactly the serial dict order
    return {
        (cell.system, cell.benchmark): merged[(cell.system, cell.benchmark)]
        for cell in cells
    }


# ---------------------------------------------------------------------------
# throughput reporting
# ---------------------------------------------------------------------------


def throughput_report(
    results: Mapping[Tuple[str, str], SimulationResult],
    wall_s: Optional[float] = None,
    jobs: int = 1,
) -> str:
    """Human-readable engine throughput report for one sweep.

    Per-cell simulated references, engine seconds, and refs/sec, plus the
    aggregate — the number CI tracks for hot-path regressions.
    """
    lines = ["engine throughput report", "=" * 24]
    lines.append(f"{'system':<8} {'benchmark':<10} {'refs':>9} {'secs':>8} {'refs/s':>11}")
    total_refs = 0
    total_elapsed = 0.0
    for (system, bench), r in results.items():
        total_refs += r.refs
        total_elapsed += r.elapsed_s
        lines.append(
            f"{system:<8} {bench:<10} {r.refs:>9,} {r.elapsed_s:>8.3f} "
            f"{r.refs_per_sec:>11,.0f}"
        )
    agg = total_refs / total_elapsed if total_elapsed > 0 else 0.0
    lines.append("-" * 50)
    lines.append(
        f"{'total':<8} {'':<10} {total_refs:>9,} {total_elapsed:>8.3f} {agg:>11,.0f}"
    )
    if wall_s is not None and wall_s > 0:
        lines.append(
            f"wall-clock {wall_s:.3f}s with jobs={jobs} "
            f"({total_refs / wall_s:,.0f} refs/s end-to-end, "
            f"speedup x{total_elapsed / wall_s:.2f} over engine time)"
        )
    return "\n".join(lines)


def sweep_metrics(
    results: Mapping[Tuple[str, str], SimulationResult],
) -> Dict[str, Dict[str, object]]:
    """Deterministic sweep-level metrics aggregate.

    Folds every result's :attr:`SimulationResult.metrics` snapshot in the
    results' iteration order — the plan order both the serial and the
    parallel path produce — so the aggregate of a parallel sweep is
    bit-identical to the serial one (pinned by ``tests/sim/test_obs.py``).
    """
    from ..obs.metrics import aggregate_metrics

    return aggregate_metrics(r.metrics for r in results.values())


def timed_sweep(
    configs: Mapping[str, SystemConfig],
    benchmarks: Sequence[str],
    refs: int = DEFAULT_REFS,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    jobs: int = 1,
    manifest_dir: Optional[str] = None,
    manifest_name: str = "sweep",
    command: str = "",
) -> Tuple[Dict[Tuple[str, str], SimulationResult], float]:
    """Run a sweep (parallel or serial) and return ``(results, wall_s)``.

    A run manifest is written to ``manifest_dir`` when given, else to
    ``$REPRO_MANIFEST_DIR`` when set, else not at all.
    """
    start = time.perf_counter()
    results = run_parallel_sweep(
        configs, benchmarks, refs=refs, seed=seed, scale=scale, jobs=jobs
    )
    wall_s = time.perf_counter() - start
    from ..obs.manifest import maybe_write_sweep_manifest

    maybe_write_sweep_manifest(
        results,
        command=command or "timed_sweep",
        refs=refs,
        seed=seed,
        scale=scale,
        jobs=jobs,
        wall_s=wall_s,
        directory=manifest_dir,
        name=manifest_name,
    )
    return results, wall_s
