"""Result container combining counters, configuration, and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..params import SystemConfig
from ..stats import Counters
from . import latency as _lat


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    system: str
    benchmark: str
    config: SystemConfig
    counters: Counters
    refs: int
    seed: int = 0
    elapsed_s: float = 0.0
    #: observability snapshot (repro.obs.metrics.run_metrics): plain nested
    #: dicts of counters/gauges/histograms, deterministic per (config, trace)
    #: and picklable, so parallel sweep workers return it unchanged
    metrics: Optional[Dict[str, Dict[str, object]]] = field(default=None, repr=False)

    # ---- engine throughput ------------------------------------------------

    @property
    def refs_per_sec(self) -> float:
        """Engine throughput for this run (0.0 when timing was not taken)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.refs / self.elapsed_s

    # ---- headline metrics -------------------------------------------------

    @property
    def remote_read_stall(self) -> float:
        """Eq. 1, in bus cycles."""
        return _lat.remote_read_stall(self.counters, self.config)

    @property
    def stall_components(self) -> Dict[str, int]:
        """Eq. 1 decomposed per component (sums exactly to the stall)."""
        return _lat.stall_components(self.counters, self.config)

    @property
    def relocation_overhead_cycles(self) -> int:
        return _lat.relocation_overhead_cycles(self.counters, self.config)

    @property
    def stall_without_relocation(self) -> float:
        return self.remote_read_stall - self.relocation_overhead_cycles

    @property
    def traffic_blocks(self) -> int:
        return _lat.traffic_blocks(self.counters)

    @property
    def read_miss_ratio(self) -> float:
        """% of shared references that are read misses leaving the cluster."""
        return _lat.miss_ratio_read(self.counters)

    @property
    def write_miss_ratio(self) -> float:
        return _lat.miss_ratio_write(self.counters)

    @property
    def miss_ratio(self) -> float:
        return self.read_miss_ratio + self.write_miss_ratio

    @property
    def relocation_overhead_ratio(self) -> float:
        """Relocations scaled to equivalent remote misses, % of references."""
        return _lat.relocation_overhead_ratio(self.counters, self.config)

    @property
    def stall_per_reference(self) -> float:
        if self.counters.refs == 0:
            return 0.0
        return self.remote_read_stall / self.counters.refs

    # ---- ratios used in the figures -----------------------------------------

    def normalized_stall(self, reference: "SimulationResult") -> float:
        """Remote read stall normalised to a reference system (Figs. 9/11)."""
        ref = reference.remote_read_stall
        return self.remote_read_stall / ref if ref else float("inf")

    def normalized_traffic(self, reference: "SimulationResult") -> float:
        """Remote data traffic normalised to a reference system (Fig. 10)."""
        ref = reference.traffic_blocks
        return self.traffic_blocks / ref if ref else float("inf")

    # ---- reporting -------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary (used by examples and reports)."""
        c = self.counters
        return {
            "refs": float(c.refs),
            "read_miss_ratio_pct": self.read_miss_ratio,
            "write_miss_ratio_pct": self.write_miss_ratio,
            "relocation_overhead_pct": self.relocation_overhead_ratio,
            "remote_read_stall_cycles": self.remote_read_stall,
            "stall_per_ref_cycles": self.stall_per_reference,
            "traffic_blocks": float(self.traffic_blocks),
            "nc_read_hits": float(c.read_nc_hits),
            "pc_read_hits": float(c.read_pc_hits),
            "relocations": float(c.pc_relocations),
            "capacity_misses": float(c.remote_capacity),
            "necessary_misses": float(c.remote_necessary),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationResult({self.system!r}, {self.benchmark!r}, "
            f"miss={self.miss_ratio:.2f}%, stall/ref="
            f"{self.stall_per_reference:.2f}cy)"
        )
