"""The trace-driven protocol engine.

One :class:`Simulator` drives one :class:`~repro.system.machine.Machine`
through an interleaved shared-reference trace, playing the roles of every
cluster bus and pseudo-processor:

* intra-cluster MESIR snooping (cache-to-cache supply, mastership transfer
  on R-state replacement, M->S downgrades);
* the network cache's bus-side behaviour for each organisation (victim
  capture, allocate-on-miss, inclusion enforcement on NC evictions);
* the page cache's local-memory behaviour (block fills, dirty absorption,
  LRM eviction with cluster-wide page flush);
* the inter-cluster directory protocol (presence bits, owner flush,
  invalidations, capacity/necessary classification);
* both page-relocation mechanisms (R-NUMA directory counters and the
  `vxp` NC-set victimisation counters) with fixed or adaptive thresholds.

The simulator is *functional with event counting*: it mutates coherence
state exactly, counts every monitored event in a :class:`repro.stats.Counters`,
and leaves latency arithmetic to :mod:`repro.sim.latency` (the paper's
model is contention-free, so counts x constants is exact).

Invariant checked throughout (and by the hypothesis tests): at most one
dirty copy of any block machine-wide; the directory's owner always has the
dirty data in an L1, its NC, or its PC frame.
"""

from __future__ import annotations


from ..coherence.cache import CacheLine
from ..coherence.states import MESIR, NCState, PCBlockState
from ..errors import ProtocolError
from ..params import BusProtocol, SystemConfig
from ..rdc.base import InclusionPolicy, NCEviction
from ..rdc.none import NullNC
from ..rdc.pagecache import PageFrame
from ..rdc.victim import VictimNC
from ..stats import Counters
from ..system.machine import Machine
from ..system.node import Node
from ..trace.record import Trace

_I = int(MESIR.I)
_S = int(MESIR.S)
_E = int(MESIR.E)
_M = int(MESIR.M)
_R = int(MESIR.R)
_O = int(MESIR.O)
_NC_CLEAN = int(NCState.CLEAN)
_NC_DIRTY = int(NCState.DIRTY)
_PC_INVALID = int(PCBlockState.INVALID)


class Simulator:
    """Drives one machine through one trace, tallying monitored events.

    ``tracer`` — an optional :class:`repro.obs.events.EventTracer` — turns
    on structured event emission.  ``profiler`` — an optional
    :class:`repro.obs.profile.StallProfiler` — turns on per-reference
    stall attribution.  Every emission/attribution site sits on the miss
    path behind an ``is None`` guard; the inlined L1 read-hit loop in
    :meth:`run` carries no instrumentation code at all, so simulation
    throughput with both off is unchanged (pinned by
    ``benchmarks/bench_core.py``).
    """

    def __init__(self, machine: Machine, tracer=None, profiler=None) -> None:
        self.machine = machine
        self.config: SystemConfig = machine.config
        self.counters = Counters()
        self.now = 0  # reference index; the LRM clock
        self._tracer = tracer
        self._profiler = profiler
        if tracer is not None:
            machine.directory._tracer = tracer
        if profiler is not None:
            profiler.bind_machine(machine)

        cfg = self.config
        self._block_bits = cfg.block_bits
        self._bpp_bits = cfg.page_bits - cfg.block_bits
        self._bpp_mask = (1 << self._bpp_bits) - 1
        self._ppn = cfg.procs_per_node
        self._l1s = [machine.l1_of(pid) for pid in range(cfg.n_procs)]
        self._nodes = machine.nodes
        self._directory = machine.directory
        self._dir_entries = machine.directory._entries  # hot-path alias
        self._n_nodes = machine.directory.n_nodes
        self._placement = machine.placement
        self._homes = machine.placement._home  # first-touch map, hot-path alias
        self._dir_counters = machine.dir_counters
        self._use_o_state = cfg.protocol is BusProtocol.MOESIR
        self._decrement_on_inval = cfg.pc.decrement_on_invalidation
        # hot-path prebinds: per-pid peer (l1, tag-map) pairs for the bus
        # snoop, and protocol facts that hold machine-wide (every node is
        # built from the same config, so the NC flavour is uniform)
        self._peer_tags = [
            [
                (l1, l1._tag)
                for l1 in self._nodes[pid // self._ppn].l1s
                if l1 is not self._l1s[pid]
            ]
            for pid in range(cfg.n_procs)
        ]
        self._node_tags = [[l1._tag for l1 in node.l1s] for node in self._nodes]
        self._node_of = [pid // self._ppn for pid in range(cfg.n_procs)]
        self._node_by_pid = [self._nodes[i] for i in self._node_of]
        # page-frame dict per node (None when the node has no page cache)
        self._pc_frames = [
            node.pc._frames if node.pc is not None else None for node in self._nodes
        ]
        self._nc_exclusive = bool(self._nodes) and isinstance(
            self._nodes[0].nc, VictimNC
        )
        self._nc_null = bool(self._nodes) and isinstance(self._nodes[0].nc, NullNC)
        # victim NCs expose their backing cache for the inlined exclusive-hit
        # path in _miss; other NC flavours go through _try_nc
        self._nc_caches = [
            node.nc._cache if isinstance(node.nc, VictimNC) else None
            for node in self._nodes
        ]

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    #: references converted to plain Python ints per batch; bounds peak
    #: list memory instead of materialising three full-trace lists at once
    _RUN_CHUNK = 1 << 15

    def run(self, trace: Trace) -> Counters:
        """Simulate the whole trace; returns the accumulated counters.

        Semantically identical to calling :meth:`step` per reference (the
        equivalence is pinned by tests), but the ~90% case — a read hit in
        the issuing processor's L1 — is inlined here over the caches' tag
        maps: no ``step``/``lookup`` calls, block numbers shifted once as a
        numpy vector, attribute loads hoisted out of the loop, and the
        reference/hit tallies accumulated in locals.
        """
        if trace.placement:
            for page, home in trace.placement.items():
                self._placement.touch(page, home)
        c = self.counters
        upgrade = self._upgrade
        miss = self._miss
        # every L1 shares one geometry and uses block-address indexing
        l1_tags = [l1._tag for l1 in self._l1s]
        l1_sets = [l1._sets for l1 in self._l1s]
        set_mask = self._l1s[0]._set_mask if self._l1s else 0
        M, E = _M, _E
        pids_arr = trace.pids
        blocks_arr = trace.addrs >> self._block_bits
        writes_arr = trace.writes
        n = len(pids_arr)
        chunk = self._RUN_CHUNK
        now = self.now
        # reference totals are trace properties; tally them vectorised
        writes_total = int(writes_arr.sum())
        read_hits = write_hits = 0
        for start in range(0, n, chunk):
            stop = start + chunk
            for pid, block, w in zip(
                pids_arr[start:stop].tolist(),
                blocks_arr[start:stop].tolist(),
                writes_arr[start:stop].tolist(),
            ):
                now += 1
                line = l1_tags[pid].get(block)
                if line is not None:
                    # any hit refreshes LRU, exactly as lookup() would
                    lines = l1_sets[pid][block & set_mask]
                    if lines[-1] is not line:
                        lines.remove(line)
                        lines.append(line)
                    if not w:
                        read_hits += 1
                        continue
                    write_hits += 1
                    st = line.state
                    if st == M:
                        continue
                    if st == E:
                        line.state = M
                        continue
                    self.now = now
                    upgrade(pid, block, line)
                    continue
                self.now = now
                miss(pid, block, bool(w))
        self.now = now
        c.reads += n - writes_total
        c.writes += writes_total
        c.l1_read_hits += read_hits
        c.l1_write_hits += write_hits
        return c

    def step(self, pid: int, addr: int, is_write: bool) -> None:
        """Process one shared reference."""
        c = self.counters
        self.now += 1
        block = addr >> self._block_bits
        l1 = self._l1s[pid]
        line = l1.lookup(block)

        if is_write:
            c.writes += 1
        else:
            c.reads += 1

        if line is not None:
            st = line.state
            if not is_write:
                c.l1_read_hits += 1
                return
            if st == _M:
                c.l1_write_hits += 1
                return
            if st == _E:
                line.state = _M
                c.l1_write_hits += 1
                return
            # S, R, or O: write hit needing an upgrade transaction
            c.l1_write_hits += 1
            self._upgrade(pid, block, line)
            return

        self._miss(pid, block, is_write)

    # ------------------------------------------------------------------
    # write upgrades
    # ------------------------------------------------------------------

    def _upgrade(self, pid: int, block: int, line) -> None:
        """Write hit on an S/R copy: gain exclusivity, then mark M."""
        c = self.counters
        node_idx = pid // self._ppn
        node = self._nodes[node_idx]
        page = block >> self._bpp_bits
        home = self._placement.home_of(page)
        assert home is not None  # the block is cached, so the page was touched
        tr = self._tracer
        if tr is not None:
            self._directory.now = self.now
            tr.emit("upgrade", self.now, node=node_idx, block=block)

        # drop every other copy inside the cluster
        my_l1 = self._l1s[pid]
        for l1 in node.l1s:
            if l1 is not my_l1:
                l1.remove(block)
        nc = node.nc
        if home != node_idx:  # the NC holds remote blocks only
            if self._nc_exclusive:
                st = nc.invalidate(block)  # a polluting clean copy, if any
                if st is not None and tr is not None:
                    tr.emit("nc_pollution", self.now, node=node_idx, block=block)
            elif nc.inclusion is not InclusionPolicy.NONE:
                # inclusion NCs must regain a frame for the soon-dirty
                # block; an existing dirty frame becomes stale-clean
                # (ownership moves up to the writing L1)
                nc.downgrade(block)
                ev = nc.on_fetch(block)
                if ev is not None:
                    self._handle_nc_eviction(node, ev)
            else:
                nc.invalidate(block)

        pc = node.pc
        if pc is not None and home != node_idx:
            pc.invalidate_block(page, block & self._bpp_mask)

        invalidate = self._directory.upgrade(block, node_idx)
        for cl in invalidate:
            self._invalidate_cluster(cl, block, page)
        c.remote_invalidations += len(invalidate)
        if home == node_idx:
            c.local_upgrades += 1
        else:
            c.remote_upgrades += 1
        line.state = _M

    # ------------------------------------------------------------------
    # miss handling
    # ------------------------------------------------------------------

    def _miss(self, pid: int, block: int, is_write: bool) -> None:
        node_idx = self._node_of[pid]
        node = self._node_by_pid[pid]
        page = block >> self._bpp_bits
        tr = self._tracer
        if tr is not None:
            self._directory.now = self.now
        # inlined FirstTouchPlacement.touch (one dict probe on the miss path)
        homes = self._homes
        home = homes.get(page)
        if home is None:
            homes[page] = home = node_idx
        local = home == node_idx

        # 1. snoop the cluster bus: peer caches (scan inlined — most misses
        # find no holder, so the common case is three tag-map probes)
        holders = None
        for l1, tag in self._peer_tags[pid]:
            ln = tag.get(block)
            if ln is not None:
                if holders is None:
                    holders = [(l1, ln)]
                else:
                    holders.append((l1, ln))
        if holders is not None:
            self._supply_from_peers(pid, node, block, page, home, is_write, holders)
            return

        if not local:
            # 2. the network cache answers the same bus transaction.  The
            # victim-NC (exclusive) hit is inlined: the frame swaps straight
            # back into the L1, so the whole service is one tag-map pop.
            if self._nc_exclusive:
                nc_cache = self._nc_caches[node_idx]
                line = nc_cache._tag.pop(block, None)
                if line is not None:
                    nc_cache._sets[
                        (block >> nc_cache._shift) & nc_cache._set_mask
                    ].remove(line)
                    c = self.counters
                    if is_write:
                        if line.state == _NC_CLEAN:
                            invalidate = self._directory.upgrade(block, node_idx)
                            for cl in invalidate:
                                self._invalidate_cluster(cl, block, page)
                            c.remote_invalidations += len(invalidate)
                        if node.pc is not None:
                            node.pc.invalidate_block(page, block & self._bpp_mask)
                        self._fill(pid, node, block, page, _M)
                        c.write_nc_hits += 1
                        if tr is not None:
                            tr.emit(
                                "nc_hit", self.now,
                                node=node_idx, block=block, detail="write",
                            )
                        if self._profiler is not None:
                            self._profiler.on_nc_hit(self.now, True)
                        return
                    self._fill(
                        pid, node, block, page,
                        _M if line.state == _NC_DIRTY else _R,
                    )
                    c.read_nc_hits += 1
                    if tr is not None:
                        tr.emit(
                            "nc_hit", self.now,
                            node=node_idx, block=block, detail="read",
                        )
                    if self._profiler is not None:
                        self._profiler.on_nc_hit(self.now, False)
                    return
            elif not self._nc_null and self._try_nc(
                pid, node, node_idx, block, page, is_write
            ):
                return
            # 3. a relocated page's frame in local memory
            if node.pc is not None and self._try_pc(
                pid, node, node_idx, block, page, is_write
            ):
                return

        # 4. home memory: a local access or a remote (monitored) one
        if local:
            self._local_memory_access(pid, node_idx, block, page, is_write)
        else:
            self._remote_access(pid, node, node_idx, block, page, home, is_write)

    # ---- 1: peer caches ---------------------------------------------------

    def _supply_from_peers(
        self,
        pid: int,
        node: Node,
        block: int,
        page: int,
        home: int,
        is_write: bool,
        holders,
    ) -> None:
        c = self.counters
        tr = self._tracer
        if tr is not None:
            tr.emit(
                "bus_c2c", self.now,
                node=node.node_id, block=block,
                detail="write" if is_write else "read",
            )

        node_idx = node.node_id
        local = home == node_idx
        if is_write:
            for l1, ln in holders:
                l1.remove(block)
            nc = node.nc
            if not local:  # the NC holds remote blocks only
                if self._nc_exclusive:
                    st = nc.invalidate(block)
                    if st is not None and tr is not None:
                        tr.emit(
                            "nc_pollution", self.now, node=node_idx, block=block
                        )
                elif nc.inclusion is not InclusionPolicy.NONE:
                    # stale-clean the frame, keep inclusion
                    nc.service_write(block)
                    ev = nc.on_fetch(block)
                    if ev is not None:
                        self._handle_nc_eviction(node, ev)
                else:
                    nc.service_write(block)
            if node.pc is not None and not local:
                node.pc.invalidate_block(page, block & self._bpp_mask)
            invalidate = self._directory.upgrade(block, node_idx)
            for cl in invalidate:
                self._invalidate_cluster(cl, block, page)
            c.remote_invalidations += len(invalidate)
            self._fill(pid, node, block, page, _M)
            if local:
                c.local_write_misses += 1
            else:
                c.write_cluster_hits += 1
                if self._profiler is not None:
                    self._profiler.on_cluster_hit(self.now, True)
            return

        # read: supply via cache-to-cache; a dirty supplier downgrades —
        # to dirty-shared O under MOESIR (no write-back leaves the L1s),
        # to S with a write-back to dispose of under plain MESIR
        frames = self._pc_frames[node_idx]
        page_resident = frames is not None and home != node_idx and page in frames
        for l1, ln in holders:
            if ln.state == _M:
                if self._use_o_state and home != node_idx and not page_resident:
                    ln.state = _O
                else:
                    ln.state = _S
                    self._dispose_downgraded_dirty(node, block, page, home)
            elif ln.state == _E:
                ln.state = _S
        self._fill(pid, node, block, page, _S)
        if local:
            c.local_read_misses += 1
        else:
            c.read_cluster_hits += 1
            if self._profiler is not None:
                self._profiler.on_cluster_hit(self.now, False)

    def _dispose_downgraded_dirty(
        self, node: Node, block: int, page: int, home: int
    ) -> None:
        """An M copy was downgraded to S on the bus; place its write-back.

        Local blocks update local memory for free.  Remote blocks are
        captured by the victim NC (the pollution the paper accepts), by an
        inclusive NC's frame, by a relocated page's local frame — or they
        cross the network to the home node.
        """
        c = self.counters
        tr = self._tracer
        node_idx = node.node_id
        if home == node_idx:
            if self._directory.owner(block) == node_idx:
                self._directory.writeback(block, node_idx)
            return
        frames = self._pc_frames[node_idx]
        if frames is not None:
            frame = frames.get(page)
            if frame is not None:
                frame.states[block & self._bpp_mask] = _NC_DIRTY
                c.writebacks_absorbed += 1
                if tr is not None:
                    tr.emit(
                        "writeback_absorbed", self.now,
                        node=node_idx, block=block, detail="pc",
                    )
                return
        absorbed, ev = node.nc.accept_dirty_victim(block)
        if absorbed:
            c.writebacks_absorbed += 1
            if tr is not None:
                tr.emit(
                    "nc_insert", self.now,
                    node=node_idx, block=block, detail="dirty",
                )
                tr.emit(
                    "writeback_absorbed", self.now,
                    node=node_idx, block=block, detail="nc",
                )
            self._record_nc_victimization(node, block)
            if ev is not None:
                self._handle_nc_eviction(node, ev)
            return
        c.writebacks_remote += 1
        if tr is not None:
            tr.emit(
                "writeback_remote", self.now,
                node=node_idx, block=block, detail="bus",
            )
        self._directory.writeback(block, node_idx)

    # ---- 2: network cache ---------------------------------------------------

    def _try_nc(
        self, pid: int, node: Node, node_idx: int, block: int, page: int, is_write: bool
    ) -> bool:
        c = self.counters
        nc = node.nc
        if is_write:
            st = nc.service_write(block)
            if st is None:
                return False
            if st == _NC_CLEAN:
                invalidate = self._directory.upgrade(block, node_idx)
                for cl in invalidate:
                    self._invalidate_cluster(cl, block, page)
                c.remote_invalidations += len(invalidate)
            if node.pc is not None:
                node.pc.invalidate_block(page, block & self._bpp_mask)
            self._fill(pid, node, block, page, _M)
            c.write_nc_hits += 1
            if self._tracer is not None:
                self._tracer.emit(
                    "nc_hit", self.now, node=node_idx, block=block, detail="write"
                )
            if self._profiler is not None:
                self._profiler.on_nc_hit(self.now, True)
            return True

        st = nc.service_read(block)
        if st is None:
            return False
        if self._nc_exclusive:
            # exclusive: the block moved out of the NC into the L1
            fill = _M if st == _NC_DIRTY else _R
        else:
            fill = _S  # the NC keeps the frame (and the dirtiness, if any)
        self._fill(pid, node, block, page, fill)
        c.read_nc_hits += 1
        if self._tracer is not None:
            self._tracer.emit(
                "nc_hit", self.now, node=node_idx, block=block, detail="read"
            )
        if self._profiler is not None:
            self._profiler.on_nc_hit(self.now, False)
        return True

    # ---- 3: page cache ---------------------------------------------------------

    def _try_pc(
        self, pid: int, node: Node, node_idx: int, block: int, page: int, is_write: bool
    ) -> bool:
        frames = self._pc_frames[node_idx]
        if frames is None:
            return False
        frame = frames.get(page)
        if frame is None:
            return False
        offset = block & self._bpp_mask
        st = frame.states[offset]
        if st == _PC_INVALID:
            return False
        c = self.counters
        pc = node.pc
        # inlined PageCache.record_hit (LRM clock + saturating hit counter)
        frame.last_miss = self.now
        if frame.hits < pc.hit_counter_max:
            frame.hits += 1
        if is_write:
            if st == _NC_CLEAN:  # PCBlockState.CLEAN has the same value
                invalidate = self._directory.upgrade(block, node_idx)
                for cl in invalidate:
                    self._invalidate_cluster(cl, block, page)
                c.remote_invalidations += len(invalidate)
            pc.invalidate_block(page, offset)  # ownership moves to the L1
            self._fill(pid, node, block, page, _M)
            c.write_pc_hits += 1
        else:
            self._fill(pid, node, block, page, _S)
            c.read_pc_hits += 1
        if self._tracer is not None:
            self._tracer.emit(
                "pc_hit", self.now,
                node=node_idx, block=block,
                detail="write" if is_write else "read",
            )
        if self._profiler is not None:
            self._profiler.on_pc_hit(self.now, is_write)
        return True

    # ---- 4a: local home memory ---------------------------------------------------

    def _local_memory_access(
        self, pid: int, node_idx: int, block: int, page: int, is_write: bool
    ) -> None:
        c = self.counters
        reply = self._directory.access(block, node_idx, is_write)
        owner = reply.owner_to_flush
        if owner is not None:
            self._flush_owner(owner, block, page, is_write)
        invalidate = reply.invalidate
        if invalidate:
            for cl in invalidate:
                if cl != owner:
                    self._invalidate_cluster(cl, block, page)
            c.remote_invalidations += len(invalidate) - (owner in invalidate)
        node = self._nodes[node_idx]
        if is_write:
            fill = _M
            c.local_write_misses += 1
        else:
            only_us = self._directory.presence_mask(block) == (1 << node_idx)
            fill = _E if only_us else _S
            c.local_read_misses += 1
        self._fill(pid, node, block, page, fill)

    # ---- 4b: remote access ----------------------------------------------------------

    def _remote_access(
        self,
        pid: int,
        node: Node,
        node_idx: int,
        block: int,
        page: int,
        home: int,
        is_write: bool,
    ) -> None:
        c = self.counters
        # Directory.access inlined (this is every monitored remote access):
        # same bookkeeping, but no DirectoryReply object and no invalidation
        # tuple — the presence mask is walked directly in the rare case one
        # is needed.
        bit = 1 << node_idx
        entry = self._dir_entries.get(block)
        if entry is None:
            entry = [0, -1]
            self._dir_entries[block] = entry
        presence = entry[0]
        owner = entry[1]
        if owner == node_idx:
            raise ProtocolError(
                f"cluster {node_idx} re-requested block {block:#x} it owns dirty"
            )
        is_capacity = presence & bit
        if is_write:
            others = presence & ~bit
            entry[0] = bit
            entry[1] = node_idx
        else:
            others = 0
            entry[0] = presence | bit
            # a read of a dirty block forces a sharing write-back (no O
            # state at the directory): memory updates, ownership drops
            entry[1] = -1
        if owner < 0:
            owner = None

        if owner is not None:
            self._flush_owner(owner, block, page, is_write)
        else:
            # The home cluster may hold the block E (granted when it was the
            # sole sharer) or M (after a silent E->M write hit) that the
            # directory cannot see.  A remote request rides the home node's
            # bus, so those copies are downgraded (read) or invalidated
            # (write) exactly as a real snooping bus would — without this, a
            # stale E copy could silently become M while remote copies exist.
            for i, tag in enumerate(self._node_tags[home]):
                ln = tag.get(block)
                if ln is not None and (ln.state == _M or ln.state == _E):
                    if is_write:
                        self._nodes[home].l1s[i].remove(block)
                    else:
                        ln.state = _S
                    break  # E/M are exclusive; no other copy can exist

        if others:
            n_inval = 0
            for cl in range(self._n_nodes):
                if (others >> cl) & 1:
                    n_inval += 1
                    if cl != owner:
                        self._invalidate_cluster(cl, block, page)
            c.remote_invalidations += n_inval - (
                owner is not None and (others >> owner) & 1
            )

        if is_capacity:
            c.remote_capacity += 1
        else:
            c.remote_necessary += 1
        if is_write:
            c.write_remote += 1
        else:
            c.read_remote += 1
        if self._profiler is not None:
            self._profiler.on_remote(self.now, is_write)
        tr = self._tracer
        if tr is not None:
            # Directory.access is inlined above, so the event is emitted
            # here (the directory object never sees this transaction)
            tr.emit(
                "dir_access", self.now,
                node=node_idx, block=block,
                detail="capacity" if is_capacity else "necessary",
            )

        frames = self._pc_frames[node_idx]
        page_resident = frames is not None and page in frames

        # R-NUMA relocation counters live at the directory and count
        # capacity misses to pages not yet relocated
        if (
            is_capacity
            and self._dir_counters is not None
            and frames is not None
            and not page_resident
        ):
            assert node.threshold is not None
            if self._dir_counters.record_capacity_miss(
                page, node_idx, node.threshold.value
            ):
                self._relocate_page(node, page)
                self._dir_counters.reset(page, node_idx)
                page_resident = True

        if page_resident:
            frame = frames[page]
            if is_write:
                frame.last_miss = self.now  # the page did miss
            else:
                # inlined PageCache.record_fill of a clean block
                frame.states[block & self._bpp_mask] = _NC_CLEAN
                frame.last_miss = self.now
                c.pc_fills += 1
            fill = _M if is_write else _S  # relocated pages behave locally
        else:
            # allocate-on-miss NCs take a frame for the fetched block
            # (victim NCs never do — skip the no-op call on their hot path)
            if not self._nc_exclusive and not self._nc_null:
                ev = node.nc.on_fetch(block)
                if ev is not None:
                    self._handle_nc_eviction(node, ev)
            fill = _M if is_write else _R

        self._fill(pid, node, block, page, fill)

    # ------------------------------------------------------------------
    # fills and victim disposal
    # ------------------------------------------------------------------

    def _fill(self, pid: int, node: Node, block: int, page: int, state: int) -> None:
        """Insert the fetched block into the requesting L1, then dispose of
        the line it displaced.

        This is :meth:`SetAssocCache.insert` inlined — every miss ends
        here, and the call overhead is measurable at trace scale.
        """
        l1 = self._l1s[pid]
        lines = l1._sets[block & l1._set_mask]
        if len(lines) >= l1.assoc:
            evicted = lines.pop(0)
            del l1._tag[evicted.block]
        else:
            evicted = None
        line = CacheLine(block, state)
        lines.append(line)
        l1._tag[block] = line
        if evicted is not None:
            self._handle_l1_victim(node, evicted)

    def _handle_l1_victim(self, node: Node, line) -> None:
        st = line.state
        if st == _S or st == _E:
            return  # clean non-masters drop silently (and E is local-only)
        block = line.block
        page = block >> self._bpp_bits
        node_idx = node.node_id
        home = self._homes.get(page)
        c = self.counters
        tr = self._tracer

        if st == _M or st == _O:
            if home == node_idx:
                if self._directory.owner(block) == node_idx:
                    self._directory.writeback(block, node_idx)
                return  # local memory write, free
            frames = self._pc_frames[node_idx]
            if frames is not None:
                frame = frames.get(page)
                if frame is not None:
                    frame.states[block & self._bpp_mask] = _NC_DIRTY
                    c.writebacks_absorbed += 1
                    if tr is not None:
                        tr.emit(
                            "writeback_absorbed", self.now,
                            node=node_idx, block=block, detail="pc",
                        )
                    return
            absorbed, ev = node.nc.accept_dirty_victim(block)
            if absorbed:
                c.writebacks_absorbed += 1
                if tr is not None:
                    tr.emit(
                        "nc_insert", self.now,
                        node=node_idx, block=block, detail="dirty",
                    )
                    tr.emit(
                        "writeback_absorbed", self.now,
                        node=node_idx, block=block, detail="nc",
                    )
                self._record_nc_victimization(node, block)
                if ev is not None:
                    self._handle_nc_eviction(node, ev)
                return
            c.writebacks_remote += 1
            if tr is not None:
                tr.emit(
                    "writeback_remote", self.now,
                    node=node_idx, block=block, detail="l1",
                )
            self._directory.writeback(block, node_idx)
            return

        if st == _R:
            # replacement transaction for the last clean copy in the node
            for tag in self._node_tags[node_idx]:
                ln = tag.get(block)
                if ln is not None and ln.state == _S:
                    ln.state = _R  # a peer inherits mastership
                    return
            frames = self._pc_frames[node_idx]
            if frames is not None:
                frame = frames.get(page)
                if frame is not None:
                    offset = block & self._bpp_mask
                    if frame.states[offset] == _PC_INVALID:
                        frame.states[offset] = _NC_CLEAN  # deposit, LRM untouched
                    return
            accepted, ev = node.nc.accept_clean_victim(block)
            if accepted:
                if tr is not None:
                    tr.emit(
                        "nc_insert", self.now,
                        node=node_idx, block=block, detail="clean",
                    )
                self._record_nc_victimization(node, block)
            if ev is not None:
                self._handle_nc_eviction(node, ev)
            return

        raise ProtocolError(f"victimised line in impossible state {st}")

    def _handle_nc_eviction(self, node: Node, ev: NCEviction) -> None:
        """Dispose of a block replaced out of the NC, enforcing inclusion."""
        c = self.counters
        c.nc_evictions += 1
        block = ev.block
        dirty = ev.dirty
        inclusion = node.nc.inclusion
        if inclusion is InclusionPolicy.DIRTY_ONLY:
            for l1 in node.l1s:
                ln = l1.peek(block)
                if ln is not None and (ln.state == _M or ln.state == _O):
                    l1.remove(block)
                    c.nc_inclusion_evictions += 1
                    dirty = True
                    break  # at most one dirty copy within the cluster
        elif inclusion is InclusionPolicy.FULL:
            for l1 in node.l1s:
                ln = l1.remove(block)
                if ln is not None:
                    c.nc_inclusion_evictions += 1
                    if ln.state == _M or ln.state == _O:
                        dirty = True

        page = block >> self._bpp_bits
        node_idx = node.node_id
        tr = self._tracer
        if tr is not None:
            tr.emit(
                "nc_evict", self.now,
                node=node_idx, block=block,
                detail="dirty" if dirty else "clean",
            )
        frames = self._pc_frames[node_idx]
        frame = frames.get(page) if frames is not None else None
        if dirty:
            if frame is not None:
                frame.states[block & self._bpp_mask] = _NC_DIRTY
                c.writebacks_absorbed += 1
                if tr is not None:
                    tr.emit(
                        "writeback_absorbed", self.now,
                        node=node_idx, block=block, detail="pc",
                    )
            else:
                c.writebacks_remote += 1
                if tr is not None:
                    tr.emit(
                        "writeback_remote", self.now,
                        node=node_idx, block=block, detail="nc",
                    )
                self._directory.writeback(block, node_idx)
        else:
            if frame is not None:
                offset = block & self._bpp_mask
                if frame.states[offset] == _PC_INVALID:
                    frame.states[offset] = _NC_CLEAN

    # ------------------------------------------------------------------
    # inter-cluster actions
    # ------------------------------------------------------------------

    def _invalidate_cluster(self, cl: int, block: int, page: int) -> None:
        """Deliver an invalidation for a (clean-copy) block to one cluster."""
        if self._tracer is not None:
            self._tracer.emit("invalidate", self.now, node=cl, block=block)
        node = self._nodes[cl]
        found = False
        for l1 in node.l1s:
            ln = l1.remove(block)
            if ln is not None:
                found = True
                if ln.state == _M or ln.state == _O:
                    raise ProtocolError(
                        f"invalidation found a dirty copy of {block:#x} in "
                        f"cluster {cl}; owner flush should have handled it"
                    )
        st = node.nc.invalidate(block)
        if st is not None:
            found = True
        if st == _NC_DIRTY:
            raise ProtocolError(
                f"invalidation found a dirty NC copy of {block:#x} in cluster {cl}"
            )
        if node.pc is not None:
            pc_state = node.pc.block_state(page, block & self._bpp_mask)
            if pc_state != _PC_INVALID:
                found = True
            was_dirty = node.pc.invalidate_block(page, block & self._bpp_mask)
            if was_dirty:
                raise ProtocolError(
                    f"invalidation found a dirty PC copy of {block:#x} in "
                    f"cluster {cl}"
                )
        if not found and self._decrement_on_inval:
            # Sec. 3.4: the copy was already victimised — the count that
            # victimisation added predicts a coherence miss now, so undo it
            if self._dir_counters is not None:
                self._dir_counters.decrement(page, cl)
            elif node.nc_counters is not None:
                set_idx = node.nc.set_index_of(block)
                if set_idx is not None:
                    node.nc_counters.decrement(set_idx)

    def _flush_owner(self, cl: int, block: int, page: int, for_write: bool) -> None:
        """The directory's owner must surrender its dirty copy.

        For a read the copy is downgraded and the data written back home
        (one network write-back); for a write the copy is invalidated and
        the data forwarded with the reply (no extra transfer counted).
        """
        c = self.counters
        tr = self._tracer
        if tr is not None:
            tr.emit(
                "owner_flush", self.now,
                node=cl, block=block,
                detail="write" if for_write else "read",
            )
        node = self._nodes[cl]
        offset = block & self._bpp_mask
        found = False
        for l1 in node.l1s:
            ln = l1.peek(block)
            if ln is not None and (ln.state == _M or ln.state == _O):
                if for_write:
                    l1.remove(block)
                else:
                    ln.state = _S
                    # a stale-dirty frame below the L1 copy cleans too
                    node.nc.downgrade(block)
                found = True
                break
        if not found:
            if node.nc.probe(block) == _NC_DIRTY:
                if for_write:
                    node.nc.invalidate(block)
                else:
                    node.nc.downgrade(block)
                found = True
        if not found and node.pc is not None:
            if node.pc.block_state(page, offset) == _NC_DIRTY:
                if for_write:
                    node.pc.invalidate_block(page, offset)
                else:
                    node.pc.mark_clean(page, offset)
                found = True
        if not found:
            raise ProtocolError(
                f"directory says cluster {cl} owns block {block:#x} dirty, "
                "but no dirty copy exists there"
            )
        if for_write:
            # every remaining (clean) copy in the owner cluster dies too
            for l1 in node.l1s:
                l1.remove(block)
            node.nc.invalidate(block)
            if node.pc is not None:
                node.pc.invalidate_block(page, offset)
        else:
            c.writebacks_remote += 1  # the sharing write-back crosses the network
            if tr is not None:
                tr.emit(
                    "writeback_remote", self.now,
                    node=cl, block=block, detail="sharing",
                )

    # ------------------------------------------------------------------
    # page relocation
    # ------------------------------------------------------------------

    def _record_nc_victimization(self, node: Node, block: int) -> None:
        """A victim entered the NC; `vxp` may trigger a page relocation."""
        self.counters.nc_insertions += 1
        counters = node.nc_counters
        if counters is None:
            return
        nc = node.nc
        set_idx = nc.set_index_of(block)
        assert set_idx is not None and node.threshold is not None
        if not counters.record_victimization(set_idx, node.threshold.value):
            return
        pc = node.pc
        assert pc is not None and isinstance(nc, VictimNC)
        exclude = {b >> self._bpp_bits for b in nc.set_blocks(set_idx) if (
            b >> self._bpp_bits) in pc}
        page = counters.predominant_page(nc.set_blocks(set_idx), exclude)
        counters.reset(set_idx)
        if page is not None:
            self._relocate_page(node, page)

    def _relocate_page(self, node: Node, page: int) -> None:
        """Relocate a remote page into the node's page cache (225 cycles)."""
        c = self.counters
        tr = self._tracer
        pc = node.pc
        assert pc is not None
        c.pc_relocations += 1
        if tr is not None:
            tr.emit("pc_relocate", self.now, node=node.node_id, detail=str(page))
        if self._profiler is not None:
            self._profiler.on_relocation(self.now)
        evicted = pc.allocate(page, self.now)
        if evicted is not None:
            c.pc_evictions += 1
            if tr is not None:
                tr.emit(
                    "pc_evict", self.now,
                    node=node.node_id, detail=str(evicted.page),
                )
            self._flush_page_from_cluster(node, evicted)
            assert node.threshold is not None
            if node.threshold.on_frame_reuse(evicted.hits):
                pc.reset_hit_counters()

    def _flush_page_from_cluster(self, node: Node, frame: PageFrame) -> None:
        """A page leaves the PC: purge it from the whole cluster.

        Dirty blocks (in the frame, the L1s, or the NC) are written home;
        clean copies are dropped.  The re-mapping makes every future access
        to the page miss again — the cost the paper attributes to
        relocation churn.
        """
        c = self.counters
        page = frame.page
        node_idx = node.node_id
        base = page << self._bpp_bits
        for offset in range(self.config.blocks_per_page):
            block = base + offset
            dirty = frame.states[offset] == _NC_DIRTY
            for l1 in node.l1s:
                ln = l1.remove(block)
                if ln is not None and (ln.state == _M or ln.state == _O):
                    dirty = True
            st = node.nc.invalidate(block)
            if st == _NC_DIRTY:
                dirty = True
            if dirty:
                c.pc_flush_writebacks += 1
                self._directory.writeback(block, node_idx)
