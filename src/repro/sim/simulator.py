"""The trace-driven protocol engine.

One :class:`Simulator` drives one :class:`~repro.system.machine.Machine`
through an interleaved shared-reference trace, playing the roles of every
cluster bus and pseudo-processor:

* intra-cluster MESIR snooping (cache-to-cache supply, mastership transfer
  on R-state replacement, M->S downgrades);
* the network cache's bus-side behaviour for each organisation (victim
  capture, allocate-on-miss, inclusion enforcement on NC evictions);
* the page cache's local-memory behaviour (block fills, dirty absorption,
  LRM eviction with cluster-wide page flush);
* the inter-cluster directory protocol (presence bits, owner flush,
  invalidations, capacity/necessary classification);
* both page-relocation mechanisms (R-NUMA directory counters and the
  `vxp` NC-set victimisation counters) with fixed or adaptive thresholds.

The simulator is *functional with event counting*: it mutates coherence
state exactly, counts every monitored event in a :class:`repro.stats.Counters`,
and leaves latency arithmetic to :mod:`repro.sim.latency` (the paper's
model is contention-free, so counts x constants is exact).

Invariant checked throughout (and by the hypothesis tests): at most one
dirty copy of any block machine-wide; the directory's owner always has the
dirty data in an L1, its NC, or its PC frame.
"""

from __future__ import annotations

from typing import Optional

from ..coherence.states import MESIR, NCState, PCBlockState
from ..errors import ProtocolError
from ..params import BusProtocol, SystemConfig
from ..rdc.base import InclusionPolicy, NCEviction
from ..rdc.pagecache import PageFrame
from ..rdc.victim import VictimNC
from ..stats import Counters, MissClass
from ..system.machine import Machine
from ..system.node import Node
from ..trace.record import Trace

_I = int(MESIR.I)
_S = int(MESIR.S)
_E = int(MESIR.E)
_M = int(MESIR.M)
_R = int(MESIR.R)
_O = int(MESIR.O)
_NC_CLEAN = int(NCState.CLEAN)
_NC_DIRTY = int(NCState.DIRTY)
_PC_INVALID = int(PCBlockState.INVALID)


class Simulator:
    """Drives one machine through one trace, tallying monitored events."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.config: SystemConfig = machine.config
        self.counters = Counters()
        self.now = 0  # reference index; the LRM clock

        cfg = self.config
        self._block_bits = cfg.block_bits
        self._bpp_bits = cfg.page_bits - cfg.block_bits
        self._bpp_mask = (1 << self._bpp_bits) - 1
        self._ppn = cfg.procs_per_node
        self._l1s = [machine.l1_of(pid) for pid in range(cfg.n_procs)]
        self._nodes = machine.nodes
        self._directory = machine.directory
        self._placement = machine.placement
        self._dir_counters = machine.dir_counters
        self._use_o_state = cfg.protocol is BusProtocol.MOESIR
        self._decrement_on_inval = cfg.pc.decrement_on_invalidation

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def run(self, trace: Trace) -> Counters:
        """Simulate the whole trace; returns the accumulated counters."""
        if trace.placement:
            for page, home in trace.placement.items():
                self._placement.touch(page, home)
        step = self.step
        for pid, addr, w in zip(
            trace.pids.tolist(), trace.addrs.tolist(), trace.writes.tolist()
        ):
            step(pid, addr, bool(w))
        return self.counters

    def step(self, pid: int, addr: int, is_write: bool) -> None:
        """Process one shared reference."""
        c = self.counters
        self.now += 1
        block = addr >> self._block_bits
        l1 = self._l1s[pid]
        line = l1.lookup(block)

        if is_write:
            c.writes += 1
        else:
            c.reads += 1

        if line is not None:
            st = line.state
            if not is_write:
                c.l1_read_hits += 1
                return
            if st == _M:
                c.l1_write_hits += 1
                return
            if st == _E:
                line.state = _M
                c.l1_write_hits += 1
                return
            # S, R, or O: write hit needing an upgrade transaction
            c.l1_write_hits += 1
            self._upgrade(pid, block, line)
            return

        self._miss(pid, block, is_write)

    # ------------------------------------------------------------------
    # write upgrades
    # ------------------------------------------------------------------

    def _upgrade(self, pid: int, block: int, line) -> None:
        """Write hit on an S/R copy: gain exclusivity, then mark M."""
        c = self.counters
        node_idx = pid // self._ppn
        node = self._nodes[node_idx]
        page = block >> self._bpp_bits
        home = self._placement.home_of(page)
        assert home is not None  # the block is cached, so the page was touched

        # drop every other copy inside the cluster
        my_l1 = self._l1s[pid]
        for l1 in node.l1s:
            if l1 is not my_l1:
                l1.remove(block)
        nc = node.nc
        if home != node_idx:  # the NC holds remote blocks only
            if isinstance(nc, VictimNC):
                nc.invalidate(block)  # a polluting clean copy, if any
            elif nc.inclusion is not InclusionPolicy.NONE:
                # inclusion NCs must regain a frame for the soon-dirty
                # block; an existing dirty frame becomes stale-clean
                # (ownership moves up to the writing L1)
                nc.downgrade(block)
                ev = nc.on_fetch(block)
                if ev is not None:
                    self._handle_nc_eviction(node, ev)
            else:
                nc.invalidate(block)

        pc = node.pc
        if pc is not None and home != node_idx:
            pc.invalidate_block(page, block & self._bpp_mask)

        invalidate = self._directory.upgrade(block, node_idx)
        for cl in invalidate:
            self._invalidate_cluster(cl, block, page)
        c.remote_invalidations += len(invalidate)
        if home == node_idx:
            c.local_upgrades += 1
        else:
            c.remote_upgrades += 1
        line.state = _M

    # ------------------------------------------------------------------
    # miss handling
    # ------------------------------------------------------------------

    def _miss(self, pid: int, block: int, is_write: bool) -> None:
        c = self.counters
        node_idx = pid // self._ppn
        node = self._nodes[node_idx]
        page = block >> self._bpp_bits
        home = self._placement.touch(page, node_idx)
        local = home == node_idx

        # 1. snoop the cluster bus: peer caches
        if self._try_peer_supply(pid, node, block, page, home, is_write):
            return

        # 2. the network cache answers the same bus transaction
        if not local and self._try_nc(pid, node, node_idx, block, page, is_write):
            return

        # 3. a relocated page's frame in local memory
        if not local and self._try_pc(pid, node, node_idx, block, page, is_write):
            return

        # 4. home memory: a local access or a remote (monitored) one
        if local:
            self._local_memory_access(pid, node_idx, block, page, is_write)
        else:
            self._remote_access(pid, node, node_idx, block, page, is_write)

    # ---- 1: peer caches ---------------------------------------------------

    def _try_peer_supply(
        self, pid: int, node: Node, block: int, page: int, home: int, is_write: bool
    ) -> bool:
        c = self.counters
        my_l1 = self._l1s[pid]
        holders = []
        for l1 in node.l1s:
            if l1 is my_l1:
                continue
            ln = l1.peek(block)
            if ln is not None:
                holders.append((l1, ln))
        if not holders:
            return False

        node_idx = node.node_id
        local = home == node_idx
        if is_write:
            for l1, ln in holders:
                l1.remove(block)
            nc = node.nc
            if not local:  # the NC holds remote blocks only
                if isinstance(nc, VictimNC):
                    nc.invalidate(block)
                elif nc.inclusion is not InclusionPolicy.NONE:
                    # stale-clean the frame, keep inclusion
                    nc.service_write(block)
                    ev = nc.on_fetch(block)
                    if ev is not None:
                        self._handle_nc_eviction(node, ev)
                else:
                    nc.service_write(block)
            if node.pc is not None and not local:
                node.pc.invalidate_block(page, block & self._bpp_mask)
            invalidate = self._directory.upgrade(block, node_idx)
            for cl in invalidate:
                self._invalidate_cluster(cl, block, page)
            c.remote_invalidations += len(invalidate)
            self._fill(pid, node, block, page, _M)
            if local:
                c.local_write_misses += 1
            else:
                c.write_cluster_hits += 1
            return True

        # read: supply via cache-to-cache; a dirty supplier downgrades —
        # to dirty-shared O under MOESIR (no write-back leaves the L1s),
        # to S with a write-back to dispose of under plain MESIR
        pc = node.pc
        page_resident = pc is not None and home != node_idx and page in pc
        for l1, ln in holders:
            if ln.state == _M:
                if self._use_o_state and home != node_idx and not page_resident:
                    ln.state = _O
                else:
                    ln.state = _S
                    self._dispose_downgraded_dirty(node, block, page, home)
            elif ln.state == _E:
                ln.state = _S
        self._fill(pid, node, block, page, _S)
        if local:
            c.local_read_misses += 1
        else:
            c.read_cluster_hits += 1
        return True

    def _dispose_downgraded_dirty(
        self, node: Node, block: int, page: int, home: int
    ) -> None:
        """An M copy was downgraded to S on the bus; place its write-back.

        Local blocks update local memory for free.  Remote blocks are
        captured by the victim NC (the pollution the paper accepts), by an
        inclusive NC's frame, by a relocated page's local frame — or they
        cross the network to the home node.
        """
        c = self.counters
        node_idx = node.node_id
        if home == node_idx:
            if self._directory.owner(block) == node_idx:
                self._directory.writeback(block, node_idx)
            return
        pc = node.pc
        if pc is not None and page in pc:
            pc.absorb_dirty(page, block & self._bpp_mask)
            c.writebacks_absorbed += 1
            return
        absorbed, ev = node.nc.accept_dirty_victim(block)
        if absorbed:
            c.writebacks_absorbed += 1
            self._record_nc_victimization(node, block)
            if ev is not None:
                self._handle_nc_eviction(node, ev)
            return
        c.writebacks_remote += 1
        self._directory.writeback(block, node_idx)

    # ---- 2: network cache ---------------------------------------------------

    def _try_nc(
        self, pid: int, node: Node, node_idx: int, block: int, page: int, is_write: bool
    ) -> bool:
        c = self.counters
        nc = node.nc
        if is_write:
            st = nc.service_write(block)
            if st is None:
                return False
            if st == _NC_CLEAN:
                invalidate = self._directory.upgrade(block, node_idx)
                for cl in invalidate:
                    self._invalidate_cluster(cl, block, page)
                c.remote_invalidations += len(invalidate)
            if node.pc is not None:
                node.pc.invalidate_block(page, block & self._bpp_mask)
            self._fill(pid, node, block, page, _M)
            c.write_nc_hits += 1
            return True

        st = nc.service_read(block)
        if st is None:
            return False
        if isinstance(nc, VictimNC):
            # exclusive: the block moved out of the NC into the L1
            fill = _M if st == _NC_DIRTY else _R
        else:
            fill = _S  # the NC keeps the frame (and the dirtiness, if any)
        self._fill(pid, node, block, page, fill)
        c.read_nc_hits += 1
        return True

    # ---- 3: page cache ---------------------------------------------------------

    def _try_pc(
        self, pid: int, node: Node, node_idx: int, block: int, page: int, is_write: bool
    ) -> bool:
        c = self.counters
        pc = node.pc
        if pc is None:
            return False
        offset = block & self._bpp_mask
        st = pc.block_state(page, offset)
        if st == _PC_INVALID:
            return False
        pc.record_hit(page, self.now)
        if is_write:
            if st == _NC_CLEAN:  # PCBlockState.CLEAN has the same value
                invalidate = self._directory.upgrade(block, node_idx)
                for cl in invalidate:
                    self._invalidate_cluster(cl, block, page)
                c.remote_invalidations += len(invalidate)
            pc.invalidate_block(page, offset)  # ownership moves to the L1
            self._fill(pid, node, block, page, _M)
            c.write_pc_hits += 1
        else:
            self._fill(pid, node, block, page, _S)
            c.read_pc_hits += 1
        return True

    # ---- 4a: local home memory ---------------------------------------------------

    def _local_memory_access(
        self, pid: int, node_idx: int, block: int, page: int, is_write: bool
    ) -> None:
        c = self.counters
        reply = self._directory.access(block, node_idx, is_write)
        if reply.owner_to_flush is not None:
            self._flush_owner(reply.owner_to_flush, block, page, is_write)
        for cl in reply.invalidate:
            if cl != reply.owner_to_flush:
                self._invalidate_cluster(cl, block, page)
        c.remote_invalidations += sum(
            1 for cl in reply.invalidate if cl != reply.owner_to_flush
        )
        node = self._nodes[node_idx]
        if is_write:
            fill = _M
            c.local_write_misses += 1
        else:
            only_us = self._directory.presence_mask(block) == (1 << node_idx)
            fill = _E if only_us else _S
            c.local_read_misses += 1
        self._fill(pid, node, block, page, fill)

    # ---- 4b: remote access ----------------------------------------------------------

    def _remote_access(
        self, pid: int, node: Node, node_idx: int, block: int, page: int, is_write: bool
    ) -> None:
        c = self.counters
        home = self._placement.home_of(page)
        assert home is not None and home != node_idx
        reply = self._directory.access(block, node_idx, is_write)

        if reply.owner_to_flush is not None:
            self._flush_owner(reply.owner_to_flush, block, page, is_write)
        else:
            # the home cluster may hold a silently-dirtied (E->M) copy that
            # its bus snoop would catch
            self._snoop_home_dirty(home, block, is_write)

        for cl in reply.invalidate:
            if cl != reply.owner_to_flush:
                self._invalidate_cluster(cl, block, page)
        c.remote_invalidations += sum(
            1 for cl in reply.invalidate if cl != reply.owner_to_flush
        )

        if reply.miss_class is MissClass.CAPACITY:
            c.remote_capacity += 1
        else:
            c.remote_necessary += 1
        if is_write:
            c.write_remote += 1
        else:
            c.read_remote += 1

        pc = node.pc
        page_resident = pc is not None and page in pc

        # R-NUMA relocation counters live at the directory and count
        # capacity misses to pages not yet relocated
        if (
            self._dir_counters is not None
            and reply.miss_class is MissClass.CAPACITY
            and pc is not None
            and not page_resident
        ):
            assert node.threshold is not None
            if self._dir_counters.record_capacity_miss(
                page, node_idx, node.threshold.value
            ):
                self._relocate_page(node, page)
                self._dir_counters.reset(page, node_idx)
                page_resident = True

        if page_resident:
            assert pc is not None
            offset = block & self._bpp_mask
            if is_write:
                pc.frame(page).last_miss = self.now  # the page did miss
            else:
                pc.record_fill(page, offset, self.now)
                c.pc_fills += 1
            fill = _M if is_write else _S  # relocated pages behave locally
        else:
            # allocate-on-miss NCs take a frame for the fetched block
            ev = node.nc.on_fetch(block)
            if ev is not None:
                self._handle_nc_eviction(node, ev)
            fill = _M if is_write else _R

        self._fill(pid, node, block, page, fill)

    def _snoop_home_dirty(self, home: int, block: int, is_write: bool) -> None:
        """Home-bus snoop for exclusive copies the directory cannot see.

        The home cluster may hold the block E (granted when it was the sole
        sharer) or M (after a silent E->M write hit).  A remote request
        rides the home node's bus, so those copies are downgraded (read) or
        invalidated (write) exactly as a real snooping bus would — without
        this, a stale E copy could silently become M while remote copies
        exist.
        """
        home_node = self._nodes[home]
        for l1 in home_node.l1s:
            ln = l1.peek(block)
            if ln is not None and (ln.state == _M or ln.state == _E):
                if is_write:
                    l1.remove(block)
                else:
                    ln.state = _S
                return  # E/M are exclusive; no other copy can exist

    # ------------------------------------------------------------------
    # fills and victim disposal
    # ------------------------------------------------------------------

    def _fill(self, pid: int, node: Node, block: int, page: int, state: int) -> None:
        """Insert the fetched block into the requesting L1, then dispose of
        the line it displaced."""
        evicted = self._l1s[pid].insert(block, state)
        if evicted is not None:
            self._handle_l1_victim(node, evicted)

    def _handle_l1_victim(self, node: Node, line) -> None:
        st = line.state
        if st == _S or st == _E:
            return  # clean non-masters drop silently (and E is local-only)
        block = line.block
        page = block >> self._bpp_bits
        node_idx = node.node_id
        home = self._placement.home_of(page)
        c = self.counters

        if st == _M or st == _O:
            if home == node_idx:
                if self._directory.owner(block) == node_idx:
                    self._directory.writeback(block, node_idx)
                return  # local memory write, free
            pc = node.pc
            if pc is not None and page in pc:
                pc.absorb_dirty(page, block & self._bpp_mask)
                c.writebacks_absorbed += 1
                return
            absorbed, ev = node.nc.accept_dirty_victim(block)
            if absorbed:
                c.writebacks_absorbed += 1
                self._record_nc_victimization(node, block)
                if ev is not None:
                    self._handle_nc_eviction(node, ev)
                return
            c.writebacks_remote += 1
            self._directory.writeback(block, node_idx)
            return

        if st == _R:
            # replacement transaction for the last clean copy in the node
            for l1 in node.l1s:
                ln = l1.peek(block)
                if ln is not None and ln.state == _S:
                    ln.state = _R  # a peer inherits mastership
                    return
            pc = node.pc
            if pc is not None and page in pc:
                frame = pc.frame(page)
                offset = block & self._bpp_mask
                if frame.states[offset] == _PC_INVALID:
                    frame.states[offset] = _NC_CLEAN  # deposit, LRM untouched
                return
            accepted, ev = node.nc.accept_clean_victim(block)
            if accepted:
                self._record_nc_victimization(node, block)
            if ev is not None:
                self._handle_nc_eviction(node, ev)
            return

        raise ProtocolError(f"victimised line in impossible state {st}")

    def _handle_nc_eviction(self, node: Node, ev: NCEviction) -> None:
        """Dispose of a block replaced out of the NC, enforcing inclusion."""
        c = self.counters
        c.nc_evictions += 1
        block = ev.block
        dirty = ev.dirty
        inclusion = node.nc.inclusion
        if inclusion is InclusionPolicy.DIRTY_ONLY:
            for l1 in node.l1s:
                ln = l1.peek(block)
                if ln is not None and (ln.state == _M or ln.state == _O):
                    l1.remove(block)
                    c.nc_inclusion_evictions += 1
                    dirty = True
                    break  # at most one dirty copy within the cluster
        elif inclusion is InclusionPolicy.FULL:
            for l1 in node.l1s:
                ln = l1.remove(block)
                if ln is not None:
                    c.nc_inclusion_evictions += 1
                    if ln.state == _M or ln.state == _O:
                        dirty = True

        page = block >> self._bpp_bits
        node_idx = node.node_id
        pc = node.pc
        if dirty:
            if pc is not None and page in pc:
                pc.absorb_dirty(page, block & self._bpp_mask)
                c.writebacks_absorbed += 1
            else:
                c.writebacks_remote += 1
                self._directory.writeback(block, node_idx)
        else:
            if pc is not None and page in pc:
                frame = pc.frame(page)
                offset = block & self._bpp_mask
                if frame.states[offset] == _PC_INVALID:
                    frame.states[offset] = _NC_CLEAN

    # ------------------------------------------------------------------
    # inter-cluster actions
    # ------------------------------------------------------------------

    def _invalidate_cluster(self, cl: int, block: int, page: int) -> None:
        """Deliver an invalidation for a (clean-copy) block to one cluster."""
        node = self._nodes[cl]
        found = False
        for l1 in node.l1s:
            ln = l1.remove(block)
            if ln is not None:
                found = True
                if ln.state == _M or ln.state == _O:
                    raise ProtocolError(
                        f"invalidation found a dirty copy of {block:#x} in "
                        f"cluster {cl}; owner flush should have handled it"
                    )
        st = node.nc.invalidate(block)
        if st is not None:
            found = True
        if st == _NC_DIRTY:
            raise ProtocolError(
                f"invalidation found a dirty NC copy of {block:#x} in cluster {cl}"
            )
        if node.pc is not None:
            pc_state = node.pc.block_state(page, block & self._bpp_mask)
            if pc_state != _PC_INVALID:
                found = True
            was_dirty = node.pc.invalidate_block(page, block & self._bpp_mask)
            if was_dirty:
                raise ProtocolError(
                    f"invalidation found a dirty PC copy of {block:#x} in "
                    f"cluster {cl}"
                )
        if not found and self._decrement_on_inval:
            # Sec. 3.4: the copy was already victimised — the count that
            # victimisation added predicts a coherence miss now, so undo it
            if self._dir_counters is not None:
                self._dir_counters.decrement(page, cl)
            elif node.nc_counters is not None:
                set_idx = node.nc.set_index_of(block)
                if set_idx is not None:
                    node.nc_counters.decrement(set_idx)

    def _flush_owner(self, cl: int, block: int, page: int, for_write: bool) -> None:
        """The directory's owner must surrender its dirty copy.

        For a read the copy is downgraded and the data written back home
        (one network write-back); for a write the copy is invalidated and
        the data forwarded with the reply (no extra transfer counted).
        """
        c = self.counters
        node = self._nodes[cl]
        offset = block & self._bpp_mask
        found = False
        for l1 in node.l1s:
            ln = l1.peek(block)
            if ln is not None and (ln.state == _M or ln.state == _O):
                if for_write:
                    l1.remove(block)
                else:
                    ln.state = _S
                    # a stale-dirty frame below the L1 copy cleans too
                    node.nc.downgrade(block)
                found = True
                break
        if not found:
            if node.nc.probe(block) == _NC_DIRTY:
                if for_write:
                    node.nc.invalidate(block)
                else:
                    node.nc.downgrade(block)
                found = True
        if not found and node.pc is not None:
            if node.pc.block_state(page, offset) == _NC_DIRTY:
                if for_write:
                    node.pc.invalidate_block(page, offset)
                else:
                    node.pc.mark_clean(page, offset)
                found = True
        if not found:
            raise ProtocolError(
                f"directory says cluster {cl} owns block {block:#x} dirty, "
                "but no dirty copy exists there"
            )
        if for_write:
            # every remaining (clean) copy in the owner cluster dies too
            for l1 in node.l1s:
                l1.remove(block)
            node.nc.invalidate(block)
            if node.pc is not None:
                node.pc.invalidate_block(page, offset)
        else:
            c.writebacks_remote += 1  # the sharing write-back crosses the network

    # ------------------------------------------------------------------
    # page relocation
    # ------------------------------------------------------------------

    def _record_nc_victimization(self, node: Node, block: int) -> None:
        """`vxp`: count a victim entering the NC; maybe trigger relocation."""
        counters = node.nc_counters
        if counters is None:
            return
        nc = node.nc
        set_idx = nc.set_index_of(block)
        assert set_idx is not None and node.threshold is not None
        if not counters.record_victimization(set_idx, node.threshold.value):
            return
        pc = node.pc
        assert pc is not None and isinstance(nc, VictimNC)
        exclude = {b >> self._bpp_bits for b in nc.set_blocks(set_idx) if (
            b >> self._bpp_bits) in pc}
        page = counters.predominant_page(nc.set_blocks(set_idx), exclude)
        counters.reset(set_idx)
        if page is not None:
            self._relocate_page(node, page)

    def _relocate_page(self, node: Node, page: int) -> None:
        """Relocate a remote page into the node's page cache (225 cycles)."""
        c = self.counters
        pc = node.pc
        assert pc is not None
        c.pc_relocations += 1
        evicted = pc.allocate(page, self.now)
        if evicted is not None:
            c.pc_evictions += 1
            self._flush_page_from_cluster(node, evicted)
            assert node.threshold is not None
            if node.threshold.on_frame_reuse(evicted.hits):
                pc.reset_hit_counters()

    def _flush_page_from_cluster(self, node: Node, frame: PageFrame) -> None:
        """A page leaves the PC: purge it from the whole cluster.

        Dirty blocks (in the frame, the L1s, or the NC) are written home;
        clean copies are dropped.  The re-mapping makes every future access
        to the page miss again — the cost the paper attributes to
        relocation churn.
        """
        c = self.counters
        page = frame.page
        node_idx = node.node_id
        base = page << self._bpp_bits
        for offset in range(self.config.blocks_per_page):
            block = base + offset
            dirty = frame.states[offset] == _NC_DIRTY
            for l1 in node.l1s:
                ln = l1.remove(block)
                if ln is not None and (ln.state == _M or ln.state == _O):
                    dirty = True
            st = node.nc.invalidate(block)
            if st == _NC_DIRTY:
                dirty = True
            if dirty:
                c.pc_flush_writebacks += 1
                self._directory.writeback(block, node_idx)
