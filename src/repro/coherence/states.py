"""Coherence state enumerations.

The paper extends the Illinois MESI bus protocol with a single new state,
``R`` ("mastership for a remote clean block", Sec. 3.2), yielding MESIR:

* ``M`` — modified, exclusive dirty copy;
* ``E`` — exclusive clean copy of a *local* block;
* ``S`` — shared clean copy, not the node's master;
* ``I`` — invalid;
* ``R`` — shared clean copy of a *remote* block, and the node's master for
  it.  Unlike ``S``, replacing an ``R`` block generates a bus replacement
  transaction so the node's victim cache can capture the last clean copy.

A dirty-shared ``O`` state was evaluated by the authors and rejected for
the base systems ("very little benefit"); it is available here as the
optional ``MOESIR`` protocol variant (``BusProtocol.MOESIR``) so that the
ablation can be re-run — with O, an M copy downgraded by a peer read stays
dirty-shared in the supplier instead of generating the write-back that
pollutes the victim NC (Sec. 3.2).
"""

from __future__ import annotations

import enum


class MESIR(enum.IntEnum):
    """Processor-cache line states of the MESIR bus protocol."""

    I = 0  # noqa: E741 - the canonical protocol letter
    S = 1
    E = 2
    M = 3
    R = 4
    O = 5  # noqa: E741 - dirty-shared; only under BusProtocol.MOESIR

    @property
    def is_valid(self) -> bool:
        return self is not MESIR.I

    @property
    def is_dirty(self) -> bool:
        return self in (MESIR.M, MESIR.O)

    @property
    def is_master(self) -> bool:
        """Does this copy answer bus replacement/ownership duties?"""
        return self in (MESIR.M, MESIR.E, MESIR.R, MESIR.O)


class NCState(enum.IntEnum):
    """Network-cache line states.

    The NC holds remote blocks only.  A ``DIRTY`` NC line is the cluster's
    (and the system's) most recent copy; evicting it produces a write-back
    to the home node, unless the block's page has been relocated into the
    local page cache, which then absorbs it.
    """

    INVALID = 0
    CLEAN = 1
    DIRTY = 2

    @property
    def is_valid(self) -> bool:
        return self is not NCState.INVALID


class PCBlockState(enum.IntEnum):
    """Per-block state inside a page-cache frame (a 2-bit state in SRAM)."""

    INVALID = 0
    CLEAN = 1
    DIRTY = 2

    @property
    def is_valid(self) -> bool:
        return self is not PCBlockState.INVALID
