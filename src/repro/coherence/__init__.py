"""Intra-cluster (bus/MESIR) and inter-cluster (directory) coherence.

Submodules
----------
states
    The MESIR processor-cache states, NC line states, and page-cache block
    states.
cache
    A generic set-associative, LRU, write-back cache used for both the
    processor caches and the finite network caches.
directory
    The full-map, non-notifying home directory with presence bits and the
    capacity/necessary miss classification of Sec. 2.
"""

from .states import MESIR, NCState, PCBlockState
from .cache import CacheLine, SetAssocCache

__all__ = ["MESIR", "NCState", "PCBlockState", "CacheLine", "SetAssocCache"]
