"""Full-map home directory with non-notifying presence bits.

Each home node keeps, per block, a presence bitmap over clusters and the
identity of the dirty owner (if any).  The protocol is *non-notifying*:
clean copies are dropped silently, so presence bits conservatively
over-approximate residency — exactly the property the paper relies on to
classify misses (Sec. 3.4):

* requesting cluster's presence bit already set  => **capacity** miss (the
  cluster once had the block and lost it to replacement);
* bit clear => **necessary** miss (cold, or cleared by an invalidation,
  i.e. a coherence miss).

Following R-NUMA's modification (kept here because our relocation counters
need the same information), presence bits remain set after a dirty block is
written back, at the price of possible false invalidations — which we model
faithfully: an invalidation may be sent to a cluster that no longer holds
the block.

The directory is a pure bookkeeping object; moving data, downgrading the
owner's cached copy, and delivering invalidations are the simulator's job,
driven by the :class:`DirectoryReply` returned from :meth:`Directory.access`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ProtocolError
from ..stats import MissClass

_CAPACITY = MissClass.CAPACITY
_NECESSARY = MissClass.NECESSARY


class DirectoryReply:
    """What the home node tells the requester (and the simulator) to do.

    A plain ``__slots__`` record rather than a dataclass: one is built per
    directory access, squarely on the simulator's miss path.
    """

    __slots__ = ("miss_class", "owner_to_flush", "invalidate")

    def __init__(
        self,
        miss_class: MissClass,
        owner_to_flush: Optional[int],
        invalidate: Tuple[int, ...],
    ) -> None:
        self.miss_class = miss_class
        #: cluster that holds the dirty copy and must supply/flush it, or None
        self.owner_to_flush = owner_to_flush
        #: clusters whose copies must be invalidated (writes only)
        self.invalidate = invalidate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectoryReply({self.miss_class}, owner={self.owner_to_flush}, "
            f"invalidate={self.invalidate})"
        )


#: shared replies for accesses that require no flush and no invalidations
_NOOP_NECESSARY = DirectoryReply(_NECESSARY, None, ())
_NOOP_CAPACITY = DirectoryReply(_CAPACITY, None, ())


class Directory:
    """Machine-wide full-map directory (one logical entry per block).

    Entries are created lazily on first access; a block never touched by a
    remote cluster costs nothing.  State per block: ``presence`` bitmap and
    ``owner`` cluster id (``-1`` when memory is clean/up-to-date).
    """

    __slots__ = ("n_nodes", "_entries", "_tracer", "now")

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        # block -> [presence_mask, owner]
        self._entries: Dict[int, List[int]] = {}
        # observability: an EventTracer attached by the simulator, plus the
        # simulator's reference clock (synced only while tracing is on, so
        # the untraced hot path never pays for it)
        self._tracer = None
        self.now = 0

    # ---- protocol operations -------------------------------------------

    def access(self, block: int, cluster: int, is_write: bool) -> DirectoryReply:
        """A cluster fetches a block from its home node.

        Classifies the miss, updates presence/ownership, and reports which
        other clusters must act (dirty-owner flush, invalidations).
        """
        bit = 1 << cluster
        entry = self._entries.get(block)
        if entry is None:
            entry = [0, -1]
            self._entries[block] = entry
        presence, owner = entry

        miss_class = _CAPACITY if presence & bit else _NECESSARY

        if owner == cluster:
            # The requester supposedly holds the dirty copy, yet the request
            # escaped its cluster: the NC/PC lookup that should have hit was
            # skipped.  Always a simulator bug.
            raise ProtocolError(
                f"cluster {cluster} re-requested block {block:#x} it owns dirty"
            )

        owner_to_flush = owner if owner >= 0 else None

        if is_write:
            others = presence & ~bit
            if others:
                invalidate = tuple(
                    c for c in range(self.n_nodes) if (others >> c) & 1
                )
            else:
                invalidate = ()
            entry[0] = bit
            entry[1] = cluster
        else:
            invalidate = ()
            entry[0] = presence | bit
            # A read of a dirty block forces a sharing write-back: memory is
            # updated, ownership is dropped (no O state in MESIR).
            entry[1] = -1

        tr = self._tracer
        if tr is not None:
            tr.emit(
                "dir_access",
                self.now,
                node=cluster,
                block=block,
                detail=miss_class.value,
            )

        if owner_to_flush is None and not invalidate:
            # nothing for the requester to do — the overwhelmingly common
            # case; reuse immutable replies instead of allocating one per miss
            return _NOOP_CAPACITY if miss_class is _CAPACITY else _NOOP_NECESSARY
        return DirectoryReply(miss_class, owner_to_flush, invalidate)

    def upgrade(self, block: int, cluster: int) -> Tuple[int, ...]:
        """A cluster writes a block it holds shared; invalidate other copies.

        Returns the clusters to invalidate.  Ownership moves to the writer.
        """
        bit = 1 << cluster
        entry = self._entries.get(block)
        if entry is None:
            # An upgrade of a block the directory never saw can only mean a
            # locally-homed block never shared remotely; register it.
            entry = [bit, -1]
            self._entries[block] = entry
        presence, owner = entry
        if owner >= 0 and owner != cluster:
            raise ProtocolError(
                f"upgrade of block {block:#x} by cluster {cluster} while "
                f"cluster {owner} owns it dirty"
            )
        others = presence & ~bit
        if others:
            invalidate = tuple(c for c in range(self.n_nodes) if (others >> c) & 1)
        else:
            invalidate = ()
        entry[0] = bit
        entry[1] = cluster
        tr = self._tracer
        if tr is not None:
            tr.emit("dir_upgrade", self.now, node=cluster, block=block)
        return invalidate

    def writeback(self, block: int, cluster: int) -> None:
        """A cluster writes the dirty block back to home memory.

        Presence bits stay on (the R-NUMA modification), so a later re-fetch
        by the same cluster classifies as a capacity miss.
        """
        entry = self._entries.get(block)
        if entry is None or entry[1] != cluster:
            owner = None if entry is None else entry[1]
            raise ProtocolError(
                f"write-back of block {block:#x} by cluster {cluster}, "
                f"but directory owner is {owner}"
            )
        entry[1] = -1
        tr = self._tracer
        if tr is not None:
            tr.emit("dir_writeback", self.now, node=cluster, block=block)

    # ---- inspection ------------------------------------------------------

    def is_present(self, block: int, cluster: int) -> bool:
        entry = self._entries.get(block)
        return bool(entry and (entry[0] >> cluster) & 1)

    def owner(self, block: int) -> Optional[int]:
        entry = self._entries.get(block)
        if entry is None or entry[1] < 0:
            return None
        return entry[1]

    def presence_mask(self, block: int) -> int:
        entry = self._entries.get(block)
        return entry[0] if entry else 0

    def entries(self) -> "List[Tuple[int, int, int]]":
        """Canonical snapshot: sorted ``(block, presence_mask, owner)``.

        ``owner`` is the raw stored value (-1 when memory is clean).  The
        model checker uses this to canonicalise machine states; sorting
        removes the (behaviourally irrelevant) creation order of entries.
        """
        return sorted((b, e[0], e[1]) for b, e in self._entries.items())

    def load_entries(self, entries: "List[Tuple[int, int, int]]") -> None:
        """Restore a snapshot produced by :meth:`entries`."""
        self._entries = {b: [presence, owner] for b, presence, owner in entries}

    def owned_blocks(self):
        """Blocks with a recorded dirty owner (validator sweep)."""
        return [b for b, e in self._entries.items() if e[1] >= 0]

    def n_entries(self) -> int:
        return len(self._entries)
