"""A generic set-associative, LRU cache model.

Used for both the processor caches (16 KB, 2-way by default) and the finite
network caches (16 KB/512 KB, 4-way).  The cache stores *block numbers*
(byte address >> block bits) with an arbitrary integer state; all policy
decisions (what the states mean, what happens to victims) belong to the
caller.

Set indexing is parameterised by a right-shift applied to the block number
before masking, which implements the paper's two victim-NC indexing schemes
(Sec. 6.1.3):

* ``index_shift=0`` — least-significant block-address bits (`vb`);
* ``index_shift=log2(blocks_per_page)`` — least-significant page-address
  bits (`vp`), which maps all blocks of a page into the same set.

LRU is maintained by list order within each set (index 0 = LRU, last =
MRU).  Sets are tiny (2-4 ways), so list scans stay cheap; a cache-wide
``block -> line`` tag map makes the hit/miss decision O(1) so the per-set
list is only touched when LRU order actually changes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import ConfigurationError
from ..params import CacheGeometry


class CacheLine:
    """One cache frame: a block number plus an integer state.

    ``state`` is interpreted by the owner (a :class:`~repro.coherence.states.MESIR`
    value for L1s, an :class:`~repro.coherence.states.NCState` for NCs); it is
    stored as a plain int for speed.
    """

    __slots__ = ("block", "state")

    def __init__(self, block: int, state: int) -> None:
        self.block = block
        self.state = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheLine(block={self.block:#x}, state={self.state})"


class SetAssocCache:
    """Set-associative cache of block numbers with per-set LRU replacement."""

    __slots__ = ("geometry", "assoc", "n_sets", "_set_mask", "_shift", "_sets", "_tag")

    def __init__(self, geometry: CacheGeometry, index_shift: int = 0) -> None:
        if index_shift < 0:
            raise ConfigurationError("index_shift must be >= 0")
        self.geometry = geometry
        self.assoc = geometry.assoc
        self.n_sets = geometry.n_sets
        self._set_mask = self.n_sets - 1
        self._shift = index_shift
        self._sets: List[List[CacheLine]] = [[] for _ in range(self.n_sets)]
        # resident-block index; always consistent with the union of _sets
        self._tag: Dict[int, CacheLine] = {}

    # ---- indexing -------------------------------------------------------

    def set_index(self, block: int) -> int:
        """The set a block maps to under this cache's indexing scheme."""
        return (block >> self._shift) & self._set_mask

    def set_lines(self, index: int) -> List[CacheLine]:
        """The (mutable) LRU-ordered line list of one set. Test/policy hook."""
        return self._sets[index]

    # ---- lookups --------------------------------------------------------

    def lookup(self, block: int) -> Optional[CacheLine]:
        """Find a block and promote it to MRU; ``None`` on miss."""
        line = self._tag.get(block)
        if line is None:
            return None
        lines = self._sets[(block >> self._shift) & self._set_mask]
        if lines[-1] is not line:
            lines.remove(line)
            lines.append(line)
        return line

    def peek(self, block: int) -> Optional[CacheLine]:
        """Find a block without disturbing LRU order (snoops use this)."""
        return self._tag.get(block)

    def __contains__(self, block: int) -> bool:
        return block in self._tag

    # ---- mutation -------------------------------------------------------

    def insert(self, block: int, state: int) -> Optional[CacheLine]:
        """Insert a block as MRU; return the evicted LRU line, if any.

        The block must not already be present (callers update the existing
        line's state instead); violating this is a protocol bug.
        """
        lines = self._sets[(block >> self._shift) & self._set_mask]
        victim = None
        if len(lines) >= self.assoc:
            victim = lines.pop(0)
            del self._tag[victim.block]
        line = CacheLine(block, state)
        lines.append(line)
        self._tag[block] = line
        return victim

    def victim_candidate(self, block: int) -> Optional[CacheLine]:
        """The line that :meth:`insert` of ``block`` would evict (or None)."""
        lines = self._sets[(block >> self._shift) & self._set_mask]
        if len(lines) >= self.assoc:
            return lines[0]
        return None

    def remove(self, block: int) -> Optional[CacheLine]:
        """Remove a block (invalidation / victim-cache swap-out)."""
        line = self._tag.pop(block, None)
        if line is None:
            return None
        self._sets[(block >> self._shift) & self._set_mask].remove(line)
        return line

    def clear(self) -> None:
        for lines in self._sets:
            lines.clear()
        self._tag.clear()

    # ---- inspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._tag)

    def lines(self) -> Iterator[CacheLine]:
        """Iterate over all resident lines (arbitrary order)."""
        for lines in self._sets:
            yield from lines

    def blocks(self) -> Iterator[int]:
        for line in self.lines():
            yield line.block

    def occupancy(self) -> float:
        """Fraction of frames in use."""
        return len(self) / (self.n_sets * self.assoc)

    def set_contents(self) -> "Tuple[Tuple[Tuple[int, int], ...], ...]":
        """Canonical snapshot: per set, (block, state) pairs in LRU order.

        The tuple captures everything that determines future behaviour —
        residency, states, and the exact LRU order — so two caches with
        equal snapshots are behaviourally indistinguishable.  Used by the
        model checker (:mod:`repro.check.explore`) to canonicalise and to
        reconstruct machine states.
        """
        return tuple(
            tuple((line.block, line.state) for line in lines) for lines in self._sets
        )

    def load_contents(
        self, contents: "Tuple[Tuple[Tuple[int, int], ...], ...]"
    ) -> None:
        """Restore a snapshot produced by :meth:`set_contents`."""
        self.clear()
        for index, lines in enumerate(contents):
            bucket = self._sets[index]
            for block, state in lines:
                line = CacheLine(block, state)
                bucket.append(line)
                self._tag[block] = line

    # ---- observability snapshots (repro.obs.metrics) --------------------

    def state_counts(self) -> Dict[int, int]:
        """Resident lines per state value (a point-in-time snapshot)."""
        counts: Dict[int, int] = {}
        for line in self._tag.values():
            counts[line.state] = counts.get(line.state, 0) + 1
        return counts

    def set_occupancies(self) -> List[int]:
        """Lines resident in each set, in set order."""
        return [len(lines) for lines in self._sets]
