"""Trace characterisation: the knobs the paper's analysis turns on.

The paper sorts applications by *spatial locality*, *regularity*, the
*size/sparseness of the remote working set*, and the *read/write mix*.
:func:`characterize` measures all of these on a generated trace so that
tests can assert each synthetic benchmark lands in its intended class
(see ``tests/trace/test_characteristics.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .record import Trace

_BLOCK_BITS = 6
_PAGE_BITS = 12


@dataclass(frozen=True)
class TraceCharacteristics:
    """Summary statistics of one trace."""

    refs: int
    write_fraction: float
    #: distinct words touched / words spanned by touched blocks — 1.0 means
    #: every touched block is fully read (maximal spatial locality)
    block_utilization: float
    #: distinct blocks touched / blocks spanned by touched pages
    page_utilization: float
    distinct_blocks: int
    distinct_pages: int
    footprint_bytes: int  #: distinct pages x page size
    #: fraction of references whose page is homed away from the referencing
    #: node (needs the trace's placement map; 0.0 if absent)
    remote_fraction: float
    #: mean references per distinct touched block (temporal reuse)
    block_reuse: float


def characterize(trace: Trace, procs_per_node: int = 4) -> TraceCharacteristics:
    """Measure locality/sharing statistics of a trace."""
    addrs = trace.addrs
    words = addrs >> 2
    blocks = addrs >> _BLOCK_BITS
    pages = addrs >> _PAGE_BITS

    distinct_words = np.unique(words).size
    distinct_blocks_arr = np.unique(blocks)
    distinct_blocks = distinct_blocks_arr.size
    distinct_pages_arr = np.unique(pages)
    distinct_pages = distinct_pages_arr.size

    words_per_block = 1 << (_BLOCK_BITS - 2)
    blocks_per_page = 1 << (_PAGE_BITS - _BLOCK_BITS)
    block_util = distinct_words / (distinct_blocks * words_per_block)
    page_util = distinct_blocks / (distinct_pages * blocks_per_page)

    remote_fraction = 0.0
    if trace.placement:
        homes = np.array(
            [trace.placement.get(int(p), -1) for p in pages.tolist()],
            dtype=np.int64,
        )
        nodes = trace.pids // procs_per_node
        known = homes >= 0
        if known.any():
            remote_fraction = float(np.mean(homes[known] != nodes[known]))

    return TraceCharacteristics(
        refs=len(trace),
        write_fraction=trace.write_fraction,
        block_utilization=float(block_util),
        page_utilization=float(page_util),
        distinct_blocks=distinct_blocks,
        distinct_pages=distinct_pages,
        footprint_bytes=distinct_pages * (1 << _PAGE_BITS),
        remote_fraction=remote_fraction,
        block_reuse=len(trace) / max(1, distinct_blocks),
    )
