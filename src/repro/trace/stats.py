"""Trace characterisation: the knobs the paper's analysis turns on.

The paper sorts applications by *spatial locality*, *regularity*, the
*size/sparseness of the remote working set*, and the *read/write mix*.
:func:`characterize` measures all of these on a generated trace so that
tests can assert each synthetic benchmark lands in its intended class
(see ``tests/trace/test_characteristics.py``).

The same statistics double as the *trace features* of the analytic
surrogate model (:mod:`repro.surrogate`): :meth:`TraceCharacteristics.
feature_dict` exposes them under stable names, and the concentration
statistics (:attr:`~TraceCharacteristics.hot_block_fraction`) separate
the regular benchmarks from the sparse, irregular ones — the axis the
paper's Sec. 6 analysis turns on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from .record import Trace

#: the share of distinct blocks counted as "hot" by
#: :attr:`TraceCharacteristics.hot_block_fraction` — the hottest 10%
HOT_BLOCK_SHARE = 0.10

_BLOCK_BITS = 6
_PAGE_BITS = 12


@dataclass(frozen=True)
class TraceCharacteristics:
    """Summary statistics of one trace."""

    refs: int
    write_fraction: float
    #: distinct words touched / words spanned by touched blocks — 1.0 means
    #: every touched block is fully read (maximal spatial locality)
    block_utilization: float
    #: distinct blocks touched / blocks spanned by touched pages
    page_utilization: float
    distinct_blocks: int
    distinct_pages: int
    footprint_bytes: int  #: distinct pages x page size
    #: fraction of references whose page is homed away from the referencing
    #: node (needs the trace's placement map; 0.0 if absent)
    remote_fraction: float
    #: mean references per distinct touched block (temporal reuse)
    block_reuse: float
    #: mean references per distinct touched page (page-grain reuse; what a
    #: page cache can exploit)
    page_reuse: float
    #: fraction of references landing in the hottest HOT_BLOCK_SHARE of
    #: distinct blocks — HOT_BLOCK_SHARE for a uniform trace, approaching
    #: 1.0 for a highly skewed one.  Separates regular benchmarks from
    #: sparse/irregular ones, which is the axis that decides whether a
    #: small fast NC or a large slow RDC wins (Sec. 6).
    hot_block_fraction: float

    def feature_dict(self) -> Dict[str, float]:
        """The trace-side features of the surrogate model, by stable name.

        Counts enter through their logarithm so the magnitudes stay
        comparable across trace lengths; every value is finite for any
        non-empty trace.
        """
        return {
            "write_fraction": self.write_fraction,
            "block_utilization": self.block_utilization,
            "page_utilization": self.page_utilization,
            "remote_fraction": self.remote_fraction,
            "log_distinct_blocks": math.log2(1.0 + self.distinct_blocks),
            "log_distinct_pages": math.log2(1.0 + self.distinct_pages),
            "log_block_reuse": math.log2(1.0 + self.block_reuse),
            "log_page_reuse": math.log2(1.0 + self.page_reuse),
            "hot_block_fraction": self.hot_block_fraction,
        }


def characterize(trace: Trace, procs_per_node: int = 4) -> TraceCharacteristics:
    """Measure locality/sharing statistics of a trace."""
    addrs = trace.addrs
    words = addrs >> 2
    blocks = addrs >> _BLOCK_BITS
    pages = addrs >> _PAGE_BITS

    distinct_words = np.unique(words).size
    distinct_blocks_arr = np.unique(blocks)
    distinct_blocks = distinct_blocks_arr.size
    distinct_pages_arr = np.unique(pages)
    distinct_pages = distinct_pages_arr.size

    words_per_block = 1 << (_BLOCK_BITS - 2)
    blocks_per_page = 1 << (_PAGE_BITS - _BLOCK_BITS)
    block_util = distinct_words / (distinct_blocks * words_per_block)
    page_util = distinct_blocks / (distinct_pages * blocks_per_page)

    # concentration: what share of references does the hottest 10% of
    # blocks absorb?  np.unique's counts are deterministic; sorting them
    # descending makes the statistic independent of address layout.
    _, block_counts = np.unique(blocks, return_counts=True)
    n_hot = max(1, int(block_counts.size * HOT_BLOCK_SHARE))
    hot_refs = np.sort(block_counts)[::-1][:n_hot].sum()
    hot_block_fraction = float(hot_refs) / max(1, len(trace))

    remote_fraction = 0.0
    if trace.placement:
        homes = np.array(
            [trace.placement.get(int(p), -1) for p in pages.tolist()],
            dtype=np.int64,
        )
        nodes = trace.pids // procs_per_node
        known = homes >= 0
        if known.any():
            remote_fraction = float(np.mean(homes[known] != nodes[known]))

    return TraceCharacteristics(
        refs=len(trace),
        write_fraction=trace.write_fraction,
        block_utilization=float(block_util),
        page_utilization=float(page_util),
        distinct_blocks=distinct_blocks,
        distinct_pages=distinct_pages,
        footprint_bytes=distinct_pages * (1 << _PAGE_BITS),
        remote_fraction=remote_fraction,
        block_reuse=len(trace) / max(1, distinct_blocks),
        page_reuse=len(trace) / max(1, distinct_pages),
        hot_block_fraction=hot_block_fraction,
    )
