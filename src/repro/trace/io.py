"""Trace persistence: compressed ``.npz`` with a JSON metadata sidecar field.

Generating a trace is cheap, but experiments sweep many systems over the
same trace; saving lets a bench generate once and reuse across processes.

On top of explicit :func:`save_trace`/:func:`load_trace` there is a
**content-addressed disk cache**: a :class:`~repro.trace.record.TraceSpec`
hashes to a stable file name under :func:`trace_cache_dir`, so parallel
sweep workers and repeated figure runs load each trace once instead of
regenerating it per process.  Set ``REPRO_TRACE_CACHE`` to move the cache
(e.g. to a tmpfs in CI) and :func:`clear_disk_trace_cache` to empty it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import TraceError
from .record import Trace, TraceSpec

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` (``.npz``)."""
    path = Path(path)
    meta = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "dataset_bytes": trace.dataset_bytes,
        "placement": (
            {str(k): v for k, v in trace.placement.items()} if trace.placement else None
        ),
        "meta": trace.meta,
    }
    np.savez_compressed(
        path,
        pids=trace.pids,
        addrs=trace.addrs,
        writes=trace.writes,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path) as data:
        try:
            meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
            pids = data["pids"]
            addrs = data["addrs"]
            writes = data["writes"]
        except KeyError as exc:
            raise TraceError(f"malformed trace file {path}: missing {exc}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise TraceError(
            f"trace file {path} has version {meta.get('version')}, "
            f"expected {_FORMAT_VERSION}"
        )
    placement = meta.get("placement")
    if placement is not None:
        placement = {int(k): int(v) for k, v in placement.items()}
    return Trace(
        meta["name"],
        pids,
        addrs,
        writes,
        meta["dataset_bytes"],
        placement,
        meta.get("meta"),
    )


# ---------------------------------------------------------------------------
# content-addressed disk cache
# ---------------------------------------------------------------------------

#: environment variable overriding the cache directory
CACHE_ENV = "REPRO_TRACE_CACHE"


def trace_cache_dir() -> Path:
    """Directory holding cached traces (not created until first store).

    Resolution order: ``$REPRO_TRACE_CACHE``, ``$XDG_CACHE_HOME/repro/traces``,
    ``~/.cache/repro/traces``.
    """
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "traces"


def trace_cache_key(spec: TraceSpec) -> str:
    """Stable content hash for one generation request.

    Every field that influences the generated arrays participates, plus the
    file format version so stale cache entries are never misread after a
    format change.
    """
    canon = (
        f"v{_FORMAT_VERSION}|{spec.benchmark.lower()}|refs={spec.refs}"
        f"|seed={spec.seed}|procs={spec.n_procs}|scale={spec.scale!r}"
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:32]


def trace_cache_path(spec: TraceSpec) -> Path:
    return trace_cache_dir() / f"{spec.benchmark.lower()}-{trace_cache_key(spec)}.npz"


def load_cached_trace(spec: TraceSpec) -> Optional[Trace]:
    """The cached trace for ``spec``, or None on miss/corruption.

    A corrupt or version-skewed entry is deleted rather than raised: the
    caller can always regenerate, so the cache must never brick a sweep.
    """
    path = trace_cache_path(spec)
    if not path.exists():
        return None
    try:
        return load_trace(path)
    except (TraceError, OSError, ValueError):
        try:
            path.unlink()
        except OSError:
            pass
        return None


def store_cached_trace(spec: TraceSpec, trace: Trace) -> Path:
    """Persist ``trace`` under its content key; returns the cache path.

    The write is atomic (temp file + ``os.replace``), so concurrent workers
    racing to store the same trace cannot leave a torn file behind.
    """
    path = trace_cache_path(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    # the suffix must stay ".npz" — np.savez would otherwise append one and
    # the temp name handed to os.replace would no longer exist
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.stem + ".", suffix=".tmp.npz", dir=path.parent
    )
    try:
        os.close(fd)
        save_trace(trace, tmp_name)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def clear_disk_trace_cache() -> int:
    """Delete every cached trace; returns how many files were removed."""
    root = trace_cache_dir()
    if not root.is_dir():
        return 0
    removed = 0
    for entry in root.glob("*.npz"):
        try:
            entry.unlink()
            removed += 1
        except OSError:
            pass
    return removed
