"""Trace persistence: compressed ``.npz`` with a JSON metadata sidecar field.

Generating a trace is cheap, but experiments sweep many systems over the
same trace; saving lets a bench generate once and reuse across processes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import TraceError
from .record import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` (``.npz``)."""
    path = Path(path)
    meta = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "dataset_bytes": trace.dataset_bytes,
        "placement": (
            {str(k): v for k, v in trace.placement.items()} if trace.placement else None
        ),
        "meta": trace.meta,
    }
    np.savez_compressed(
        path,
        pids=trace.pids,
        addrs=trace.addrs,
        writes=trace.writes,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path) as data:
        try:
            meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
            pids = data["pids"]
            addrs = data["addrs"]
            writes = data["writes"]
        except KeyError as exc:
            raise TraceError(f"malformed trace file {path}: missing {exc}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise TraceError(
            f"trace file {path} has version {meta.get('version')}, "
            f"expected {_FORMAT_VERSION}"
        )
    placement = meta.get("placement")
    if placement is not None:
        placement = {int(k): int(v) for k, v in placement.items()}
    return Trace(
        meta["name"],
        pids,
        addrs,
        writes,
        meta["dataset_bytes"],
        placement,
        meta.get("meta"),
    )
