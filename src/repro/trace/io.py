"""Trace persistence: compressed ``.npz`` with a JSON metadata sidecar field.

Generating a trace is cheap, but experiments sweep many systems over the
same trace; saving lets a bench generate once and reuse across processes.

On top of explicit :func:`save_trace`/:func:`load_trace` there is a
**content-addressed disk cache**: a :class:`~repro.trace.record.TraceSpec`
hashes to a stable file name under :func:`trace_cache_dir`, so parallel
sweep workers and repeated figure runs load each trace once instead of
regenerating it per process.  Set ``REPRO_TRACE_CACHE`` to move the cache
(e.g. to a tmpfs in CI) and :func:`clear_disk_trace_cache` to empty it.

Integrity: every file carries a SHA-256 **payload digest** over the
reference arrays and metadata, written atomically (temp file +
``os.replace``) so a killed worker can never leave a half-written file
for other workers to load.  :func:`load_trace` verifies the digest and
raises :class:`~repro.errors.CorruptTraceError` on mismatch; the disk
cache converts any corruption into **quarantine + regenerate** (the bad
file is renamed ``*.corrupt`` for post-mortem, the caller regenerates)
instead of crashing the sweep worker that tripped over it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from ..errors import CorruptTraceError, TraceError
from .record import Trace, TraceSpec

#: bumped to 2 when the payload digest field was added
_FORMAT_VERSION = 2


def _payload_digest(
    pids: np.ndarray, addrs: np.ndarray, writes: np.ndarray, meta: dict
) -> str:
    """SHA-256 over the reference arrays plus the digest-free metadata."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(pids).tobytes())
    h.update(np.ascontiguousarray(addrs).tobytes())
    h.update(np.ascontiguousarray(writes).tobytes())
    canon = {k: v for k, v in meta.items() if k != "digest"}
    h.update(json.dumps(canon, sort_keys=True, default=str).encode("utf-8"))
    return h.hexdigest()


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` (``.npz``), atomically.

    The bytes land in a temp file first and are renamed into place, so a
    crash mid-write leaves either the old file or no file — never a torn
    one.  The embedded payload digest lets :func:`load_trace` verify the
    file end to end.
    """
    path = Path(path)
    meta = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "dataset_bytes": trace.dataset_bytes,
        "placement": (
            {str(k): v for k, v in trace.placement.items()} if trace.placement else None
        ),
        "meta": trace.meta,
    }
    meta["digest"] = _payload_digest(trace.pids, trace.addrs, trace.writes, meta)
    # the suffix must stay ".npz" — np.savez would otherwise append one and
    # the temp name handed to os.replace would no longer exist
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.stem + ".", suffix=".tmp.npz", dir=path.parent or Path(".")
    )
    try:
        os.close(fd)
        np.savez_compressed(
            tmp_name,
            pids=trace.pids,
            addrs=trace.addrs,
            writes=trace.writes,
            meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        )
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`, verifying its digest."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    try:
        with np.load(path) as data:
            try:
                meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
                pids = data["pids"]
                addrs = data["addrs"]
                writes = data["writes"]
            except KeyError as exc:
                raise TraceError(f"malformed trace file {path}: missing {exc}") from exc
    except (OSError, ValueError, zipfile.BadZipFile, EOFError) as exc:
        # zipfile/np.load failures on torn or bit-flipped files
        raise CorruptTraceError(path, f"unreadable archive: {exc}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise TraceError(
            f"trace file {path} has version {meta.get('version')}, "
            f"expected {_FORMAT_VERSION}"
        )
    expected = meta.get("digest")
    if expected is not None:
        actual = _payload_digest(pids, addrs, writes, meta)
        if actual != expected:
            raise CorruptTraceError(
                path, f"payload digest mismatch ({actual[:12]} != {expected[:12]})"
            )
    placement = meta.get("placement")
    if placement is not None:
        placement = {int(k): int(v) for k, v in placement.items()}
    return Trace(
        meta["name"],
        pids,
        addrs,
        writes,
        meta["dataset_bytes"],
        placement,
        meta.get("meta"),
    )


# ---------------------------------------------------------------------------
# content-addressed disk cache
# ---------------------------------------------------------------------------

#: environment variable overriding the cache directory
CACHE_ENV = "REPRO_TRACE_CACHE"

# recovery hook: the sweep executor installs one so cache-level recovery
# actions (quarantines, skipped writes) surface as obs events / metrics
_recovery_hook: Optional[Callable[[str, str], None]] = None


def set_recovery_hook(
    hook: Optional[Callable[[str, str], None]],
) -> Optional[Callable[[str, str], None]]:
    """Install ``hook(kind, detail)`` for cache recovery actions.

    Returns the previous hook so callers can restore it.  Kinds emitted:
    ``trace_quarantined`` and ``trace_cache_skipped``.
    """
    global _recovery_hook
    previous = _recovery_hook
    _recovery_hook = hook
    return previous


def note_recovery(kind: str, detail: str) -> None:
    if _recovery_hook is not None:
        _recovery_hook(kind, detail)


def trace_cache_dir() -> Path:
    """Directory holding cached traces (not created until first store).

    Resolution order: ``$REPRO_TRACE_CACHE``, ``$XDG_CACHE_HOME/repro/traces``,
    ``~/.cache/repro/traces``.
    """
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "traces"


def trace_cache_key(spec: TraceSpec) -> str:
    """Stable content hash for one generation request.

    Every field that influences the generated arrays participates, plus the
    file format version so stale cache entries are never misread after a
    format change.
    """
    canon = (
        f"v{_FORMAT_VERSION}|{spec.benchmark.lower()}|refs={spec.refs}"
        f"|seed={spec.seed}|procs={spec.n_procs}|scale={spec.scale!r}"
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:32]


def trace_cache_path(spec: TraceSpec) -> Path:
    return trace_cache_dir() / f"{spec.benchmark.lower()}-{trace_cache_key(spec)}.npz"


def quarantine_path(path: Union[str, Path]) -> Path:
    """Where a corrupt cache entry is parked for post-mortem inspection."""
    path = Path(path)
    return path.with_name(path.name + ".corrupt")


def load_cached_trace(spec: TraceSpec) -> Optional[Trace]:
    """The cached trace for ``spec``, or None on miss/corruption.

    A corrupt or version-skewed entry is **quarantined** (renamed
    ``*.corrupt``) rather than raised: the caller can always regenerate,
    so the cache must never brick a sweep — but the bad bytes are kept
    around so the corruption can be diagnosed.  Every quarantine is
    reported through the recovery hook.
    """
    path = trace_cache_path(spec)
    if not path.exists():
        return None
    try:
        return load_trace(path)
    except (TraceError, OSError, ValueError) as exc:
        try:
            os.replace(path, quarantine_path(path))
            note_recovery("trace_quarantined", f"{path.name}: {exc}")
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        return None


def store_cached_trace(spec: TraceSpec, trace: Trace) -> Path:
    """Persist ``trace`` under its content key; returns the cache path.

    The write is atomic (:func:`save_trace`), so concurrent workers racing
    to store the same trace cannot leave a torn file behind.
    """
    from .. import faults

    path = trace_cache_path(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    plan = faults.active_plan()
    if plan is not None:
        plan.maybe_io_error(f"store:{trace_cache_key(spec)}")
    save_trace(trace, path)
    if plan is not None and plan.maybe_corrupt_file(
        path, f"corrupt:{trace_cache_key(spec)}"
    ):
        note_recovery("fault_injected", f"corrupted cache entry {path.name}")
    return path


def clear_disk_trace_cache() -> int:
    """Delete every cached trace (and quarantined entry); returns the count."""
    root = trace_cache_dir()
    if not root.is_dir():
        return 0
    removed = 0
    for pattern in ("*.npz", "*.npz.corrupt"):
        for entry in root.glob(pattern):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
    return removed
