"""Shared address-space layout for synthetic benchmarks.

A :class:`Layout` allocates named, page-aligned :class:`Region` objects in
a single shared heap, mirroring how a SPLASH-2 program carves its shared
arena into arrays.  Regions know how to partition themselves across
processors and how to compute the first-touch page-placement map the
generator hands to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import TraceError

PAGE = 4096
WORD = 4


def _round_up(n: int, align: int) -> int:
    return (n + align - 1) // align * align


@dataclass(frozen=True)
class Region:
    """A contiguous, page-aligned byte range of the shared space."""

    name: str
    start: int
    size: int

    def __post_init__(self) -> None:
        if self.start % PAGE or self.size <= 0:
            raise TraceError(f"region {self.name!r} must be page-aligned, non-empty")

    @property
    def end(self) -> int:
        return self.start + self.size

    @property
    def n_words(self) -> int:
        return self.size // WORD

    @property
    def n_pages(self) -> int:
        return (self.size + PAGE - 1) // PAGE

    @property
    def first_page(self) -> int:
        return self.start // PAGE

    def word_addr(self, word_index: int) -> int:
        """Byte address of the i-th word (bounds-checked)."""
        if not 0 <= word_index < self.n_words:
            raise TraceError(
                f"word {word_index} out of region {self.name!r} "
                f"({self.n_words} words)"
            )
        return self.start + word_index * WORD

    def partition(self, n: int) -> List["Region"]:
        """Split into ``n`` page-aligned sub-regions of near-equal size.

        Every partition gets at least one page; the region must therefore
        span at least ``n`` pages.
        """
        if n <= 0:
            raise TraceError("partition count must be positive")
        if self.n_pages < n:
            raise TraceError(
                f"region {self.name!r} has {self.n_pages} pages, cannot "
                f"be split {n} ways"
            )
        base_pages, extra = divmod(self.n_pages, n)
        parts: List[Region] = []
        page = self.first_page
        for i in range(n):
            pages = base_pages + (1 if i < extra else 0)
            start = page * PAGE
            size = min(pages * PAGE, self.end - start)
            parts.append(Region(f"{self.name}[{i}]", start, size))
            page += pages
        return parts

    def pages(self) -> range:
        return range(self.first_page, self.first_page + self.n_pages)


class Layout:
    """Sequential allocator of page-aligned regions in the shared heap."""

    def __init__(self) -> None:
        self._cursor = 0
        self._regions: Dict[str, Region] = {}

    def alloc(self, name: str, nbytes: int) -> Region:
        if name in self._regions:
            raise TraceError(f"region {name!r} already allocated")
        if nbytes <= 0:
            raise TraceError("region size must be positive")
        size = _round_up(nbytes, PAGE)
        region = Region(name, self._cursor, size)
        self._cursor += size
        self._regions[name] = region
        return region

    def __getitem__(self, name: str) -> Region:
        return self._regions[name]

    @property
    def total_bytes(self) -> int:
        return self._cursor

    def regions(self) -> List[Region]:
        return list(self._regions.values())


def place_partitions(parts: List[Region], procs_per_node: int) -> Dict[int, int]:
    """Home each per-processor partition's pages at its owner's node.

    ``parts[i]`` belongs to processor ``i``; its pages go to node
    ``i // procs_per_node``.  This reproduces the paper's (optimised)
    first-touch outcome without spending trace length on an init phase.
    """
    placement: Dict[int, int] = {}
    for pid, part in enumerate(parts):
        node = pid // procs_per_node
        for page in part.pages():
            placement[page] = node
    return placement


def place_round_robin(region: Region, n_nodes: int) -> Dict[int, int]:
    """Stripe a region's pages across nodes (shared read-mostly data)."""
    return {page: i % n_nodes for i, page in enumerate(region.pages())}
