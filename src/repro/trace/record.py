"""Trace containers.

A :class:`Trace` is three parallel numpy arrays — processor id, byte
address, is-write flag — plus the metadata the simulator needs (dataset
size for fraction-sized page caches, an optional explicit page-placement
map).  Only *shared* references are recorded: the paper expresses all miss
ratios as a percentage of shared (non-stack) references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..errors import TraceError


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of a synthetic trace generation request."""

    benchmark: str
    refs: int = 400_000
    seed: int = 1
    n_procs: int = 32
    scale: float = 1.0  #: dataset scale factor (1.0 = the paper's Table 3 size)

    def __post_init__(self) -> None:
        if self.refs <= 0:
            raise TraceError("refs must be positive")
        if self.n_procs <= 0:
            raise TraceError("n_procs must be positive")
        if not (0.0 < self.scale <= 4.0):
            raise TraceError("scale must be in (0, 4]")


def _normalise(name: str, arr, dtype) -> np.ndarray:
    """One C-contiguous, native-order, fixed-width 1-D array.

    :func:`np.ascontiguousarray` converts dtype, byte order, and layout in
    a single pass and is a no-op view when the input already conforms — so
    every engine indexes the arrays directly instead of paying a silent
    copy per run when a cached trace deserialises with a mismatched dtype
    (or a strided/byte-swapped view sneaks in through a slice).
    """
    out = np.ascontiguousarray(arr, dtype=dtype)
    if out.ndim != 1:
        raise TraceError(f"{name} must be one-dimensional, got shape {out.shape}")
    return out


class Trace:
    """An interleaved shared-reference trace for the whole machine.

    The reference arrays are normalised **once at construction**:
    ``pids`` is C-contiguous native ``int32``, ``addrs`` native ``int64``,
    ``writes`` native ``uint8``.  Both engines rely on this — the
    interpreter iterates them as Python scalars, the batch engine slices
    them directly into vector classification — so no per-run conversion
    or copying ever happens downstream.
    """

    __slots__ = ("name", "pids", "addrs", "writes", "dataset_bytes", "placement", "meta")

    def __init__(
        self,
        name: str,
        pids: np.ndarray,
        addrs: np.ndarray,
        writes: np.ndarray,
        dataset_bytes: int,
        placement: Optional[Dict[int, int]] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        if not (len(pids) == len(addrs) == len(writes)):
            raise TraceError("pids/addrs/writes must have equal length")
        if dataset_bytes <= 0:
            raise TraceError("dataset_bytes must be positive")
        self.name = name
        self.pids = _normalise("pids", pids, np.int32)
        self.addrs = _normalise("addrs", addrs, np.int64)
        self.writes = _normalise("writes", writes, np.uint8)
        self.dataset_bytes = int(dataset_bytes)
        self.placement = placement
        self.meta = dict(meta) if meta else {}

    def __len__(self) -> int:
        return len(self.pids)

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate (pid, addr, is_write) as plain Python ints."""
        return zip(self.pids.tolist(), self.addrs.tolist(), self.writes.tolist())

    @property
    def write_fraction(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.writes.sum()) / len(self)

    @property
    def n_procs(self) -> int:
        return int(self.pids.max()) + 1 if len(self) else 0

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace (used by tests and incremental runs)."""
        return Trace(
            self.name,
            self.pids[start:stop],
            self.addrs[start:stop],
            self.writes[start:stop],
            self.dataset_bytes,
            self.placement,
            self.meta,
        )

    def validate(self, n_procs: int, address_limit: Optional[int] = None) -> None:
        """Raise :class:`TraceError` on out-of-range pids/addresses."""
        if len(self) == 0:
            raise TraceError("empty trace")
        if int(self.pids.min()) < 0 or int(self.pids.max()) >= n_procs:
            raise TraceError(
                f"pid out of range [0, {n_procs}): "
                f"[{int(self.pids.min())}, {int(self.pids.max())}]"
            )
        if int(self.addrs.min()) < 0:
            raise TraceError("negative address in trace")
        limit = address_limit if address_limit is not None else self.dataset_bytes
        if int(self.addrs.max()) >= limit:
            raise TraceError(
                f"address {int(self.addrs.max()):#x} beyond limit {limit:#x}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mb = self.dataset_bytes / (1 << 20)
        return (
            f"Trace({self.name!r}, refs={len(self)}, dataset={mb:.2f}MB, "
            f"writes={self.write_fraction:.1%})"
        )
