"""Memory-reference traces: records, synthetic generators, I/O, analysis.

The paper drives its evaluation with SPARC traces of eight SPLASH-2
benchmarks.  Those traces are not available, so this package provides
deterministic *synthetic* generators (one per benchmark) that reproduce the
sharing structure each application is known for — dataset size (Table 3),
spatial locality, access-pattern regularity, read/write mix, and the size
and shape of the remote working set.  See DESIGN.md for the substitution
argument.
"""

from .record import Trace, TraceSpec
from .io import load_trace, save_trace
from .interleave import interleave_blocks, round_robin
from .stats import TraceCharacteristics, characterize

__all__ = [
    "Trace",
    "TraceSpec",
    "load_trace",
    "save_trace",
    "interleave_blocks",
    "round_robin",
    "TraceCharacteristics",
    "characterize",
]
