"""Merging per-processor streams into one machine-wide trace.

Two levels of merging:

* :func:`merge_streams` — combine several concurrent activities of a
  *single* processor (e.g. a sequential read stream and a scatter-write
  stream) into one ordered stream, preserving each activity's order;
* :func:`round_robin` — interleave the per-processor streams of one phase
  reference-by-reference, which is how the trace-driven simulator models
  the 32 processors progressing together (barriers between phases come out
  naturally because phases are interleaved separately and concatenated).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

Stream = Tuple[np.ndarray, np.ndarray]  # (byte addresses int64, write flags uint8)


def merge_streams(
    streams: Sequence[Stream], rng: Optional[np.random.Generator] = None
) -> Stream:
    """Proportionally interleave one processor's concurrent activities.

    Each stream's internal order is preserved.  With ``rng``, merge points
    are randomised (still order-preserving); otherwise the merge is a
    deterministic proportional round-robin.
    """
    streams = [s for s in streams if len(s[0])]
    if not streams:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8)
    keys: List[np.ndarray] = []
    for addrs, writes in streams:
        assert len(addrs) == len(writes)
        n = len(addrs)
        if rng is not None:
            keys.append(np.sort(rng.random(n)))
        else:
            keys.append((np.arange(n, dtype=np.float64) + 0.5) / n)
    allkeys = np.concatenate(keys)
    order = np.argsort(allkeys, kind="stable")
    addrs = np.concatenate([s[0] for s in streams])[order]
    writes = np.concatenate([s[1] for s in streams])[order]
    return addrs, writes


def round_robin(per_proc: Sequence[Stream]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Interleave per-processor streams reference-by-reference.

    Processor ``p``'s k-th reference is scheduled at virtual time
    ``k * n_procs + p``; gaps left by shorter streams are compacted.
    Returns (pids, addrs, writes).
    """
    n_procs = len(per_proc)
    if n_procs == 0:
        return (
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint8),
        )
    key_parts: List[np.ndarray] = []
    pid_parts: List[np.ndarray] = []
    for p, (addrs, writes) in enumerate(per_proc):
        assert len(addrs) == len(writes)
        n = len(addrs)
        key_parts.append(np.arange(n, dtype=np.int64) * n_procs + p)
        pid_parts.append(np.full(n, p, dtype=np.int32))
    keys = np.concatenate(key_parts)
    order = np.argsort(keys, kind="stable")
    pids = np.concatenate(pid_parts)[order]
    addrs = np.concatenate([s[0] for s in per_proc])[order]
    writes = np.concatenate([s[1] for s in per_proc])[order]
    return pids, addrs, writes


def interleave_blocks(
    phases: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate already-interleaved phases into the final trace arrays."""
    if not phases:
        return (
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint8),
        )
    pids = np.concatenate([p[0] for p in phases])
    addrs = np.concatenate([p[1] for p in phases])
    writes = np.concatenate([p[2] for p in phases])
    return pids, addrs, writes
