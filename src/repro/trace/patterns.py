"""Vectorised access-pattern primitives for the synthetic generators.

Each primitive returns an int64 numpy array of *byte addresses*.  The
generators compose these into per-processor, per-phase streams which
:mod:`repro.trace.interleave` merges into a machine-wide trace.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from .regions import Region, WORD


def sequential_words(region: Region, start_word: int, n: int, stride: int = 1) -> np.ndarray:
    """``n`` word addresses starting at ``start_word``, wrapping in-region.

    A stride of 1 touches every word (maximal spatial locality); stride 2
    halves the reference count while still touching every block.
    """
    if n < 0 or stride <= 0:
        raise TraceError("n must be >= 0 and stride positive")
    words = (start_word + stride * np.arange(n, dtype=np.int64)) % region.n_words
    return region.start + words * WORD


def block_runs(
    region: Region,
    start_words: np.ndarray,
    run_words: int,
    stride: int = 1,
) -> np.ndarray:
    """Concatenated short sequential runs (one per entry of ``start_words``).

    Models panel/boundary/object reads: each run is ``run_words`` long with
    the given stride, so spatial locality is controlled by the run length.
    """
    if run_words <= 0 or stride <= 0:
        raise TraceError("run_words and stride must be positive")
    starts = np.asarray(start_words, dtype=np.int64)
    offs = stride * np.arange(0, run_words, dtype=np.int64)
    words = (starts[:, None] + offs[None, :]).reshape(-1) % region.n_words
    return region.start + words * WORD


def zipf_ranks(rng: np.random.Generator, n_items: int, n_samples: int, alpha: float) -> np.ndarray:
    """Sample item ranks from a bounded power-law (Zipf) distribution.

    Rank 0 is the most popular.  Implemented by inverse-CDF over explicit
    weights, so it is exact and bounded (numpy's ``zipf`` is unbounded).
    """
    if n_items <= 0:
        raise TraceError("n_items must be positive")
    if alpha < 0:
        raise TraceError("alpha must be >= 0")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(n_samples)
    return np.searchsorted(cdf, u).astype(np.int64)


def uniform_words(rng: np.random.Generator, region: Region, n: int) -> np.ndarray:
    """``n`` uniformly random word addresses in the region."""
    words = rng.integers(0, region.n_words, size=n, dtype=np.int64)
    return region.start + words * WORD


def tag_writes(n: int, write: bool) -> np.ndarray:
    """A uniform write-flag array."""
    return np.full(n, 1 if write else 0, dtype=np.uint8)
