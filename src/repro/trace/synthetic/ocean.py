"""Synthetic Ocean: near-neighbour grid relaxation (258x258, 15.52 MB).

The paper's characterisation: **regular, high spatial locality**; a
mixture of coherence misses (the neighbour rewrites its boundary every
iteration) and capacity misses (multi-grid sweeps overflow the 16 KB cache
between boundary re-reads — Fig. 3 shows Ocean's miss-ratio knee near
16 KB).  Page caches work well: the remote pages are few, contiguous,
fully used (no fragmentation), and quickly relocated.

Model: four grids partitioned into per-processor row bands (owner-homed).
Each iteration has two sub-phases:

* **compute** — every processor rewrites its own band of the active grid
  (the writes that invalidate the neighbours' boundary copies and make the
  next iteration's first boundary read a *necessary* miss);
* **stencil** — every processor reads its neighbours' boundary rows, does
  a read-only relaxation sweep over its own band in *two* grids (enough
  footprint to evict the boundary blocks from the 16 KB cache), then
  re-reads the boundaries — a *capacity* miss the NC absorbs, because no
  one has written the boundary since the compute phase.

Processors are arranged as the real code's 2-D grid: neighbours are the
*column* neighbours (p +/- procs_per_node), which always live in adjacent
nodes, so every processor exchanges boundaries remotely and the per-node
boundary working set (~24 KB) exceeds the 16 KB NC — the condition under
which the relocation counters fire and the boundary pages migrate into
the page cache for `vbp` and `vpp` alike (the paper's "Ocean shows no
difference" result in Figs. 8/9).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..patterns import sequential_words
from ..record import TraceSpec
from ..regions import Layout, place_partitions
from .base import Phase, SyntheticBenchmark


class Ocean(SyntheticBenchmark):
    name = "ocean"
    paper_params = "258 x 258"
    paper_mb = 15.52

    n_iters = 5
    n_grids = 4
    boundary_words = 768  # 3 KB of boundary rows per neighbour

    def _build(
        self, spec: TraceSpec, rng: np.random.Generator, layout: Layout
    ) -> Tuple[List[Phase], Dict[int, int], Dict[str, object]]:
        n = spec.n_procs
        ppn = max(1, n // 8)
        grid_bytes = self.dataset_bytes(spec.scale) // self.n_grids
        grids = [
            self.alloc_partitionable(layout, f"grid{g}", grid_bytes, n)
            for g in range(self.n_grids)
        ]
        bands = [g.partition(n) for g in grids]
        placement: Dict[int, int] = {}
        for band_list in bands:
            placement.update(place_partitions(band_list, ppn))

        budget = self.per_proc_budget(spec) // self.n_iters
        compute_refs = max(64, int(budget * 0.2))
        sweep_refs = max(64, int(budget * 0.2) // 2)  # two grids per stencil
        bwords = min(self.boundary_words, max(8, int(budget * 0.6) // 4 * 2))

        def full_cover(region, refs, write, offset=0):
            stride = min(16, max(1, -(-region.n_words // refs)))
            n = min(refs, region.n_words // stride)
            addrs = sequential_words(region, offset, n, stride)
            return self.writes_like(addrs, write)

        phases: List[Phase] = []
        for it in range(self.n_iters):
            # the stencil always runs on grid 0 (stable boundary pages, so
            # relocated replicas are reused across iterations); a rotating
            # second grid provides the cache-eviction pressure
            ga, gb = 0, 1 + it % (self.n_grids - 1)

            # compute: every owner rewrites its band of grid A
            compute: Phase = []
            for p in range(n):
                compute.append(full_cover(bands[ga][p], compute_refs, True))
            phases.append(compute)

            # stencil: boundary reads around eviction-heavy sweeps
            stencil: Phase = []
            for p in range(n):
                # 2-D column neighbours: always in an adjacent node
                left = bands[ga][(p - ppn) % n]
                right = bands[ga][(p + ppn) % n]

                def boundaries():
                    lb = sequential_words(
                        left, max(0, left.n_words - bwords), bwords // 2, 2
                    )
                    rb = sequential_words(right, 0, bwords // 2, 2)
                    return [
                        self.writes_like(lb, False),
                        self.writes_like(rb, False),
                    ]

                pieces = boundaries()
                pieces.append(full_cover(bands[ga][p], sweep_refs, False))
                pieces.append(full_cover(bands[gb][p], sweep_refs, False))
                pieces.extend(boundaries())  # re-read: the capacity misses
                addrs = np.concatenate([s[0] for s in pieces])
                writes = np.concatenate([s[1] for s in pieces])
                stencil.append((addrs, writes))
            phases.append(stencil)

        meta = {"band_bytes": bands[0][0].size, "boundary_words": bwords}
        return phases, placement, meta
