"""Shared machinery for the hierarchical N-body codes (Barnes-Hut, FMM).

Both applications traverse a shared tree of cells: small (sub-block)
records scattered across many pages — the paper's **irregular, low
spatial locality** class.  Each processor re-visits a private *interest
set* of cells every iteration (temporal reuse => remote capacity misses)
that slowly mutates as bodies move, plus a Zipf-hot shared head (tree
roots everyone reads).  Body data is processor-private and owner-homed.

Barnes and FMM differ only in scale and churn: FMM's interaction lists are
larger, sparser, and change faster, which is what pushes its remote
working set beyond any page cache's reach (Fig. 9's FMM row) while Barnes'
fits comfortably in 512 KB.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..patterns import block_runs, sequential_words, zipf_ranks
from ..record import TraceSpec
from ..regions import Layout, place_partitions, place_round_robin
from .base import Phase, SyntheticBenchmark

CELL_WORDS = 4  # one 16-byte tree-cell record; a quarter of a block


class NBodyBenchmark(SyntheticBenchmark):
    """Tree-walking N-body template; subclasses set the knobs."""

    cells_fraction = 0.6  #: fraction of the dataset holding tree cells
    interest_cells = 1200  #: per-processor persistent interaction set
    churn = 0.15  #: fraction of the interest set replaced per iteration
    zipf_alpha = 0.8  #: popularity skew of the shared hot head
    hot_fraction = 0.35  #: fraction of walk reads drawn from the Zipf head
    cell_write_fraction = 0.06  #: cell updates (centre-of-mass recomputes)
    n_iters = 8

    def _build(
        self, spec: TraceSpec, rng: np.random.Generator, layout: Layout
    ) -> Tuple[List[Phase], Dict[int, int], Dict[str, object]]:
        n = spec.n_procs
        ppn = max(1, n // 8)
        n_nodes = max(1, n // ppn)
        total = self.dataset_bytes(spec.scale)

        cells = self.alloc_partitionable(
            layout, "cells", int(total * self.cells_fraction), n
        )
        bodies = self.alloc_partitionable(
            layout, "bodies", int(total * (1.0 - self.cells_fraction)), n
        )
        body_parts = bodies.partition(n)
        placement = place_partitions(body_parts, ppn)
        placement.update(place_round_robin(cells, n_nodes))

        n_cells = cells.n_words // CELL_WORDS
        interest = min(self.interest_cells, n_cells)
        churn_count = max(1, int(interest * self.churn))

        budget = self.per_proc_budget(spec) // self.n_iters
        walk_reads = max(32, int(budget * 0.66))
        cell_writes = max(4, int(budget * self.cell_write_fraction))
        body_refs = max(16, budget - walk_reads - cell_writes)

        # persistent per-processor interest sets over the cell pool
        interest_sets = [
            rng.integers(0, n_cells, size=interest, dtype=np.int64) for _ in range(n)
        ]

        phases: List[Phase] = []
        for it in range(self.n_iters):
            phase: Phase = []
            for p in range(n):
                iset = interest_sets[p]
                # bodies moved: replace part of the interaction set
                idx = rng.integers(0, interest, size=churn_count)
                iset[idx] = rng.integers(0, n_cells, size=churn_count)

                n_hot = int(walk_reads * self.hot_fraction) // 2
                n_cold = (walk_reads - n_hot * 2) // 2
                hot = zipf_ranks(rng, n_cells, n_hot, self.zipf_alpha)
                own = iset[rng.integers(0, interest, size=n_cold)]
                targets = np.concatenate([hot, own])
                rng.shuffle(targets)
                # read 2 of a cell's 4 words: partial-block touches, the
                # low spatial locality the paper highlights
                reads = block_runs(cells, targets * CELL_WORDS, run_words=2)

                widx = iset[rng.integers(0, interest, size=max(1, cell_writes // 1))]
                writes = block_runs(cells, widx * CELL_WORDS, run_words=1)

                body = body_parts[p]
                bcov = min(body.n_words // 2, body_refs // 2)
                breads = sequential_words(body, 0, bcov, 2)
                bwrites = sequential_words(body, 1, max(1, bcov // 2), 4)

                addrs = np.concatenate([reads, breads, writes, bwrites])
                wflags = np.concatenate(
                    [
                        np.zeros(len(reads), dtype=np.uint8),
                        np.zeros(len(breads), dtype=np.uint8),
                        np.ones(len(writes), dtype=np.uint8),
                        np.ones(len(bwrites), dtype=np.uint8),
                    ]
                )
                phase.append((addrs, wflags))
            phases.append(phase)

        meta = {
            "n_cells": n_cells,
            "interest_cells": interest,
            "churn": self.churn,
        }
        return phases, placement, meta


class Barnes(NBodyBenchmark):
    """Barnes-Hut (16K bodies, 3.94 MB): moderate remote working set.

    The whole cell pool is small enough that a 512 KB page cache holds the
    remote working set despite fragmentation (Fig. 9: the PC systems beat
    `NCD`), but a 1/5-of-dataset PC does not — Fig. 6's thrashing case.
    """

    name = "barnes"
    paper_params = "16K bodies"
    paper_mb = 3.94

    interest_cells = 1400
    churn = 0.12
    zipf_alpha = 0.9


class FMM(NBodyBenchmark):
    """FMM (16K bodies, 29.23 MB): a large, sparse remote working set.

    Interaction lists are bigger, flatter, and churn faster than Barnes';
    the remote working set is several MB of partially-used pages, so every
    page cache fragments and `NCD` wins (Fig. 9), while the victim NC
    keeps its edge over `nc` (Figs. 4/7).
    """

    name = "fmm"
    paper_params = "16K bodies"
    paper_mb = 29.23

    cells_fraction = 0.42
    interest_cells = 6000
    churn = 0.3
    zipf_alpha = 0.45
    hot_fraction = 0.15
