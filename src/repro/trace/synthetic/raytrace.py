"""Synthetic Raytrace: ray tracing the `car` scene (34.86 MB).

The paper's characterisation: **read-dominated, irregular, with a very
large and sparse remote working set** — the scene (BSP tree + primitives)
is by far the biggest dataset in Table 3 and is read in small
partial-block pieces along each ray.  Hot geometry (the upper BSP levels)
is re-read constantly (capacity misses), the long tail is touched rarely
(cold misses, page-cache fragmentation).  Fig. 9/10: read traffic
dominates, `NCD`'s fine-grain 512 KB beats equally-sized page caches, and
the victim-NC advantage over `nc` is modest because write traffic is low.

Model: processors trace rays; each ray reads a handful of Zipf-selected
scene objects (3 blocks each, 2 words read per block) and writes one local
framebuffer pixel.  Popularity is per-processor-permuted beyond the shared
head so working sets overlap only in the hot core.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..patterns import block_runs, sequential_words, zipf_ranks
from ..record import TraceSpec
from ..regions import Layout, place_partitions, place_round_robin
from .base import Phase, SyntheticBenchmark

OBJECT_BLOCKS = 3
WORDS_PER_BLOCK = 16


class Raytrace(SyntheticBenchmark):
    name = "raytrace"
    paper_params = "car"
    paper_mb = 34.86

    reads_per_ray = 12
    zipf_alpha = 0.62
    n_chunks = 4  # split the frame into a few interleaved phases

    def _build(
        self, spec: TraceSpec, rng: np.random.Generator, layout: Layout
    ) -> Tuple[List[Phase], Dict[int, int], Dict[str, object]]:
        n = spec.n_procs
        ppn = max(1, n // 8)
        n_nodes = max(1, n // ppn)
        total = self.dataset_bytes(spec.scale)

        scene = self.alloc_partitionable(layout, "scene", int(total * 0.88), n)
        fb = self.alloc_partitionable(layout, "framebuffer", int(total * 0.12), n)
        fb_parts = fb.partition(n)
        placement = place_partitions(fb_parts, ppn)
        placement.update(place_round_robin(scene, n_nodes))

        n_objects = scene.n_words // (OBJECT_BLOCKS * WORDS_PER_BLOCK)
        budget = self.per_proc_budget(spec) // self.n_chunks
        # each ray costs reads_per_ray * 2 words read + 1 pixel write
        rays = max(8, budget // (self.reads_per_ray * 2 + 1))

        # per-processor object permutation: only the Zipf head is shared
        perms = [rng.permutation(n_objects) for _ in range(n)]

        phases: List[Phase] = []
        for chunk in range(self.n_chunks):
            phase: Phase = []
            for p in range(n):
                n_reads = rays * self.reads_per_ray
                ranks = zipf_ranks(rng, n_objects, n_reads, self.zipf_alpha)
                hot = ranks < max(8, n_objects // 50)
                objs = np.where(hot, ranks, perms[p][ranks])
                # read the first 2 words of 2 of the object's 3 blocks
                first = objs * (OBJECT_BLOCKS * WORDS_PER_BLOCK)
                starts = np.empty(n_reads * 2, dtype=np.int64)
                starts[0::2] = first
                starts[1::2] = first + WORDS_PER_BLOCK
                reads = block_runs(scene, starts, run_words=1)

                fbp = fb_parts[p]
                px = sequential_words(
                    fbp, (chunk * rays) % fbp.n_words, rays, 1
                )

                addrs = np.concatenate([reads, px])
                wflags = np.concatenate(
                    [
                        np.zeros(len(reads), dtype=np.uint8),
                        np.ones(len(px), dtype=np.uint8),
                    ]
                )
                phase.append((addrs, wflags))
            phases.append(phase)

        meta = {"n_objects": n_objects, "rays_per_chunk": rays}
        return phases, placement, meta
