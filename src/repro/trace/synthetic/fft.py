"""Synthetic FFT: the SPLASH-2 six-step 64K-point FFT (3.54 MB).

The paper's characterisation: **regular, high spatial locality, and
dominated by *necessary* (coherence/cold) misses** — every transpose reads
data the owner just rewrote, so no remote-data cache can help, and the
fastest system is the one that adds the least overhead to the unavoidable
remote access.  This is why `base` *beats* the infinite DRAM NC for FFT in
Fig. 9 (30 vs. 33 cycles per necessary miss) and why page caches see very
few relocations (almost no capacity misses to count).

Model: iterations alternate a *compute* phase — each processor rewrites
its own partition — with a *transpose* phase — each processor reads one
contiguous slice from every other processor's partition (all-to-all).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..patterns import sequential_words
from ..record import TraceSpec
from ..regions import Layout, place_partitions
from .base import Phase, SyntheticBenchmark


class FFT(SyntheticBenchmark):
    name = "fft"
    paper_params = "64K points"
    paper_mb = 3.54

    n_iters = 4

    def _build(
        self, spec: TraceSpec, rng: np.random.Generator, layout: Layout
    ) -> Tuple[List[Phase], Dict[int, int], Dict[str, object]]:
        n = spec.n_procs
        ppn = max(1, n // 8)
        data = self.alloc_partitionable(
            layout, "data", self.dataset_bytes(spec.scale), n
        )
        parts = data.partition(n)
        placement = place_partitions(parts, ppn)

        budget = self.per_proc_budget(spec) // self.n_iters
        write_len = max(16, int(budget * 0.45))
        read_total = max(n, int(budget * 0.55))
        slice_words = max(16, (read_total // max(1, n - 1)) * 2)  # stride-2 slices

        phases: List[Phase] = []
        for it in range(self.n_iters):
            # compute phase: every processor rewrites its partition
            compute: Phase = []
            for p in range(n):
                own = parts[p]
                # rewrite the WHOLE partition (stride adapts to budget, at
                # most one block skipped never): every remote copy of it is
                # invalidated, so the next transpose misses are necessary —
                # the paper's defining FFT property
                stride = min(16, max(1, -(-own.n_words // write_len)))
                n_refs = min(write_len, own.n_words // stride)
                upd = sequential_words(own, 0, n_refs, stride)
                compute.append(self.writes_like(upd, True))
            phases.append(compute)

            # transpose phase: processor p reads slice p of every other
            # partition — the same slice each iteration, freshly rewritten,
            # hence a coherence miss stream
            transpose: Phase = []
            for p in range(n):
                reads = []
                for q in range(n):
                    if q == p:
                        continue
                    part = parts[q]
                    per_slice = max(16, min(slice_words, part.n_words // n))
                    start = (p * (part.n_words // n)) % max(1, part.n_words)
                    reads.append(
                        sequential_words(part, start, per_slice // 2, stride=2)
                    )
                addrs = np.concatenate(reads)
                transpose.append(self.writes_like(addrs, False))
            phases.append(transpose)

        meta = {"partition_bytes": parts[0].size, "slice_words": slice_words}
        return phases, placement, meta
