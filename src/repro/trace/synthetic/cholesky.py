"""Synthetic Cholesky: sparse supernodal factorisation (tk15.0, 21.37 MB).

The paper's characterisation: **high spatial locality** (supernode panels
are read as dense column blocks) but a **large footprint with an irregular
task schedule**, so the remote working set far exceeds the 16 KB NC.  Page
caches do well — relocated panel pages are fully used (low fragmentation)
— and the many first-time panel reads keep a sizeable *necessary*
component, which is why Cholesky "comes close" to FFT's base-beats-DRAM
behaviour in Fig. 9.  Under page-indexed NCs (`vp`), whole panels collide
in single sets, the degradation seen in Fig. 5.

Model: a pool of 8 KB panels owned round-robin by processors
(owner-homed).  Each task, a processor reads a few panels — chosen by a
skewed (Zipf) popularity so hot panels are re-read (capacity) while the
long tail supplies cold misses — and writes into a private scratch panel.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..patterns import sequential_words, zipf_ranks
from ..record import TraceSpec
from ..regions import PAGE, Layout
from .base import Phase, SyntheticBenchmark


class Cholesky(SyntheticBenchmark):
    name = "cholesky"
    paper_params = "tk15.0"
    paper_mb = 21.37

    panel_bytes = 8192
    panels_per_task = 3
    zipf_alpha = 0.7
    n_iters = 7

    def _build(
        self, spec: TraceSpec, rng: np.random.Generator, layout: Layout
    ) -> Tuple[List[Phase], Dict[int, int], Dict[str, object]]:
        n = spec.n_procs
        ppn = max(1, n // 8)
        total = self.dataset_bytes(spec.scale)
        pool = self.alloc_partitionable(
            layout, "panels", int(total * 0.85), n * 2
        )
        scratch = self.alloc_partitionable(layout, "scratch", int(total * 0.15), n)
        scratch_parts = scratch.partition(n)

        n_panels = max(n, pool.size // self.panel_bytes)
        panel_words = self.panel_bytes // 4
        pages_per_panel = self.panel_bytes // PAGE

        # panel i is owned (homed) by processor i mod n
        placement: Dict[int, int] = {}
        for i in range(n_panels):
            first_page = pool.first_page + i * pages_per_panel
            node = (i % n) // ppn
            for pg in range(pages_per_panel):
                placement[first_page + pg] = node
        for p, part in enumerate(scratch_parts):
            for pg in part.pages():
                placement[pg] = p // ppn

        budget = self.per_proc_budget(spec) // self.n_iters
        read_len = max(32, int(budget * 0.8) // self.panels_per_task)
        write_len = max(16, int(budget * 0.2))

        # per-processor random panel popularity permutation, so the hot
        # panels differ per processor (an irregular schedule) but overlap
        # across processors through the shared Zipf head
        perms = [rng.permutation(n_panels) for _ in range(n)]

        phases: List[Phase] = []
        for it in range(self.n_iters):
            phase: Phase = []
            for p in range(n):
                ranks = zipf_ranks(
                    rng, n_panels, self.panels_per_task, self.zipf_alpha
                )
                pieces = []
                for r in ranks.tolist():
                    panel = perms[p][r] if r % 2 else r  # mix shared + private heat
                    start = int(panel) * panel_words
                    covered = min(panel_words // 2, read_len)
                    reads = sequential_words(pool, start, covered, stride=2)
                    pieces.append(self.writes_like(reads, False))
                own = scratch_parts[p]
                wcov = min(own.n_words // 2, write_len)
                pieces.append(
                    self.writes_like(sequential_words(own, 0, wcov, 2), True)
                )
                addrs = np.concatenate([s[0] for s in pieces])
                writes = np.concatenate([s[1] for s in pieces])
                phase.append((addrs, writes))
            phases.append(phase)

        meta = {"n_panels": n_panels, "panel_bytes": self.panel_bytes}
        return phases, placement, meta
