"""Registry of the eight synthetic SPLASH-2-like benchmarks (Table 3)."""

from __future__ import annotations

from typing import Dict, Type

from ...errors import UnknownBenchmarkError
from ..record import Trace, TraceSpec
from .base import SyntheticBenchmark
from .cholesky import Cholesky
from .fft import FFT
from .lu import LU
from .nbody import Barnes, FMM
from .ocean import Ocean
from .radix import Radix
from .raytrace import Raytrace

#: name -> generator class, in the paper's Table 3 order
BENCHMARKS: Dict[str, Type[SyntheticBenchmark]] = {
    cls.name: cls
    for cls in (Barnes, Cholesky, FFT, FMM, LU, Ocean, Radix, Raytrace)
}

BENCHMARK_NAMES = tuple(BENCHMARKS)


def get_benchmark(name: str) -> SyntheticBenchmark:
    """Instantiate a benchmark generator by name."""
    try:
        return BENCHMARKS[name.lower()]()
    except KeyError:
        raise UnknownBenchmarkError(name, list(BENCHMARKS)) from None


def generate_trace(spec: TraceSpec) -> Trace:
    """Generate the trace described by ``spec``."""
    return get_benchmark(spec.benchmark).generate(spec)


__all__ = [
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "SyntheticBenchmark",
    "get_benchmark",
    "generate_trace",
    "Barnes",
    "Cholesky",
    "FFT",
    "FMM",
    "LU",
    "Ocean",
    "Radix",
    "Raytrace",
]
