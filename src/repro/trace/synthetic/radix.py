"""Synthetic Radix: the SPLASH-2 radix sort permutation (1M integers, 9.87 MB).

The paper's characterisation — Radix is its stress case: **irregular,
write-dominated, very low spatial locality, a large and sparse remote
working set**.  Consequences the model must reproduce:

* huge write and write-back traffic (Fig. 10), strongly reduced by a
  victim NC that re-captures dirty scatter blocks between bursts;
* the dirty-inclusion `nc` actively hurts (Fig. 4): its NC conflicts force
  dirty L1 blocks out, inflating write-backs;
* page caches thrash — destination pages are written by many nodes, so
  replicas are invalidated constantly and relocation never amortises
  (Figs. 6/7/9: high relocation overhead, adaptive thresholds essential);
* repeated permutation passes turn later scatter writes into *capacity*
  write misses (presence bits stay set), Fig. 3's "predominant reduction
  in write capacity misses".

Model: per pass, every processor streams its own key partition (local
reads) while scattering writes into per-(processor, digit) runs spread
over the whole destination array — 128 concurrently-active runs per
processor, one block each per pass, revisited on every pass.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..interleave import merge_streams
from ..patterns import sequential_words
from ..record import TraceSpec
from ..regions import Layout, place_partitions, place_round_robin
from .base import Phase, SyntheticBenchmark


def cumcount(values: np.ndarray) -> np.ndarray:
    """Occurrence index of each element within its equal-value group.

    ``cumcount([3, 5, 3, 3, 5]) == [0, 0, 1, 2, 1]`` — used to advance a
    per-digit destination run pointer in source order, vectorised.
    """
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    group_start = np.zeros(len(values), dtype=np.int64)
    if len(values):
        new_group = np.empty(len(values), dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_vals[1:] != sorted_vals[:-1]
        starts = np.flatnonzero(new_group)
        group_start[starts] = np.arange(len(values))[starts]
        group_start = np.maximum.accumulate(group_start)
    ranks = np.arange(len(values), dtype=np.int64) - group_start
    out = np.empty(len(values), dtype=np.int64)
    out[order] = ranks
    return out


class Radix(SyntheticBenchmark):
    name = "radix"
    paper_params = "1M integers"
    paper_mb = 9.87

    n_digits = 128
    n_passes = 3

    def _build(
        self, spec: TraceSpec, rng: np.random.Generator, layout: Layout
    ) -> Tuple[List[Phase], Dict[int, int], Dict[str, object]]:
        n = spec.n_procs
        ppn = max(1, n // 8)
        n_nodes = max(1, n // ppn)
        total = self.dataset_bytes(spec.scale)
        src = self.alloc_partitionable(layout, "keys", int(total * 0.47), n)
        dst = self.alloc_partitionable(layout, "ranks", int(total * 0.47), n)
        hist = layout.alloc("histogram", max(4096, int(total * 0.06)))

        src_parts = src.partition(n)
        placement = place_partitions(src_parts, ppn)
        # destination pages are first-touched by whoever's keys land there —
        # effectively scattered; model as round-robin homes
        placement.update(place_round_robin(dst, n_nodes))
        placement.update(place_round_robin(hist, n_nodes))

        budget = self.per_proc_budget(spec) // self.n_passes
        keys_per_pass = max(64, int(budget * 0.42))
        rank_reads = max(32, int(budget * 0.16))

        digit_words = dst.n_words // self.n_digits
        run_words = max(16, digit_words // n)  # each proc's slot per digit

        phases: List[Phase] = []
        for pp in range(self.n_passes):
            phase: Phase = []
            for p in range(n):
                own = src_parts[p]
                covered = min(own.n_words, keys_per_pass)
                reads = sequential_words(own, (pp * covered) % own.n_words, covered, 1)

                digits = rng.integers(0, self.n_digits, size=covered)
                offsets = cumcount(digits) % run_words
                dest_words = (
                    digits * digit_words + p * run_words + offsets
                ) % dst.n_words
                writes = dst.start + dest_words * 4

                streams = [
                    self.writes_like(reads, False),
                    self.writes_like(writes, True),
                ]
                if pp > 0:
                    # the next pass consumes the permuted output: each
                    # processor reads its position-slice of the rank array,
                    # freshly scattered by everyone — the remote *read*
                    # component of Radix (its read stall in Figs. 9/11)
                    slice_words = dst.n_words // n
                    rstride = min(16, max(1, -(-slice_words // rank_reads)))
                    n_refs = min(rank_reads, slice_words // rstride)
                    rr = sequential_words(dst, p * slice_words, n_refs, rstride)
                    streams.append(self.writes_like(rr, False))

                merged = merge_streams(streams, rng=None)
                phase.append(merged)
            phases.append(phase)

        meta = {
            "n_digits": self.n_digits,
            "run_words": run_words,
            "dst_pages": dst.n_pages,
        }
        return phases, placement, meta
