"""Framework shared by the eight synthetic SPLASH-2-like generators.

Each generator reproduces the *sharing structure* its benchmark is known
for (and that the paper's analysis leans on): dataset size (Table 3),
spatial locality, access regularity, read/write mix, and the size and
sparseness of the remote working set.  The generators are deterministic
given (benchmark, seed, refs, scale).

Scaling
-------
The paper's traces have hundreds of millions of references; ours are
bounded (default 400k), so datasets are scaled by ``TraceSpec.scale``
(default 1/8 set by the runner) and the access patterns keep every
*relative* relationship the paper's conclusions use: remote working set
vs. the 16 KB NC, page demand vs. the page-cache fraction of the dataset,
and read/write mixes.  ``scale=1.0`` reproduces the Table 3 footprints
(useful with proportionally longer traces).
"""

from __future__ import annotations

import abc
import zlib
from typing import Dict, List, Tuple

import numpy as np

from ...errors import TraceError
from ..interleave import Stream, interleave_blocks, round_robin
from ..record import Trace, TraceSpec
from ..regions import PAGE, Layout, Region

MB = 1 << 20

#: A phase is one per-processor list of streams; phases are barriers.
Phase = List[Stream]


class SyntheticBenchmark(abc.ABC):
    """One synthetic SPLASH-2-like workload."""

    #: registry key, e.g. ``"radix"``
    name: str = ""
    #: the paper's Table 3 problem-size string
    paper_params: str = ""
    #: the paper's Table 3 shared-memory footprint in MB
    paper_mb: float = 0.0

    # ---- public API ---------------------------------------------------------

    def dataset_bytes(self, scale: float) -> int:
        """Scaled shared-data footprint (sizes fraction-based page caches)."""
        return max(PAGE, int(self.paper_mb * MB * scale))

    def generate(self, spec: TraceSpec) -> Trace:
        """Build the interleaved trace for this benchmark."""
        if spec.benchmark != self.name:
            raise TraceError(
                f"spec is for {spec.benchmark!r}, generator is {self.name!r}"
            )
        rng = np.random.default_rng(self._seed_material(spec.seed))
        layout = Layout()
        phases, placement, meta = self._build(spec, rng, layout)
        parts = [round_robin(phase) for phase in phases if phase]
        pids, addrs, writes = interleave_blocks(parts)
        if len(pids) == 0:
            raise TraceError(f"{self.name}: generator produced an empty trace")
        trace = Trace(
            self.name,
            pids,
            addrs,
            writes,
            dataset_bytes=self.dataset_bytes(spec.scale),
            placement=placement,
            meta={
                "paper_params": self.paper_params,
                "paper_mb": self.paper_mb,
                "scale": spec.scale,
                "seed": spec.seed,
                **meta,
            },
        )
        trace.validate(spec.n_procs, address_limit=layout.total_bytes)
        return trace

    # ---- subclass contract ---------------------------------------------------

    @abc.abstractmethod
    def _build(
        self, spec: TraceSpec, rng: np.random.Generator, layout: Layout
    ) -> Tuple[List[Phase], Dict[int, int], Dict[str, object]]:
        """Produce (phases, page placement, extra metadata)."""

    # ---- helpers ----------------------------------------------------------------

    def _seed_material(self, seed: int) -> int:
        """Mix the benchmark name into the seed so apps differ at equal seeds."""
        return (zlib.crc32(self.name.encode()) << 16) ^ (seed & 0xFFFFFFFF)

    @staticmethod
    def per_proc_budget(spec: TraceSpec) -> int:
        return max(1, spec.refs // spec.n_procs)

    @staticmethod
    def alloc_partitionable(layout: Layout, name: str, nbytes: int, parts: int) -> Region:
        """Allocate a region guaranteed to split ``parts`` ways."""
        return layout.alloc(name, max(nbytes, parts * PAGE))

    @staticmethod
    def writes_like(addrs: np.ndarray, write: bool) -> Stream:
        return addrs, np.full(len(addrs), 1 if write else 0, dtype=np.uint8)

    @staticmethod
    def scaled(nbytes: float, scale: float, minimum: int = PAGE) -> int:
        return max(minimum, int(nbytes * scale))
