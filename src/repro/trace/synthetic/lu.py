"""Synthetic LU: dense blocked LU factorisation (512x512, 2.16 MB).

The paper's characterisation (Secs. 6.1-6.3): **regular access pattern,
high spatial locality, small remote working set** — small enough to fit
the 16 KB NC, which is why the page-indexed `vp`/`vpp`/`vxp` variants are
the *worst* case for LU (all blocks of the hot pivot page collide in one
NC set and the working set gets pushed into the slower page cache).

Model: the matrix is partitioned into per-processor panels (owner-homed,
the paper's fixed first-touch for LU).  Each iteration all processors read
the rotating owner's *pivot panel* in three passes, interleaved with
full-coverage updates of their own panel halves.  The combined
per-iteration footprint (two panels, ~4x the 16 KB cache) evicts the pivot
between passes, so the re-read passes are exactly the remote capacity
misses a 16 KB NC absorbs, while the rotation supplies a cold-miss floor.

Note on scale: panels must overwhelm the 16 KB L1 for the eviction
dynamics to exist at all, so the LU dataset is floored at 512 KB (32
panels x 4 pages) regardless of ``TraceSpec.scale``; the paper-size
footprint is reached at ``scale >= 0.24``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..patterns import sequential_words
from ..record import TraceSpec
from ..regions import PAGE, Layout, place_partitions
from .base import Phase, SyntheticBenchmark


class LU(SyntheticBenchmark):
    name = "lu"
    paper_params = "512 x 512"
    paper_mb = 2.16

    n_iters = 5
    read_passes = 3  # one cold pass + two capacity passes over the pivot
    # 4-page (16 KB) panels: pivot + own panel = 4x the ways of the 2-way
    # L1 (guaranteed eviction between passes) while the pivot exactly fills
    # the 4-way 16 KB NC — the paper's "small remote working set that fits
    # the NC"
    min_panel_pages = 4

    def dataset_bytes(self, scale: float) -> int:
        return max(32 * self.min_panel_pages * PAGE, super().dataset_bytes(scale))

    def _build(
        self, spec: TraceSpec, rng: np.random.Generator, layout: Layout
    ) -> Tuple[List[Phase], Dict[int, int], Dict[str, object]]:
        n = spec.n_procs
        ppn = max(1, n // 8)
        matrix = self.alloc_partitionable(
            layout, "matrix", self.dataset_bytes(spec.scale), n
        )
        panels = matrix.partition(n)
        placement = place_partitions(panels, ppn)

        budget = self.per_proc_budget(spec) // self.n_iters
        # 60% pivot reads across the passes, 40% local panel updates; the
        # stride adapts to the budget but is capped at one touch per block
        # so every pass covers the whole panel (maximal page locality)
        pass_len = max(16, int(budget * 0.6) // self.read_passes)
        update_len = max(16, int(budget * 0.4) // (self.read_passes - 1))

        phases: List[Phase] = []
        covered = 0
        for it in range(self.n_iters):
            pivot = panels[it % n]
            stride_r = min(16, max(1, -(-pivot.n_words // pass_len)))
            covered = min(pass_len, pivot.n_words // stride_r)
            phase: Phase = []
            for p in range(n):
                # a finished pivot panel is never rewritten: its owner
                # updates the *next* panel it owns instead (n must be > 1)
                own = panels[p if p != it % n else (p + 1) % n]
                stride_w = min(16, max(1, -(-own.n_words // update_len)))
                wcov = min(update_len, own.n_words // stride_w)
                pieces = []
                for r in range(self.read_passes):
                    reads = sequential_words(pivot, 0, covered, stride=stride_r)
                    pieces.append(self.writes_like(reads, False))
                    if r < self.read_passes - 1:
                        # full-coverage update between passes evicts the
                        # pivot from the 16 KB cache
                        upd = sequential_words(
                            own, r * (own.n_words // 2), wcov, stride_w
                        )
                        pieces.append(self.writes_like(upd, True))
                addrs = np.concatenate([s[0] for s in pieces])
                writes = np.concatenate([s[1] for s in pieces])
                phase.append((addrs, writes))
            phases.append(phase)

        meta = {"panel_bytes": panels[0].size, "pivot_pass_words": covered}
        return phases, placement, meta
