"""The whole clustered DSM machine: nodes + directory + placement."""

from __future__ import annotations

from typing import List, Optional

from ..coherence.directory import Directory
from ..params import SystemConfig
from ..rdc.relocation import DirectoryRelocationCounters
from .node import Node
from .placement import FirstTouchPlacement


class Machine:
    """Structural state of one simulated system configuration."""

    __slots__ = ("config", "nodes", "directory", "placement", "dir_counters")

    def __init__(
        self,
        config: SystemConfig,
        nodes: List[Node],
        placement: Optional[FirstTouchPlacement] = None,
        dir_counters: Optional[DirectoryRelocationCounters] = None,
    ) -> None:
        self.config = config
        self.nodes = nodes
        self.directory = Directory(config.n_nodes)
        self.placement = placement or FirstTouchPlacement()
        self.dir_counters = dir_counters

    def node_of_pid(self, pid: int) -> Node:
        return self.nodes[pid // self.config.procs_per_node]

    def l1_of(self, pid: int):
        node = self.nodes[pid // self.config.procs_per_node]
        return node.l1s[pid % self.config.procs_per_node]

    # ---- global invariants (exercised by property tests) -----------------

    def dirty_copies_of(self, block: int) -> int:
        """Count dirty copies of a block across the whole machine.

        Coherence requires this to be <= 1 at every quiescent point.
        """
        from ..coherence.states import MESIR, NCState, PCBlockState

        bpp = self.config.blocks_per_page
        page, offset = divmod(block, bpp)
        count = 0
        for node in self.nodes:
            for l1 in node.l1s:
                line = l1.peek(block)
                if line is not None and line.state in (MESIR.M, MESIR.O):
                    count += 1
            if node.nc.probe(block) == NCState.DIRTY:
                count += 1
            if node.pc is not None and node.pc.block_state(page, offset) == int(
                PCBlockState.DIRTY
            ):
                count += 1
        return count

    def valid_copy_nodes(self, block: int) -> "set[int]":
        """Nodes holding any valid copy of a block (L1, NC, or PC)."""
        from ..coherence.states import NCState, PCBlockState

        bpp = self.config.blocks_per_page
        page, offset = divmod(block, bpp)
        holders = set()
        for node in self.nodes:
            if node.resident_in_l1s(block):
                holders.add(node.node_id)
            elif node.nc.probe(block) is not None:
                holders.add(node.node_id)
            elif node.pc is not None and node.pc.block_state(page, offset) != int(
                PCBlockState.INVALID
            ):
                holders.add(node.node_id)
        return holders
