"""Machine assembly: page placement, cluster nodes, and named systems."""

from .placement import FirstTouchPlacement
from .node import Node
from .machine import Machine
from .builder import SYSTEM_NAMES, build_machine, system_config

__all__ = [
    "FirstTouchPlacement",
    "Node",
    "Machine",
    "SYSTEM_NAMES",
    "build_machine",
    "system_config",
]
