"""Page placement: which node is a page's home.

The paper places data with a **first-touch** policy (Sec. 5.2): a page's
home is the node of the first processor to reference it.  SPLASH-2 codes
are optimised so that first-touch is close to optimal — our synthetic
generators imitate this by having each processor initialise/first-touch its
own partition.

Generators may also supply an explicit pre-placement map, which models the
paper's fix to LU (whose natural first-touch would put every page on
cluster 0 because the master processor initialises the matrix).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional


class FirstTouchPlacement:
    """Lazily assigns each page's home to its first toucher."""

    def __init__(self, preset: Optional[Mapping[int, int]] = None) -> None:
        self._home: Dict[int, int] = dict(preset) if preset else {}

    def touch(self, page: int, node: int) -> int:
        """Home of ``page``, assigning ``node`` if this is the first touch."""
        home = self._home.get(page)
        if home is None:
            self._home[page] = node
            return node
        return home

    def home_of(self, page: int) -> Optional[int]:
        """Home of ``page`` if assigned, else None."""
        return self._home.get(page)

    def pages_homed_at(self, node: int) -> int:
        """How many pages live on ``node`` (placement-balance metric)."""
        return sum(1 for h in self._home.values() if h == node)

    def n_pages(self) -> int:
        return len(self._home)
