"""One DSM cluster: processors + caches + bus + pseudo-processor resources.

A :class:`Node` is a structural container; the bus/snooping *behaviour*
lives in :class:`repro.sim.simulator.Simulator`, which owns the protocol
orchestration (the pseudo-processor role of Fig. 1).
"""

from __future__ import annotations

from typing import List, Optional

from ..coherence.cache import SetAssocCache
from ..params import SystemConfig
from ..rdc.adaptive import ThresholdState
from ..rdc.base import NetworkCache
from ..rdc.pagecache import PageCache
from ..rdc.relocation import NCSetRelocationCounters


class Node:
    """A cluster: per-processor L1 caches, an NC, and optionally a PC."""

    __slots__ = ("node_id", "l1s", "nc", "pc", "threshold", "nc_counters")

    def __init__(
        self,
        node_id: int,
        l1s: List[SetAssocCache],
        nc: NetworkCache,
        pc: Optional[PageCache] = None,
        threshold: Optional[ThresholdState] = None,
        nc_counters: Optional[NCSetRelocationCounters] = None,
    ) -> None:
        self.node_id = node_id
        self.l1s = l1s
        self.nc = nc
        self.pc = pc
        self.threshold = threshold
        self.nc_counters = nc_counters

    @property
    def n_procs(self) -> int:
        return len(self.l1s)

    def resident_in_l1s(self, block: int) -> bool:
        """Any processor cache in the node holds the block."""
        return any(l1.peek(block) is not None for l1 in self.l1s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node({self.node_id}, procs={self.n_procs}, "
            f"nc={type(self.nc).__name__}, pc={'yes' if self.pc else 'no'})"
        )


def make_node(config: SystemConfig, node_id: int, nc: NetworkCache,
              pc: Optional[PageCache], threshold: Optional[ThresholdState],
              nc_counters: Optional[NCSetRelocationCounters]) -> Node:
    """Assemble a node with fresh L1 caches from a system config."""
    l1s = [SetAssocCache(config.cache) for _ in range(config.procs_per_node)]
    return Node(node_id, l1s, nc, pc, threshold, nc_counters)
