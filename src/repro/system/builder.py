"""Named system configurations and machine construction.

The paper's system names (Sec. 5.1) are reproduced verbatim:

=========  ==================================================================
name       meaning
=========  ==================================================================
``base``   no NC, no page cache
``nc``     16 KB 4-way SRAM NC, inclusion relaxed for clean blocks
``vb``     16 KB 4-way network victim cache, block-address indexed
``vp``     idem, page-address indexed
``ncs``    infinite SRAM NC (ideal)
``ncd``    512 KB 4-way DRAM NC with full inclusion
``dinf``   infinite DRAM NC — the normalisation reference of Figs. 9-11
``p``      page cache only, no NC (Fig. 7's left bars)
``ncp``    `nc` + page cache, R-NUMA directory relocation counters
``vbp``    `vb` + page cache, directory counters
``vpp``    `vp` + page cache, directory counters
``vxp``    `vp` + page cache, per-NC-set victimisation counters (proposal)
=========  ==================================================================

A digit suffix selects a page-cache size as a fraction of the dataset:
``ncp5`` = 1/5, ``vbp9`` = 1/9 (the paper's memory-pressure points).  With
no suffix, page-cache systems get the fixed 512 KB used for the
equal-DRAM comparison against ``ncd``.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError, UnknownSystemError
from ..params import (
    DEFAULT_DRAM_NC_SIZE,
    DEFAULT_INITIAL_THRESHOLD,
    BusProtocol,
    CacheGeometry,
    LatencyModel,
    NCConfig,
    NCIndexing,
    NCKind,
    PCConfig,
    RelocationCounters,
    SystemConfig,
    ThresholdPolicy,
)
from ..rdc.adaptive import AdaptiveThreshold, FixedThreshold
from ..rdc.base import NetworkCache
from ..rdc.dram import FullInclusionDramNC
from ..rdc.infinite import InfiniteNC
from ..rdc.none import NullNC
from ..rdc.pagecache import PageCache
from ..rdc.relocation import DirectoryRelocationCounters, NCSetRelocationCounters
from ..rdc.sram import DirtyInclusionNC
from ..rdc.victim import VictimNC
from .machine import Machine
from .node import make_node
from .placement import FirstTouchPlacement

# NC flavour per name prefix: (kind, indexing)
_NC_FLAVOURS: Dict[str, Tuple[NCKind, NCIndexing]] = {
    "base": (NCKind.NONE, NCIndexing.BLOCK),
    "p": (NCKind.NONE, NCIndexing.BLOCK),
    "nc": (NCKind.DIRTY_INCLUSION, NCIndexing.BLOCK),
    "ncp": (NCKind.DIRTY_INCLUSION, NCIndexing.BLOCK),
    "vb": (NCKind.VICTIM, NCIndexing.BLOCK),
    "vbp": (NCKind.VICTIM, NCIndexing.BLOCK),
    "vp": (NCKind.VICTIM, NCIndexing.PAGE),
    "vpp": (NCKind.VICTIM, NCIndexing.PAGE),
    "vxp": (NCKind.VICTIM, NCIndexing.PAGE),
    "ncs": (NCKind.INFINITE_SRAM, NCIndexing.BLOCK),
    "ncd": (NCKind.DRAM_FULL_INCLUSION, NCIndexing.BLOCK),
    "dinf": (NCKind.INFINITE_DRAM, NCIndexing.BLOCK),
}

_PC_SYSTEMS = {"p", "ncp", "vbp", "vpp", "vxp"}

#: Every system name understood by :func:`system_config` (without suffixes).
SYSTEM_NAMES = tuple(sorted(_NC_FLAVOURS))

_NAME_RE = re.compile(r"^(?P<prefix>[a-z]+)(?P<frac>\d+)?$")


def parse_system_name(name: str) -> Tuple[str, Optional[int]]:
    """Split e.g. ``'ncp5'`` into ``('ncp', 5)``; plain names get None."""
    m = _NAME_RE.match(name.strip().lower())
    if not m:
        raise UnknownSystemError(name, list(SYSTEM_NAMES))
    prefix = m.group("prefix")
    frac = m.group("frac")
    if prefix not in _NC_FLAVOURS:
        raise UnknownSystemError(name, list(SYSTEM_NAMES))
    if frac is not None:
        if prefix not in _PC_SYSTEMS:
            raise ConfigurationError(
                f"system {prefix!r} has no page cache; size suffix {frac!r} "
                "is meaningless"
            )
        denom = int(frac)
        if denom < 1:
            raise ConfigurationError("page-cache fraction suffix must be >= 1")
        return prefix, denom
    return prefix, None


def system_config(
    name: str,
    *,
    cache_size: Optional[int] = None,
    cache_assoc: Optional[int] = None,
    nc_size: Optional[int] = None,
    threshold_policy: Optional[ThresholdPolicy] = None,
    initial_threshold: Optional[int] = None,
    latency: Optional[LatencyModel] = None,
    n_nodes: Optional[int] = None,
    procs_per_node: Optional[int] = None,
    protocol: Optional[BusProtocol] = None,
    decrement_on_invalidation: bool = False,
    nc_counter_sharing: int = 1,
) -> SystemConfig:
    """Build the :class:`SystemConfig` for a paper system name.

    Keyword overrides support the parameter sweeps of the figures: Fig. 3
    varies ``cache_assoc`` and ``nc_size``; Figs. 6/11 vary the threshold
    policy and its initial value.
    """
    prefix, denom = parse_system_name(name)
    kind, indexing = _NC_FLAVOURS[prefix]

    base = SystemConfig()
    cache = CacheGeometry(
        cache_size if cache_size is not None else base.cache.size,
        cache_assoc if cache_assoc is not None else base.cache.assoc,
        base.cache.block_size,
    )

    if kind is NCKind.DRAM_FULL_INCLUSION:
        default_nc_size = DEFAULT_DRAM_NC_SIZE
    else:
        default_nc_size = base.nc.size
    nc = NCConfig(
        kind=kind,
        size=nc_size if nc_size is not None else default_nc_size,
        assoc=base.nc.assoc,
        indexing=indexing,
    )

    if prefix in _PC_SYSTEMS:
        counters = (
            RelocationCounters.NC_SET
            if prefix == "vxp"
            else RelocationCounters.DIRECTORY
        )
        pc = PCConfig(
            enabled=True,
            size_bytes=DEFAULT_DRAM_NC_SIZE if denom is None else None,
            fraction=(1.0 / denom) if denom is not None else None,
            counters=counters,
            threshold_policy=threshold_policy or ThresholdPolicy.ADAPTIVE,
            initial_threshold=(
                initial_threshold
                if initial_threshold is not None
                else DEFAULT_INITIAL_THRESHOLD
            ),
            decrement_on_invalidation=decrement_on_invalidation,
            nc_counter_sharing=nc_counter_sharing,
        )
    else:
        pc = PCConfig()

    return SystemConfig(
        name=name.strip().lower(),
        n_nodes=n_nodes if n_nodes is not None else base.n_nodes,
        procs_per_node=(
            procs_per_node if procs_per_node is not None else base.procs_per_node
        ),
        cache=cache,
        nc=nc,
        pc=pc,
        latency=latency if latency is not None else LatencyModel(),
        protocol=protocol if protocol is not None else BusProtocol.MESIR,
    )


def _make_nc(config: SystemConfig) -> NetworkCache:
    nc = config.nc
    if nc.kind is NCKind.NONE:
        return NullNC()
    if nc.kind is NCKind.INFINITE_SRAM:
        return InfiniteNC(is_dram=False)
    if nc.kind is NCKind.INFINITE_DRAM:
        return InfiniteNC(is_dram=True)
    geometry = nc.geometry(config.block_size)
    if nc.kind is NCKind.VICTIM:
        return VictimNC(geometry, nc.indexing, config.blocks_per_page)
    if nc.kind is NCKind.DIRTY_INCLUSION:
        return DirtyInclusionNC(geometry)
    if nc.kind is NCKind.DRAM_FULL_INCLUSION:
        return FullInclusionDramNC(geometry)
    raise ConfigurationError(f"unhandled NC kind {nc.kind}")  # pragma: no cover


def build_machine(
    config: SystemConfig,
    dataset_bytes: int = 0,
    placement: Optional[FirstTouchPlacement] = None,
) -> Machine:
    """Instantiate a fresh :class:`Machine` for one simulation run.

    ``dataset_bytes`` (the benchmark's shared-data size) sizes
    fraction-based page caches; it may be 0 when the config has no PC or a
    byte-sized PC.
    """
    pc_cfg = config.pc
    if pc_cfg.enabled and pc_cfg.fraction is not None and dataset_bytes <= 0:
        raise ConfigurationError(
            "a fraction-sized page cache needs the benchmark dataset size"
        )

    nodes = []
    for node_id in range(config.n_nodes):
        nc = _make_nc(config)
        pc = None
        threshold = None
        nc_counters = None
        if pc_cfg.enabled:
            frames = pc_cfg.frames_for_dataset(dataset_bytes, config.page_size)
            pc = PageCache(frames, config.blocks_per_page, pc_cfg.hit_counter_max)
            if pc_cfg.threshold_policy is ThresholdPolicy.ADAPTIVE:
                threshold = AdaptiveThreshold(
                    initial=pc_cfg.initial_threshold,
                    increment=pc_cfg.threshold_increment,
                    break_even=pc_cfg.break_even,
                    window=pc_cfg.window_factor * frames,
                )
            else:
                threshold = FixedThreshold(pc_cfg.initial_threshold)
            if pc_cfg.counters is RelocationCounters.NC_SET:
                assert isinstance(nc, VictimNC)
                nc_counters = NCSetRelocationCounters(
                    nc.n_sets,
                    config.blocks_per_page.bit_length() - 1,
                    sharing=pc_cfg.nc_counter_sharing,
                )
        nodes.append(make_node(config, node_id, nc, pc, threshold, nc_counters))

    dir_counters = None
    if pc_cfg.enabled and pc_cfg.counters is RelocationCounters.DIRECTORY:
        dir_counters = DirectoryRelocationCounters()

    return Machine(config, nodes, placement, dir_counters)
