"""Analytic surrogate model and design-space exploration.

The paper evaluates a handful of NC/PC configurations per figure because
every cell costs a full trace-driven simulation.  This package turns the
reproduction into a *design-space search tool* (ROADMAP item 2): a cheap
analytic predictor maps (per-trace statistics, system configuration) to
the Eq. 1 stall components, is calibrated on real sweep results by least
squares, and then ranks millions of candidate configurations in seconds.
Only the predicted Pareto frontier is simulated for real, and every
simulated cell doubles as a validation point — the predicted-vs-simulated
error is always reported, never assumed.

Layout (the layer-estimator pattern: sum cheap per-component estimates,
validate against true measurements):

* :mod:`~repro.surrogate.features` — feature extraction: trace statistics
  from :mod:`repro.trace.stats` crossed with configuration scalars;
* :mod:`~repro.surrogate.model` — the fitted linear model over those
  features, one output per Eq. 1 component, JSON-serialisable;
* :mod:`~repro.surrogate.fit` — calibration: run a training sweep,
  assemble the dataset, solve the ridge least-squares system, validate
  held-out cells cell-by-cell;
* :mod:`~repro.surrogate.explore` — the ``repro explore`` engine:
  enumerate or sample a design space, rank every candidate with the
  surrogate, simulate only the Pareto frontier, report errors.

The model predicts per-reference *event rates* (NC hits, PC hits, remote
misses, relocations, cluster c2c hits); stall cycles are reconstructed
exactly from those rates and the configuration's Table 1 latencies.  The
trace-driven simulator's event counts do not depend on latencies at all,
so latency what-ifs (e.g. a slower interconnect) pass through the
surrogate *analytically exactly* — only the count predictions carry
model error.  See ``docs/EXPLORE.md`` for the full contract, calibration
protocol, and the honest accuracy table.
"""

from .explore import (
    Candidate,
    DesignSpace,
    ExploreOutcome,
    FrontierEntry,
    calibrate,
    check_surrogate,
    explore,
    pareto_frontier,
    rank_candidates,
)
from .features import FEATURE_NAMES, TraceFeatures, cell_features, trace_features
from .fit import (
    CellValidation,
    error_summary,
    fit_surrogate,
    holdout_configs,
    training_configs,
    validate_model,
)
from .model import SurrogateError, SurrogateModel

__all__ = [
    "Candidate",
    "CellValidation",
    "DesignSpace",
    "ExploreOutcome",
    "FEATURE_NAMES",
    "FrontierEntry",
    "SurrogateError",
    "SurrogateModel",
    "TraceFeatures",
    "calibrate",
    "cell_features",
    "check_surrogate",
    "error_summary",
    "explore",
    "fit_surrogate",
    "holdout_configs",
    "pareto_frontier",
    "rank_candidates",
    "trace_features",
    "training_configs",
    "validate_model",
]
