"""Calibrating and validating the surrogate against real sweeps.

The calibration protocol (see ``docs/EXPLORE.md``):

1. simulate a **training matrix** — a spread of configurations chosen to
   vary every configuration feature (NC kind/size, PC size, threshold) —
   over a set of benchmarks (:func:`training_configs`);
2. extract one feature vector and one per-component event-rate target per
   cell (:func:`build_dataset`) and solve the ridge least-squares system
   (:meth:`~repro.surrogate.model.SurrogateModel.fit`);
3. simulate a **held-out matrix** of configurations the fit never saw
   (:func:`holdout_configs`) and compare predictions cell by cell
   (:func:`validate_model`) — the same machinery that grades the Pareto
   frontier in ``repro explore``.

Everything here is deterministic: the sweeps are bit-identical serial or
parallel, the dataset rows are assembled in sorted cell order, and the
solve is a direct method — the same sweep yields bit-identical
coefficients (pinned by ``tests/surrogate/test_fit.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from statistics import median
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..obs.profile import STALL_COMPONENTS
from ..params import SystemConfig
from ..sim.latency import stall_components
from ..sim.results import SimulationResult
from ..sim.runner import DEFAULT_SCALE, get_trace
from ..system.builder import system_config
from .features import TraceFeatures, cell_features, trace_features
from .model import SurrogateModel

#: benchmarks used for calibration/validation unless overridden: the four
#: corners of the paper's locality/regularity spectrum
DEFAULT_FIT_BENCHMARKS: Tuple[str, ...] = ("barnes", "ocean", "radix", "raytrace")

_KB = 1024


def training_configs(
    nc_sizes: Sequence[int] = (4 * _KB, 16 * _KB, 64 * _KB),
    thresholds: Sequence[int] = (2, 8, 32),
) -> "OrderedDict[str, SystemConfig]":
    """The default training matrix: every config feature gets variation.

    Victim-NC sizes sweep ``nc_sizes`` for both indexings, page-cache
    systems sweep the size suffix, and the relocation ``thresholds`` vary
    on one PC system — enough spread to identify every coefficient
    without simulating the whole cross product.
    """
    configs: "OrderedDict[str, SystemConfig]" = OrderedDict()
    configs["base"] = system_config("base")
    configs["nc"] = system_config("nc")
    configs["ncd"] = system_config("ncd")
    for size in nc_sizes:
        configs[f"vb@{size // _KB}k"] = system_config("vb", nc_size=size)
        configs[f"vp@{size // _KB}k"] = system_config("vp", nc_size=size)
    configs["p5"] = system_config("p5")
    configs["ncp5"] = system_config("ncp5")
    for denom in (9, 5, 3):
        configs[f"vbp{denom}"] = system_config(f"vbp{denom}")
    configs["vpp5"] = system_config("vpp5")
    configs["vxp5"] = system_config("vxp5")
    for thr in thresholds:
        configs[f"vpp5/t{thr}"] = system_config("vpp5", initial_threshold=thr)
    return configs


def holdout_configs() -> "OrderedDict[str, SystemConfig]":
    """Configurations the default training matrix never sees.

    Interpolation points (NC sizes between training sizes, unseen PC
    fractions and thresholds) — the regime ``repro explore`` actually
    queries the surrogate in.  ``repro explore --check`` simulates these
    and gates the per-component error against the committed baseline.
    """
    configs: "OrderedDict[str, SystemConfig]" = OrderedDict()
    configs["vb@8k"] = system_config("vb", nc_size=8 * _KB)
    configs["vb@32k"] = system_config("vb", nc_size=32 * _KB)
    configs["vp@8k"] = system_config("vp", nc_size=8 * _KB)
    configs["p7"] = system_config("p7")
    configs["vbp7"] = system_config("vbp7")
    configs["vpp7/t4"] = system_config("vpp7", initial_threshold=4)
    configs["vxp5/t16"] = system_config("vxp5", initial_threshold=16)
    configs["vbp5@32k"] = system_config("vbp5", nc_size=32 * _KB)
    return configs


def trace_features_for(
    benchmarks: Sequence[str],
    refs: int,
    seed: int,
    scale: float = DEFAULT_SCALE,
) -> Dict[str, TraceFeatures]:
    """Characterise every benchmark trace once (traces are cached)."""
    return {
        bench: trace_features(get_trace(bench, refs=refs, seed=seed, scale=scale))
        for bench in benchmarks
    }


# ---------------------------------------------------------------------------
# dataset assembly
# ---------------------------------------------------------------------------


def event_rates(result: SimulationResult) -> np.ndarray:
    """Per-reference Eq. 1 event rates of one simulated cell (the targets)."""
    c = result.counters
    n = max(1, c.refs)
    return np.array(
        [
            c.read_cluster_hits / n,
            c.read_nc_hits / n,
            c.read_pc_hits / n,
            c.read_remote / n,
            c.pc_relocations / n,
        ],
        dtype=np.float64,
    )


def build_dataset(
    results: Mapping[Tuple[str, str], SimulationResult],
    tfs: Mapping[str, TraceFeatures],
) -> Tuple[np.ndarray, np.ndarray, List[Tuple[str, str]]]:
    """(design matrix, rate targets, row keys) from one sweep's results.

    Rows are assembled in sorted ``(system, benchmark)`` order so the
    dataset — and therefore the fitted coefficients — do not depend on
    sweep iteration order.
    """
    keys = sorted(results)
    x_rows = []
    y_rows = []
    for key in keys:
        r = results[key]
        x_rows.append(cell_features(r.config, tfs[r.benchmark]))
        y_rows.append(event_rates(r))
    return np.array(x_rows), np.array(y_rows), keys


def fit_surrogate(
    results: Mapping[Tuple[str, str], SimulationResult],
    tfs: Mapping[str, TraceFeatures],
    meta: Optional[Dict[str, object]] = None,
) -> SurrogateModel:
    """Fit the surrogate on one sweep's simulated results."""
    x, y, keys = build_dataset(results, tfs)
    info: Dict[str, object] = dict(meta or {})
    info["train_systems"] = sorted({s for s, _ in keys})
    info["train_benchmarks"] = sorted({b for _, b in keys})
    return SurrogateModel.fit(x, y, meta=info)


# ---------------------------------------------------------------------------
# cell-by-cell validation (the fidelity.py pattern: exact measured truth,
# explicit per-cell deviations, structural honesty)
# ---------------------------------------------------------------------------


@dataclass
class CellValidation:
    """Predicted vs. simulated Eq. 1 decomposition of one cell.

    All values are stall **cycles per reference**; ``actual`` comes from
    the exact closed-form attribution
    (:func:`repro.sim.latency.stall_components` — integer-identical to
    the stall profiler by the conservation invariant).
    """

    system: str
    benchmark: str
    predicted: Dict[str, float]
    actual: Dict[str, float]

    @property
    def predicted_total(self) -> float:
        return sum(self.predicted.values())

    @property
    def actual_total(self) -> float:
        return sum(self.actual.values())

    def abs_error(self, component: str) -> float:
        return abs(self.predicted[component] - self.actual[component])

    @property
    def total_error_pct(self) -> Optional[float]:
        """Signed total-stall error in percent; None when actual is 0."""
        if self.actual_total == 0.0:
            return None
        return (self.predicted_total - self.actual_total) / self.actual_total * 100.0


def validate_model(
    model: SurrogateModel,
    results: Mapping[Tuple[str, str], SimulationResult],
    tfs: Mapping[str, TraceFeatures],
) -> List[CellValidation]:
    """Grade the model on simulated cells, in sorted cell order."""
    cells = []
    for system, bench in sorted(results):
        r = results[(system, bench)]
        tf = tfs[r.benchmark]
        x = cell_features(r.config, tf)
        predicted = model.predict_cell(r.config, x)
        n = max(1, r.counters.refs)
        actual = {
            comp: cycles / n
            for comp, cycles in stall_components(r.counters, r.config).items()
        }
        cells.append(
            CellValidation(
                system=system, benchmark=bench, predicted=predicted, actual=actual
            )
        )
    return cells


def error_summary(cells: Sequence[CellValidation]) -> Dict[str, object]:
    """The gate metrics: median |error| per component, total-% spread.

    Medians (not means) so one pathological cell cannot mask — or fake —
    a systematic accuracy change; per-component absolute cycles/ref so
    components that are legitimately zero on many systems (pc_hit on
    PC-less configs) still gate meaningfully.
    """
    if not cells:
        return {
            "cells": 0,
            "median_abs_error_cycles_per_ref": {c: 0.0 for c in STALL_COMPONENTS},
            "median_abs_total_error_pct": 0.0,
            "max_abs_total_error_pct": 0.0,
        }
    per_component = {
        comp: float(median(cell.abs_error(comp) for cell in cells))
        for comp in STALL_COMPONENTS
    }
    pct = [abs(c.total_error_pct) for c in cells if c.total_error_pct is not None]
    return {
        "cells": len(cells),
        "median_abs_error_cycles_per_ref": per_component,
        "median_abs_total_error_pct": float(median(pct)) if pct else 0.0,
        "max_abs_total_error_pct": float(max(pct)) if pct else 0.0,
    }
