"""Design-space search: rank everything, simulate only the frontier.

``repro explore`` enumerates (or samples) a cross product of NC/PC/
threshold/latency axes, scores every candidate with the fitted surrogate
in one vectorised pass — no :class:`~repro.params.SystemConfig` is ever
built during ranking, so a hundred thousand candidates score in well
under a second — and then simulates *only* the predicted Pareto frontier
of (hardware cost, predicted stall).  Each simulated frontier cell is
graded against its prediction with the same cell-by-cell machinery the
calibration uses, so every ``explore`` run ends with an honest
predicted-vs-simulated error report.

Cost model: SRAM-equivalent bytes.  The paper's core trade-off is that
DRAM capacity is roughly an order of magnitude cheaper than SRAM, so a
DRAM NC's bytes and a page cache's DRAM frames are charged
:data:`DRAM_BYTE_COST` (= 1/8) per byte while SRAM NC bytes are charged
1.0.  Page-cache bytes are averaged over the target benchmarks (their
fraction-based size depends on the dataset).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..params import DEFAULT_BLOCK_SIZE, DEFAULT_NC_SIZE, LatencyModel, SystemConfig
from ..sim.results import SimulationResult
from ..sim.runner import DEFAULT_SCALE
from ..system.builder import system_config
from .features import TraceFeatures, feature_matrix
from .fit import (
    DEFAULT_FIT_BENCHMARKS,
    CellValidation,
    error_summary,
    fit_surrogate,
    holdout_configs,
    trace_features_for,
    training_configs,
    validate_model,
)
from .model import SurrogateModel, SurrogateError

_KB = 1024

#: relative cost of a DRAM byte vs. an SRAM byte (Sec. 2: DRAM is about
#: an order of magnitude denser/cheaper; 1/8 keeps the arithmetic exact)
DRAM_BYTE_COST = 0.125

#: families with no network cache at all
_NO_NC_FAMILIES = ("base", "p")
#: families whose NC is the large DRAM one (sizes from ``dram_nc_sizes``)
_DRAM_FAMILIES = ("ncd",)
#: families with a page cache (take the fraction/threshold axes)
_PC_FAMILIES = ("p", "ncp", "vbp", "vpp", "vxp")

#: per-family configuration traits: (has_nc, victim, page_indexed, dram).
#: Mirrors repro.system.builder._NC_FLAVOURS; pinned against
#: config_scalars() in tests/surrogate/test_features.py.
_FAMILY_TRAITS: Dict[str, Tuple[float, float, float, float]] = {
    "base": (0.0, 0.0, 0.0, 0.0),
    "p": (0.0, 0.0, 0.0, 0.0),
    "nc": (1.0, 0.0, 0.0, 0.0),
    "ncp": (1.0, 0.0, 0.0, 0.0),
    "vb": (1.0, 1.0, 0.0, 0.0),
    "vbp": (1.0, 1.0, 0.0, 0.0),
    "vp": (1.0, 1.0, 1.0, 0.0),
    "vpp": (1.0, 1.0, 1.0, 0.0),
    "vxp": (1.0, 1.0, 1.0, 0.0),
    "ncd": (1.0, 0.0, 0.0, 1.0),
}


class Candidate(NamedTuple):
    """One point of the design space.

    Zero means "axis not applicable": ``nc_size == 0`` for NC-less
    families, ``pc_denom == threshold == 0`` for PC-less ones.
    """

    family: str
    nc_size: int
    pc_denom: int
    threshold: int
    remote_latency: int

    @property
    def label(self) -> str:
        parts = [self.family + (str(self.pc_denom) if self.pc_denom else "")]
        if self.nc_size:
            parts.append(f"nc{self.nc_size // _KB}k")
        if self.threshold:
            parts.append(f"t{self.threshold}")
        if self.remote_latency != 30:
            parts.append(f"r{self.remote_latency}")
        return "/".join(parts)

    def to_config(self) -> SystemConfig:
        """Materialise the real :class:`SystemConfig` (frontier cells only)."""
        name = self.family + (str(self.pc_denom) if self.pc_denom else "")
        kwargs: Dict[str, object] = {
            "latency": LatencyModel(remote_access=self.remote_latency),
        }
        if self.nc_size:
            kwargs["nc_size"] = self.nc_size
        if self.threshold:
            kwargs["initial_threshold"] = self.threshold
        return system_config(name, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class DesignSpace:
    """The cross product of configuration axes ``repro explore`` searches.

    Infinite-NC systems (``ncs``/``dinf``) are deliberately absent: their
    coverage feature saturates and the surrogate has nothing to
    interpolate — simulate them directly if you need the ideal bound.
    """

    families: Tuple[str, ...] = ("base", "nc", "vb", "vp", "ncd", "p", "ncp", "vbp", "vpp", "vxp")
    nc_sizes: Tuple[int, ...] = (4 * _KB, 8 * _KB, 16 * _KB, 32 * _KB, 64 * _KB, 128 * _KB)
    dram_nc_sizes: Tuple[int, ...] = (256 * _KB, 512 * _KB, 1024 * _KB)
    pc_denoms: Tuple[int, ...] = (9, 7, 5, 3)
    thresholds: Tuple[int, ...] = (2, 4, 8, 16)
    remote_latencies: Tuple[int, ...] = (30,)

    def __post_init__(self) -> None:
        unknown = [f for f in self.families if f not in _FAMILY_TRAITS]
        if unknown:
            raise ConfigurationError(
                f"unknown design-space families: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(_FAMILY_TRAITS))})"
            )

    def _axes(self, family: str) -> Tuple[Sequence[int], ...]:
        if family in _NO_NC_FAMILIES:
            nc_sizes: Sequence[int] = (0,)
        elif family in _DRAM_FAMILIES:
            nc_sizes = self.dram_nc_sizes
        else:
            nc_sizes = self.nc_sizes
        if family in _PC_FAMILIES:
            denoms: Sequence[int] = self.pc_denoms
            thresholds: Sequence[int] = self.thresholds
        else:
            denoms = (0,)
            thresholds = (0,)
        return nc_sizes, denoms, thresholds, self.remote_latencies

    @property
    def size(self) -> int:
        """Number of candidates, computed without enumerating them."""
        total = 0
        for family in self.families:
            n = 1
            for axis in self._axes(family):
                n *= len(axis)
            total += n
        return total

    def candidates(self) -> List[Candidate]:
        """Enumerate the full space, family-major, axes in declared order."""
        out: List[Candidate] = []
        for family in self.families:
            nc_sizes, denoms, thresholds, latencies = self._axes(family)
            for nc, denom, thr, rl in product(nc_sizes, denoms, thresholds, latencies):
                out.append(Candidate(family, nc, denom, thr, rl))
        return out

    def sample(self, n: int, seed: int = 1) -> List[Candidate]:
        """``n`` distinct candidates, decoded arithmetically by index.

        Deterministic for a given seed, and never materialises the full
        space — sampling a million-point space costs O(n).
        """
        total = self.size
        if n >= total:
            return self.candidates()
        rng = np.random.default_rng(seed)
        picks = np.sort(rng.choice(total, size=n, replace=False))
        out = []
        base = 0
        fam_iter = iter(self.families)
        family = next(fam_iter)
        axes = self._axes(family)
        fam_size = int(np.prod([len(a) for a in axes]))
        for idx in picks.tolist():
            while idx >= base + fam_size:
                base += fam_size
                family = next(fam_iter)
                axes = self._axes(family)
                fam_size = int(np.prod([len(a) for a in axes]))
            local = idx - base
            coords = np.unravel_index(local, [len(a) for a in axes])
            nc, denom, thr, rl = (
                axes[i][int(c)] for i, c in enumerate(coords)
            )
            out.append(Candidate(family, nc, denom, thr, rl))
        return out


# ---------------------------------------------------------------------------
# vectorised ranking
# ---------------------------------------------------------------------------


def _candidate_arrays(cands: Sequence[Candidate]) -> Dict[str, np.ndarray]:
    """Parallel float64 arrays of every candidate's configuration scalars."""
    traits = np.array([_FAMILY_TRAITS[c.family] for c in cands], dtype=np.float64)
    nc_size = np.array([c.nc_size for c in cands], dtype=np.float64)
    # NC families without an explicit size axis keep the default geometry
    has_nc = traits[:, 0]
    nc_size = np.where((has_nc > 0) & (nc_size == 0), float(DEFAULT_NC_SIZE), nc_size)
    denom = np.array([c.pc_denom for c in cands], dtype=np.float64)
    return {
        "has_nc": has_nc,
        "nc_victim": traits[:, 1],
        "nc_page_indexed": traits[:, 2],
        "nc_dram": traits[:, 3],
        "nc_blocks": nc_size / float(DEFAULT_BLOCK_SIZE),
        "pc_enabled": (denom > 0).astype(np.float64),
        "denom_inv": np.where(denom > 0, 1.0 / np.maximum(denom, 1.0), 0.0),
        "threshold": np.array([c.threshold for c in cands], dtype=np.float64),
        "remote_latency": np.array(
            [c.remote_latency for c in cands], dtype=np.float64
        ),
    }


def _latency_matrix(arrays: Mapping[str, np.ndarray]) -> np.ndarray:
    """(N, 5) Table 1 latencies per candidate, in STALL_COMPONENTS order."""
    lat = LatencyModel()
    dram = arrays["nc_dram"]
    rl = arrays["remote_latency"]
    n = len(rl)
    out = np.empty((n, 5), dtype=np.float64)
    out[:, 0] = lat.cache_to_cache
    out[:, 1] = np.where(dram > 0, lat.dram_access + lat.tag_check, lat.cache_to_cache)
    out[:, 2] = lat.pc_hit
    out[:, 3] = np.where(dram > 0, rl + lat.tag_check, rl)
    out[:, 4] = lat.page_relocation
    return out


def candidate_costs(
    arrays: Mapping[str, np.ndarray], tfs: Mapping[str, TraceFeatures]
) -> np.ndarray:
    """SRAM-equivalent hardware cost per candidate, in bytes."""
    dram = arrays["nc_dram"]
    nc_bytes = arrays["nc_blocks"] * float(DEFAULT_BLOCK_SIZE)
    mean_dataset = float(
        np.mean([tf.dataset_bytes for tf in tfs.values()])
    ) if tfs else 0.0
    pc_bytes = arrays["pc_enabled"] * arrays["denom_inv"] * mean_dataset
    return (
        nc_bytes * np.where(dram > 0, DRAM_BYTE_COST, 1.0)
        + pc_bytes * DRAM_BYTE_COST
    )


def rank_candidates(
    model: SurrogateModel,
    cands: Sequence[Candidate],
    tfs: Mapping[str, TraceFeatures],
) -> Tuple[np.ndarray, np.ndarray]:
    """(predicted stall cycles/ref, cost bytes) for every candidate.

    The stall is the mean over the target benchmarks of the predicted
    Eq. 1 total; one matrix multiply per benchmark.
    """
    if not tfs:
        raise SurrogateError("rank_candidates needs at least one benchmark")
    arrays = _candidate_arrays(cands)
    lat = _latency_matrix(arrays)
    stall = np.zeros(len(cands), dtype=np.float64)
    for tf in tfs.values():
        x = feature_matrix(
            tf,
            has_nc=arrays["has_nc"],
            nc_victim=arrays["nc_victim"],
            nc_page_indexed=arrays["nc_page_indexed"],
            nc_dram=arrays["nc_dram"],
            nc_blocks=arrays["nc_blocks"],
            pc_enabled=arrays["pc_enabled"],
            pc_bytes=arrays["pc_enabled"] * arrays["denom_inv"] * tf.dataset_bytes,
            threshold=arrays["threshold"],
        )
        stall += model.predict_cycles_per_ref(x, lat).sum(axis=1)
    stall /= len(tfs)
    return stall, candidate_costs(arrays, tfs)


def pareto_frontier(cost: np.ndarray, stall: np.ndarray) -> List[int]:
    """Indices of the non-dominated (cost, stall) points, cost-ascending.

    A candidate survives iff no other candidate is at most as expensive
    *and* strictly faster.  Ties resolve deterministically: the lowest
    index among equals wins (lexsort is stable).
    """
    order = np.lexsort((np.arange(len(cost)), stall, cost))
    frontier: List[int] = []
    best = np.inf
    for i in order.tolist():
        if stall[i] < best:
            frontier.append(i)
            best = stall[i]
    return frontier


def select_frontier(frontier: Sequence[int], max_cells: int) -> List[int]:
    """At most ``max_cells`` frontier points, evenly spaced along it.

    The endpoints (cheapest and fastest) always survive, so the report
    spans the whole trade-off curve.
    """
    if max_cells <= 0 or len(frontier) <= max_cells:
        return list(frontier)
    picks = np.linspace(0, len(frontier) - 1, max_cells).round().astype(int)
    return [frontier[i] for i in sorted(set(picks.tolist()))]


# ---------------------------------------------------------------------------
# the end-to-end search
# ---------------------------------------------------------------------------


@dataclass
class FrontierEntry:
    """One simulated Pareto-frontier cell in the explore report."""

    label: str
    candidate: Candidate
    cost_bytes: float
    predicted_stall: float  #: mean predicted cycles/ref over the benchmarks
    simulated_stall: Optional[float] = None  #: mean measured cycles/ref

    @property
    def error_pct(self) -> Optional[float]:
        if self.simulated_stall is None or self.simulated_stall == 0.0:
            return None
        return (self.predicted_stall - self.simulated_stall) / self.simulated_stall * 100.0


@dataclass
class ExploreOutcome:
    """Everything one ``repro explore`` run produced."""

    benchmarks: List[str]
    refs: int
    seed: int
    scale: float
    space_size: int
    n_ranked: int
    sampled: bool
    rank_seconds: float
    model: SurrogateModel
    frontier: List[FrontierEntry] = field(default_factory=list)
    frontier_total: int = 0  #: full frontier size before selection
    validations: List[CellValidation] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)
    train_cells: int = 0
    sim_wall_s: float = 0.0
    cache: Optional[Dict[str, object]] = None

    @property
    def candidates_per_sec(self) -> float:
        if self.rank_seconds <= 0.0:
            return 0.0
        return self.n_ranked / self.rank_seconds


def calibrate(
    benchmarks: Sequence[str] = DEFAULT_FIT_BENCHMARKS,
    refs: int = 40_000,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    jobs: int = 1,
    engine: Optional[str] = None,
    result_store=None,
    train_configs: Optional[Mapping[str, SystemConfig]] = None,
    recovery=None,
) -> Tuple[SurrogateModel, Dict[Tuple[str, str], SimulationResult], Dict[str, TraceFeatures]]:
    """Fit a fresh surrogate on a real training sweep.

    Returns ``(model, training results, per-benchmark trace features)``.
    The sweep reuses all the standard machinery — parallel workers,
    retries, the optional content-addressed result store — so a repeated
    calibration is mostly cache hits.
    """
    from ..sim.parallel import run_parallel_sweep

    configs = OrderedDict(train_configs) if train_configs else training_configs()
    results = run_parallel_sweep(
        configs, list(benchmarks), refs=refs, seed=seed, scale=scale,
        jobs=jobs, engine=engine, result_store=result_store, recovery=recovery,
    )
    tfs = trace_features_for(benchmarks, refs=refs, seed=seed, scale=scale)
    model = fit_surrogate(
        results, tfs,
        meta={"refs": refs, "seed": seed, "scale": scale},
    )
    return model, results, tfs


def explore(
    space: DesignSpace,
    benchmarks: Sequence[str] = DEFAULT_FIT_BENCHMARKS,
    refs: int = 40_000,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    jobs: int = 1,
    engine: Optional[str] = None,
    sample: Optional[int] = None,
    frontier_max: int = 12,
    simulate_frontier: bool = True,
    result_store=None,
    model: Optional[SurrogateModel] = None,
    train_configs: Optional[Mapping[str, SystemConfig]] = None,
) -> ExploreOutcome:
    """Search ``space``: calibrate, rank everything, simulate the frontier.

    With ``model`` given the calibration sweep is skipped.  ``sample``
    ranks a deterministic random subset instead of the full cross
    product.  ``simulate_frontier=False`` stops after ranking (pure
    prediction, no verification — the report says so).
    """
    train_cells = 0
    if model is None:
        model, train_results, tfs = calibrate(
            benchmarks, refs=refs, seed=seed, scale=scale, jobs=jobs,
            engine=engine, result_store=result_store,
            train_configs=train_configs,
        )
        train_cells = len(train_results)
    else:
        tfs = trace_features_for(benchmarks, refs=refs, seed=seed, scale=scale)

    start = time.perf_counter()
    if sample is not None and sample < space.size:
        cands = space.sample(sample, seed=seed)
        sampled = True
    else:
        cands = space.candidates()
        sampled = False
    stall, cost = rank_candidates(model, cands, tfs)
    rank_seconds = time.perf_counter() - start

    frontier_idx = pareto_frontier(cost, stall)
    chosen = select_frontier(frontier_idx, frontier_max)
    entries = [
        FrontierEntry(
            label=cands[i].label,
            candidate=cands[i],
            cost_bytes=float(cost[i]),
            predicted_stall=float(stall[i]),
        )
        for i in chosen
    ]

    outcome = ExploreOutcome(
        benchmarks=list(benchmarks),
        refs=refs,
        seed=seed,
        scale=scale,
        space_size=space.size,
        n_ranked=len(cands),
        sampled=sampled,
        rank_seconds=rank_seconds,
        model=model,
        frontier=entries,
        frontier_total=len(frontier_idx),
        train_cells=train_cells,
    )
    if not simulate_frontier or not entries:
        outcome.summary = error_summary([])
        return outcome

    from ..sim.parallel import RecoveryLog, cache_summary, run_parallel_sweep

    configs: "OrderedDict[str, SystemConfig]" = OrderedDict(
        (e.label, e.candidate.to_config()) for e in entries
    )
    recovery = RecoveryLog()
    sim_start = time.perf_counter()
    results = run_parallel_sweep(
        configs, list(benchmarks), refs=refs, seed=seed, scale=scale,
        jobs=jobs, engine=engine, result_store=result_store,
        recovery=recovery,
    )
    outcome.sim_wall_s = time.perf_counter() - sim_start
    if result_store is not None:
        outcome.cache = cache_summary(results, recovery)

    outcome.validations = validate_model(model, results, tfs)
    outcome.summary = error_summary(outcome.validations)
    by_label: Dict[str, List[float]] = {}
    for (label, bench), r in results.items():
        n = max(1, r.counters.refs)
        by_label.setdefault(label, []).append(r.remote_read_stall / n)
    for e in entries:
        measured = by_label.get(e.label)
        if measured:
            e.simulated_stall = float(np.mean(measured))
    outcome.summary["rank_correlation"] = frontier_rank_correlation(entries)
    return outcome


# ---------------------------------------------------------------------------
# rendering (text via analysis.report/analysis.charts, JSON for the gate)
# ---------------------------------------------------------------------------

#: component key -> short column label, Eq. 1 order (matches
#: analysis.report._STALL_COLUMNS)
_COMPONENT_LABELS = (
    ("cluster_hit", "c2c"),
    ("nc_hit", "nc_hit"),
    ("pc_hit", "pc_hit"),
    ("remote_miss", "remote"),
    ("relocation", "reloc"),
)


def explore_report(outcome: ExploreOutcome) -> str:
    """The human-readable ``repro explore`` report."""
    from ..analysis.charts import bar_chart
    from ..analysis.report import format_comparison_grid

    lines = [
        f"design-space exploration  ({outcome.n_ranked:,} of "
        f"{outcome.space_size:,} candidates ranked"
        + (", sampled" if outcome.sampled else "")
        + f" in {outcome.rank_seconds:.3f}s = "
        f"{outcome.candidates_per_sec:,.0f}/s)",
        f"benchmarks: {', '.join(outcome.benchmarks)}   "
        f"refs={outcome.refs} seed={outcome.seed}",
    ]
    if outcome.train_cells:
        lines.append(
            f"surrogate calibrated on {outcome.train_cells} simulated cells "
            f"(model {outcome.model.digest()[:12]})"
        )
    else:
        lines.append(f"surrogate model {outcome.model.digest()[:12]} (pre-fitted)")
    lines.append("")

    def frontier_cell(label: str, col: str) -> Optional[str]:
        e = next(x for x in outcome.frontier if x.label == label)
        if col == "cost(KB)":
            return f"{e.cost_bytes / 1024.0:,.1f}"
        if col == "predicted":
            return f"{e.predicted_stall:.3f}"
        if col == "simulated":
            return None if e.simulated_stall is None else f"{e.simulated_stall:.3f}"
        if col == "err%":
            return None if e.error_pct is None else f"{e.error_pct:+.1f}"
        return None

    n_shown = len(outcome.frontier)
    title = (
        f"predicted Pareto frontier (cost vs. mean stall/ref; "
        f"{n_shown} of {outcome.frontier_total} points"
        + (" simulated)" if any(e.simulated_stall is not None
                                for e in outcome.frontier) else ", NOT simulated)")
    )
    lines.append(format_comparison_grid(
        title, [e.label for e in outcome.frontier],
        ["cost(KB)", "predicted", "simulated", "err%"], frontier_cell,
        col_width=12,
    ))

    simulated = [e for e in outcome.frontier if e.simulated_stall is not None]
    if simulated:
        values: Dict[Tuple[str, str], float] = {}
        for e in simulated:
            values[("predicted", e.label)] = e.predicted_stall
            values[("simulated", e.label)] = e.simulated_stall  # type: ignore[assignment]
        lines.append("")
        lines.append(bar_chart(
            "frontier stall cycles/ref, predicted vs. simulated",
            [e.label for e in simulated], ["predicted", "simulated"], values,
        ))

    if outcome.validations:
        lines.append("")
        lines.append(validation_report(outcome.validations))

    if outcome.summary:
        s = outcome.summary
        lines.append("")
        lines.append(
            f"validation: {s.get('cells', 0)} cells, median |total| error "
            f"{s.get('median_abs_total_error_pct', 0.0):.2f}%  "
            f"(max {s.get('max_abs_total_error_pct', 0.0):.2f}%)"
        )
        rho = s.get("rank_correlation")
        if rho is not None:
            lines.append(
                f"frontier rank correlation (predicted vs. simulated "
                f"ordering): {rho:+.2f}"
            )
    if outcome.cache:
        lines.append(f"result store: {outcome.cache}")
    return "\n".join(lines)


def validation_report(cells: Sequence[CellValidation]) -> str:
    """Per-benchmark predicted-vs-simulated grids, one row per system."""
    from ..analysis.report import format_prediction_grid

    by_bench: Dict[str, List[CellValidation]] = {}
    for c in cells:
        by_bench.setdefault(c.benchmark, []).append(c)
    cols = [label for _k, label in _COMPONENT_LABELS] + ["total"]
    grids = []
    for bench in sorted(by_bench):
        group = by_bench[bench]
        predicted: Dict[Tuple[str, str], float] = {}
        actual: Dict[Tuple[str, str], float] = {}
        for c in group:
            for key, label in _COMPONENT_LABELS:
                predicted[(c.system, label)] = c.predicted[key]
                actual[(c.system, label)] = c.actual[key]
            predicted[(c.system, "total")] = c.predicted_total
            actual[(c.system, "total")] = c.actual_total
        grids.append(format_prediction_grid(
            f"per-component surrogate error — {bench}",
            [c.system for c in group], cols, predicted, actual,
        ))
    return "\n\n".join(grids)


def explore_json(outcome: ExploreOutcome) -> Dict[str, object]:
    """Machine-readable ``repro explore`` outcome (``--json``).

    Mirrors the ``repro perf --json`` convention: a flat ``kind``-tagged
    document whose numbers CI gates consume directly.
    """
    return {
        "kind": "explore",
        "benchmarks": outcome.benchmarks,
        "refs": outcome.refs,
        "seed": outcome.seed,
        "scale": outcome.scale,
        "space_size": outcome.space_size,
        "n_ranked": outcome.n_ranked,
        "sampled": outcome.sampled,
        "rank_seconds": outcome.rank_seconds,
        "candidates_per_sec": outcome.candidates_per_sec,
        "frontier_total": outcome.frontier_total,
        "frontier": [
            {
                "label": e.label,
                "family": e.candidate.family,
                "nc_size": e.candidate.nc_size,
                "pc_denom": e.candidate.pc_denom,
                "threshold": e.candidate.threshold,
                "remote_latency": e.candidate.remote_latency,
                "cost_bytes": e.cost_bytes,
                "predicted_stall_per_ref": e.predicted_stall,
                "simulated_stall_per_ref": e.simulated_stall,
                "error_pct": e.error_pct,
            }
            for e in outcome.frontier
        ],
        "validation": outcome.summary,
        "train_cells": outcome.train_cells,
        "sim_wall_s": outcome.sim_wall_s,
        "cache": outcome.cache,
        "model": {
            "digest": outcome.model.digest(),
            "n_cells": outcome.model.meta.get("n_cells"),
            "in_sample_rmse": outcome.model.meta.get("in_sample_rmse"),
        },
    }


def check_surrogate(
    baseline: Mapping[str, object],
    space: DesignSpace,
    benchmarks: Sequence[str] = DEFAULT_FIT_BENCHMARKS,
    refs: int = 40_000,
    seed: int = 1,
    scale: float = DEFAULT_SCALE,
    jobs: int = 1,
    engine: Optional[str] = None,
    sample: Optional[int] = None,
    result_store=None,
) -> Tuple[Dict[str, object], List[CellValidation], List[str]]:
    """The CI accuracy gate behind ``repro explore --check``.

    Calibrates on the training matrix, validates on the **held-out**
    matrix (:func:`~repro.surrogate.fit.holdout_configs` — configurations
    the fit never saw), ranks the design space for the throughput floor,
    and compares every metric against the committed baseline
    (``benchmarks/baseline_surrogate.json``).  Returns ``(summary doc,
    holdout cells, failure strings)`` — empty failures means the gate is
    green.
    """
    from ..sim.parallel import run_parallel_sweep

    model, _train, tfs = calibrate(
        benchmarks, refs=refs, seed=seed, scale=scale, jobs=jobs,
        engine=engine, result_store=result_store,
    )
    holdout = run_parallel_sweep(
        holdout_configs(), list(benchmarks), refs=refs, seed=seed,
        scale=scale, jobs=jobs, engine=engine, result_store=result_store,
    )
    cells = validate_model(model, holdout, tfs)
    summary = error_summary(cells)

    start = time.perf_counter()
    cands = space.sample(sample, seed=seed) if sample else space.candidates()
    rank_candidates(model, cands, tfs)
    rank_seconds = time.perf_counter() - start
    cand_per_sec = len(cands) / rank_seconds if rank_seconds > 0 else 0.0

    failures: List[str] = []
    limits = baseline.get("max_median_abs_error_cycles_per_ref", {})
    measured = summary["median_abs_error_cycles_per_ref"]
    for comp, limit in limits.items():  # type: ignore[union-attr]
        got = measured.get(comp)  # type: ignore[union-attr]
        if got is None:
            failures.append(f"baseline component {comp!r} missing from summary")
        elif got > float(limit):
            failures.append(
                f"median |{comp}| error {got:.5f} cycles/ref exceeds "
                f"baseline limit {float(limit):.5f}"
            )
    limit = baseline.get("max_median_abs_total_error_pct")
    if limit is not None and summary["median_abs_total_error_pct"] > float(limit):
        failures.append(
            f"median |total| error {summary['median_abs_total_error_pct']:.2f}% "
            f"exceeds baseline limit {float(limit):.2f}%"
        )
    floor = baseline.get("min_candidates_ranked")
    if floor is not None and len(cands) < int(floor):
        failures.append(
            f"ranked only {len(cands)} candidates; baseline requires "
            f">= {int(floor)} (widen the axes)"
        )
    floor = baseline.get("min_candidates_per_sec")
    if floor is not None and cand_per_sec < float(floor):
        failures.append(
            f"ranking throughput {cand_per_sec:,.0f} candidates/s below "
            f"baseline floor {float(floor):,.0f}"
        )

    doc: Dict[str, object] = {
        "kind": "surrogate-check",
        "benchmarks": list(benchmarks),
        "refs": refs,
        "seed": seed,
        "scale": scale,
        "holdout_systems": sorted({c.system for c in cells}),
        "validation": summary,
        "n_candidates_ranked": len(cands),
        "rank_seconds": rank_seconds,
        "candidates_per_sec": cand_per_sec,
        "model": {
            "digest": model.digest(),
            "n_cells": model.meta.get("n_cells"),
            "in_sample_rmse": model.meta.get("in_sample_rmse"),
        },
        "baseline": dict(baseline),
        "failures": failures,
        "passed": not failures,
    }
    return doc, cells, failures


def frontier_rank_correlation(entries: Sequence[FrontierEntry]) -> Optional[float]:
    """Spearman rank correlation of predicted vs. simulated frontier stall.

    The number that says whether the surrogate *orders* designs
    correctly, which matters more than absolute error for a search tool.
    ``None`` with fewer than three simulated points or zero variance.
    """
    pts = [
        (e.predicted_stall, e.simulated_stall)
        for e in entries
        if e.simulated_stall is not None
    ]
    if len(pts) < 3:
        return None
    pred = np.array([p for p, _ in pts])
    sim = np.array([s for _, s in pts])
    pr = np.argsort(np.argsort(pred)).astype(np.float64)
    sr = np.argsort(np.argsort(sim)).astype(np.float64)
    if np.ptp(pr) == 0.0 or np.ptp(sr) == 0.0:
        return None
    pc = np.corrcoef(pr, sr)[0, 1]
    return float(pc) if np.isfinite(pc) else None
