"""Feature extraction for the analytic surrogate.

One feature vector per (benchmark trace, candidate configuration).  The
trace side comes from :func:`repro.trace.stats.characterize`; the
configuration side is a handful of scalars — *capacity coverage*, cache
organisation flags, relocation aggressiveness — chosen so they can be
computed for a hundred thousand candidates from plain numpy arrays
without ever materialising a :class:`~repro.params.SystemConfig`.

There is a single source of truth for the feature math:
:func:`feature_matrix` operates on parallel arrays, and the scalar path
(:func:`cell_features`, used for training rows and validation cells)
routes through it with length-1 arrays, so the two can never diverge
(pinned by ``tests/surrogate/test_features.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..params import NCKind, SystemConfig
from ..trace.record import Trace
from ..trace.stats import TraceCharacteristics, characterize

#: trace-side feature names, in vector order (must match
#: TraceCharacteristics.feature_dict keys)
TRACE_FEATURE_NAMES: Tuple[str, ...] = (
    "write_fraction",
    "block_utilization",
    "page_utilization",
    "remote_fraction",
    "log_distinct_blocks",
    "log_distinct_pages",
    "log_block_reuse",
    "log_page_reuse",
    "hot_block_fraction",
)

#: configuration-side feature names, in vector order
CONFIG_FEATURE_NAMES: Tuple[str, ...] = (
    "has_nc",
    "nc_victim",
    "nc_page_indexed",
    "nc_dram",
    "nc_coverage",
    "nc_coverage_sq",
    "pc_enabled",
    "pc_coverage",
    "threshold_inv",
)

#: interaction terms: capacity coverage crossed with the locality knobs
#: that decide whether that capacity is usable
INTERACTION_NAMES: Tuple[str, ...] = (
    "nc_coverage*page_utilization",
    "nc_coverage*log_block_reuse",
    "nc_coverage*hot_block_fraction",
    "pc_coverage*page_utilization",
    "pc_coverage*log_page_reuse",
)

#: the full feature vector, in order; the model's coefficient rows
FEATURE_NAMES: Tuple[str, ...] = (
    ("bias",) + TRACE_FEATURE_NAMES + CONFIG_FEATURE_NAMES + INTERACTION_NAMES
)

N_FEATURES = len(FEATURE_NAMES)


@dataclass(frozen=True)
class TraceFeatures:
    """Everything the feature math needs to know about one benchmark trace."""

    benchmark: str
    chars: TraceCharacteristics
    #: the benchmark's shared-data size (sizes fraction-based page caches)
    dataset_bytes: int

    @property
    def distinct_blocks(self) -> int:
        return self.chars.distinct_blocks

    @property
    def footprint_bytes(self) -> int:
        return self.chars.footprint_bytes

    def vector(self) -> np.ndarray:
        """The trace-side feature values, ordered as TRACE_FEATURE_NAMES."""
        d = self.chars.feature_dict()
        return np.array([d[name] for name in TRACE_FEATURE_NAMES], dtype=np.float64)


def trace_features(trace: Trace) -> TraceFeatures:
    """Characterise one trace into the surrogate's trace-side features."""
    return TraceFeatures(
        benchmark=trace.name,
        chars=characterize(trace),
        dataset_bytes=int(trace.dataset_bytes),
    )


# ---------------------------------------------------------------------------
# configuration scalars
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfigScalars:
    """The configuration knobs the feature math consumes, as plain floats.

    ``nc_blocks`` is ``inf`` for the infinite NC kinds (their coverage
    saturates at 1.0) and 0 for no NC.  ``pc_bytes`` is the resolved
    page-cache capacity in bytes (0 when disabled).
    """

    has_nc: float
    nc_victim: float
    nc_page_indexed: float
    nc_dram: float
    nc_blocks: float
    pc_enabled: float
    pc_bytes: float
    threshold: float


def config_scalars(config: SystemConfig, dataset_bytes: int) -> ConfigScalars:
    """Extract the feature scalars from a real :class:`SystemConfig`."""
    nc = config.nc
    has_nc = nc.kind is not NCKind.NONE
    if not has_nc:
        nc_blocks = 0.0
    elif nc.is_infinite:
        nc_blocks = math.inf
    else:
        nc_blocks = nc.size / config.block_size
    pc = config.pc
    pc_bytes = 0.0
    if pc.enabled:
        if pc.size_bytes is not None:
            pc_bytes = float(pc.size_bytes)
        else:
            assert pc.fraction is not None
            pc_bytes = float(pc.fraction) * float(dataset_bytes)
    from ..params import NCIndexing

    return ConfigScalars(
        has_nc=float(has_nc),
        nc_victim=float(nc.kind is NCKind.VICTIM),
        nc_page_indexed=float(has_nc and nc.indexing is NCIndexing.PAGE),
        nc_dram=float(nc.is_dram),
        nc_blocks=nc_blocks,
        pc_enabled=float(pc.enabled),
        pc_bytes=pc_bytes,
        threshold=float(pc.initial_threshold if pc.enabled else 0),
    )


# ---------------------------------------------------------------------------
# the feature matrix (vector path — the single source of truth)
# ---------------------------------------------------------------------------


def feature_matrix(
    tf: TraceFeatures,
    has_nc: np.ndarray,
    nc_victim: np.ndarray,
    nc_page_indexed: np.ndarray,
    nc_dram: np.ndarray,
    nc_blocks: np.ndarray,
    pc_enabled: np.ndarray,
    pc_bytes: np.ndarray,
    threshold: np.ndarray,
) -> np.ndarray:
    """The (N, ``N_FEATURES``) design matrix for N candidates on one trace.

    All array arguments are parallel float64 vectors of length N; the
    trace-side columns are constant per call (one call per benchmark).
    ``nc_blocks`` may contain ``inf`` (infinite NCs) — coverage clamps it
    to 1.0.
    """
    n = len(has_nc)
    tvec = tf.vector()
    x = np.empty((n, N_FEATURES), dtype=np.float64)
    x[:, 0] = 1.0  # bias
    x[:, 1 : 1 + len(TRACE_FEATURE_NAMES)] = tvec  # broadcast per row

    # capacity coverage: what fraction of the remote working set fits
    with np.errstate(invalid="ignore"):
        nc_cov = np.minimum(1.0, nc_blocks / max(1, tf.distinct_blocks))
    nc_cov = np.nan_to_num(nc_cov, nan=1.0, posinf=1.0)
    pc_cov = np.minimum(1.0, pc_bytes / max(1, tf.footprint_bytes))
    thr_inv = pc_enabled / np.maximum(1.0, threshold)

    base = 1 + len(TRACE_FEATURE_NAMES)
    x[:, base + 0] = has_nc
    x[:, base + 1] = nc_victim
    x[:, base + 2] = nc_page_indexed
    x[:, base + 3] = nc_dram
    x[:, base + 4] = nc_cov
    x[:, base + 5] = nc_cov * nc_cov
    x[:, base + 6] = pc_enabled
    x[:, base + 7] = pc_cov
    x[:, base + 8] = thr_inv

    d = tf.chars.feature_dict()
    inter = base + len(CONFIG_FEATURE_NAMES)
    x[:, inter + 0] = nc_cov * d["page_utilization"]
    x[:, inter + 1] = nc_cov * d["log_block_reuse"]
    x[:, inter + 2] = nc_cov * d["hot_block_fraction"]
    x[:, inter + 3] = pc_cov * d["page_utilization"]
    x[:, inter + 4] = pc_cov * d["log_page_reuse"]
    return x


def scalars_matrix(tf: TraceFeatures, scalars: "list[ConfigScalars]") -> np.ndarray:
    """Feature matrix for a list of :class:`ConfigScalars` on one trace."""
    cols = {
        name: np.array([getattr(s, name) for s in scalars], dtype=np.float64)
        for name in (
            "has_nc", "nc_victim", "nc_page_indexed", "nc_dram",
            "nc_blocks", "pc_enabled", "pc_bytes", "threshold",
        )
    }
    return feature_matrix(tf, **cols)


def cell_features(
    config: SystemConfig, tf: TraceFeatures
) -> np.ndarray:
    """The feature vector of one (configuration, benchmark) cell.

    Routes through :func:`feature_matrix` with length-1 arrays so the
    scalar and vector paths share one implementation.
    """
    scalars = config_scalars(config, tf.dataset_bytes)
    return scalars_matrix(tf, [scalars])[0]


def feature_dict(config: SystemConfig, tf: TraceFeatures) -> Dict[str, float]:
    """Named view of :func:`cell_features` (docs, debugging, tests)."""
    vec = cell_features(config, tf)
    return {name: float(v) for name, v in zip(FEATURE_NAMES, vec)}
