"""The fitted surrogate: a linear model per Eq. 1 stall component.

The model predicts per-reference **event rates** — cluster c2c hits, NC
hits, PC hits, remote misses, relocations per shared reference — as a
linear function of the feature vector of :mod:`~repro.surrogate.features`,
clipped at zero.  Stall *cycles* are reconstructed exactly from those
rates and the candidate's Table 1 latencies::

    cycles_per_ref[c] = max(0, x . coef[:, c]) * latency_c(config)

Because the trace-driven simulator's event counts never depend on the
latency model, latency what-ifs pass through this reconstruction with no
model error at all; only the rate predictions are approximate.

Fitting is ridge-regularised least squares over the normal equations
(:meth:`SurrogateModel.fit`) — pure numpy, fully deterministic: the same
training sweep produces bit-identical coefficients (pinned by
``tests/surrogate/test_fit.py``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..obs.profile import STALL_COMPONENTS
from ..params import SystemConfig
from ..sim.latency import nc_hit_latency, remote_miss_latency
from .features import FEATURE_NAMES

#: relative ridge weight: the penalty is RIDGE * trace(X'X)/n_features,
#: so conditioning is scale-free and the solution stays deterministic
DEFAULT_RIDGE = 1e-6

#: serialisation format version; bump on any incompatible change
MODEL_VERSION = 1


class SurrogateError(ReproError):
    """A malformed, unfitted, or incompatible surrogate model."""


def component_latencies(config: SystemConfig) -> np.ndarray:
    """The five Eq. 1 latencies of one system, in STALL_COMPONENTS order."""
    lat = config.latency
    return np.array(
        [
            lat.cache_to_cache,
            nc_hit_latency(config),
            lat.pc_hit,
            remote_miss_latency(config),
            lat.page_relocation,
        ],
        dtype=np.float64,
    )


@dataclass
class SurrogateModel:
    """Coefficients + provenance of one calibrated surrogate.

    ``coef`` has shape ``(n_features, n_components)``; rows follow
    :data:`~repro.surrogate.features.FEATURE_NAMES`, columns follow
    :data:`~repro.obs.profile.STALL_COMPONENTS`.
    """

    coef: np.ndarray
    feature_names: Tuple[str, ...] = FEATURE_NAMES
    components: Tuple[str, ...] = STALL_COMPONENTS
    ridge: float = DEFAULT_RIDGE
    #: training provenance: refs/seed/scale, cells, systems, benchmarks,
    #: and in-sample residual summary — recorded, never interpreted
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.coef = np.asarray(self.coef, dtype=np.float64)
        if self.coef.shape != (len(self.feature_names), len(self.components)):
            raise SurrogateError(
                f"coefficient shape {self.coef.shape} does not match "
                f"{len(self.feature_names)} features x "
                f"{len(self.components)} components"
            )

    # ---- fitting ---------------------------------------------------------

    @classmethod
    def fit(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        ridge: float = DEFAULT_RIDGE,
        meta: Optional[Dict[str, object]] = None,
    ) -> "SurrogateModel":
        """Solve the ridge least-squares system for all components at once.

        ``x`` is the (cells, features) design matrix; ``y`` the (cells,
        components) per-reference event rates.  Solving the normal
        equations with a scale-free ridge term keeps the solve
        well-conditioned even when trace columns are collinear (few
        distinct benchmarks) and — unlike iterative solvers — bit-exactly
        reproducible for identical inputs.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2 or x.shape[0] != y.shape[0]:
            raise SurrogateError(
                f"design/target shapes disagree: {x.shape} vs {y.shape}"
            )
        if x.shape[0] < x.shape[1]:
            raise SurrogateError(
                f"under-determined fit: {x.shape[0]} cells for "
                f"{x.shape[1]} features — widen the training sweep"
            )
        gram = x.T @ x
        lam = ridge * float(np.trace(gram)) / gram.shape[0]
        gram += lam * np.eye(gram.shape[0])
        coef = np.linalg.solve(gram, x.T @ y)
        model = cls(coef=coef, ridge=ridge, meta=dict(meta or {}))
        resid = x @ coef - y
        model.meta["in_sample_rmse"] = {
            comp: float(np.sqrt(np.mean(resid[:, i] ** 2)))
            for i, comp in enumerate(model.components)
        }
        model.meta["n_cells"] = int(x.shape[0])
        return model

    # ---- prediction ------------------------------------------------------

    def predict_rates(self, x: np.ndarray) -> np.ndarray:
        """Per-reference event rates for each row of ``x`` (clipped at 0)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return np.clip(x @ self.coef, 0.0, None)

    def predict_cycles_per_ref(
        self, x: np.ndarray, latencies: np.ndarray
    ) -> np.ndarray:
        """Per-component stall cycles per reference.

        ``latencies`` is (N, 5) or (5,) in STALL_COMPONENTS order —
        broadcasting one latency row over all candidates is the common
        case when no latency axis is being swept.
        """
        return self.predict_rates(x) * np.asarray(latencies, dtype=np.float64)

    def predict_cell(
        self, config: SystemConfig, x: np.ndarray
    ) -> Dict[str, float]:
        """Component -> predicted stall cycles/ref for one real config."""
        cycles = self.predict_cycles_per_ref(x, component_latencies(config))[0]
        return {c: float(v) for c, v in zip(self.components, cycles)}

    # ---- serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "model_version": MODEL_VERSION,
            "feature_names": list(self.feature_names),
            "components": list(self.components),
            "ridge": self.ridge,
            "coef": [[float(v) for v in row] for row in self.coef],
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "SurrogateModel":
        if not isinstance(doc, dict) or doc.get("model_version") != MODEL_VERSION:
            raise SurrogateError(
                f"unsupported surrogate model document "
                f"(version {doc.get('model_version') if isinstance(doc, dict) else '?'})"
            )
        try:
            return cls(
                coef=np.array(doc["coef"], dtype=np.float64),
                feature_names=tuple(doc["feature_names"]),  # type: ignore[arg-type]
                components=tuple(doc["components"]),  # type: ignore[arg-type]
                ridge=float(doc["ridge"]),  # type: ignore[arg-type]
                meta=dict(doc.get("meta", {})),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SurrogateError(f"malformed surrogate model document: {exc}") from None

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "SurrogateModel":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            raise SurrogateError(f"cannot read surrogate model {path}: {exc}") from None
        return cls.from_dict(doc)

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form — the determinism handle."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    # ---- inspection ------------------------------------------------------

    def coefficient_table(self) -> List[Tuple[str, Dict[str, float]]]:
        """(feature, component -> coefficient) rows, in feature order."""
        return [
            (
                name,
                {c: float(self.coef[i, j]) for j, c in enumerate(self.components)},
            )
            for i, name in enumerate(self.feature_names)
        ]
