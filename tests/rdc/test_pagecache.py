"""Unit tests for the page cache (LRM replacement, block-grain states)."""

from __future__ import annotations

import pytest

from repro.coherence.states import PCBlockState
from repro.errors import ConfigurationError
from repro.rdc.pagecache import PageCache

BPP = 64  # blocks per 4 KB page


@pytest.fixture
def pc():
    return PageCache(capacity_frames=3, blocks_per_page=BPP)


class TestAllocation:
    def test_empty(self, pc):
        assert len(pc) == 0 and not pc.full
        assert 5 not in pc

    def test_allocate_below_capacity(self, pc):
        assert pc.allocate(5, now=1) is None
        assert 5 in pc

    def test_double_allocate_rejected(self, pc):
        pc.allocate(5, now=1)
        with pytest.raises(ConfigurationError):
            pc.allocate(5, now=2)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            PageCache(0, BPP)
        with pytest.raises(ConfigurationError):
            PageCache(4, 0)

    def test_new_frame_starts_invalid(self, pc):
        pc.allocate(5, now=1)
        assert pc.block_state(5, 0) == int(PCBlockState.INVALID)
        assert pc.frame(5).valid_blocks() == 0


class TestLRM:
    def test_least_recently_missed_evicted(self, pc):
        pc.allocate(1, now=1)
        pc.allocate(2, now=2)
        pc.allocate(3, now=3)
        pc.record_hit(1, now=10)  # page 1 missed recently
        evicted = pc.allocate(4, now=11)
        assert evicted.page == 2  # oldest last_miss

    def test_fill_updates_lrm_clock(self, pc):
        pc.allocate(1, now=1)
        pc.allocate(2, now=2)
        pc.allocate(3, now=3)
        pc.record_fill(1, 0, now=9)
        evicted = pc.allocate(4, now=10)
        assert evicted.page == 2

    def test_lrm_candidate_none_below_capacity(self, pc):
        pc.allocate(1, now=1)
        assert pc.lrm_candidate() is None


class TestBlockStates:
    def test_fill_clean(self, pc):
        pc.allocate(5, now=1)
        pc.record_fill(5, 7, now=2)
        assert pc.block_state(5, 7) == int(PCBlockState.CLEAN)

    def test_absorb_dirty(self, pc):
        pc.allocate(5, now=1)
        pc.absorb_dirty(5, 7)
        assert pc.block_state(5, 7) == int(PCBlockState.DIRTY)

    def test_mark_clean(self, pc):
        pc.allocate(5, now=1)
        pc.absorb_dirty(5, 7)
        pc.mark_clean(5, 7)
        assert pc.block_state(5, 7) == int(PCBlockState.CLEAN)

    def test_invalidate_block_reports_dirtiness(self, pc):
        pc.allocate(5, now=1)
        pc.absorb_dirty(5, 7)
        assert pc.invalidate_block(5, 7) is True
        assert pc.invalidate_block(5, 7) is False
        assert pc.block_state(5, 7) == int(PCBlockState.INVALID)

    def test_invalidate_block_of_absent_page(self, pc):
        assert pc.invalidate_block(9, 0) is False

    def test_block_state_of_absent_page(self, pc):
        assert pc.block_state(9, 0) == int(PCBlockState.INVALID)

    def test_dirty_offsets(self, pc):
        pc.allocate(5, now=1)
        pc.absorb_dirty(5, 3)
        pc.absorb_dirty(5, 9)
        pc.record_fill(5, 1, now=2)
        assert pc.frame(5).dirty_offsets() == [3, 9]


class TestHitCounters:
    def test_hits_saturate(self):
        pc = PageCache(2, BPP, hit_counter_max=3)
        pc.allocate(5, now=1)
        for i in range(10):
            pc.record_hit(5, now=i)
        assert pc.frame(5).hits == 3

    def test_reset_hit_counters(self, pc):
        pc.allocate(5, now=1)
        pc.record_hit(5, now=2)
        pc.reset_hit_counters()
        assert pc.frame(5).hits == 0


class TestMetrics:
    def test_fragmentation_empty(self, pc):
        assert pc.fragmentation() == 0.0

    def test_fragmentation_partial(self, pc):
        pc.allocate(5, now=1)
        for off in range(16):
            pc.record_fill(5, off, now=2)
        assert pc.fragmentation() == pytest.approx(1 - 16 / 64)

    def test_drop(self, pc):
        pc.allocate(5, now=1)
        frame = pc.drop(5)
        assert frame is not None and 5 not in pc
        assert pc.drop(5) is None
