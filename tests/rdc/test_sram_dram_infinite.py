"""Unit tests for the inclusion-style and infinite network caches."""

from __future__ import annotations

import pytest

from repro.coherence.states import NCState
from repro.params import CacheGeometry
from repro.rdc.base import InclusionPolicy
from repro.rdc.dram import FullInclusionDramNC
from repro.rdc.infinite import InfiniteNC
from repro.rdc.none import NullNC
from repro.rdc.sram import DirtyInclusionNC

GEOM = CacheGeometry(1024, 4)  # 16 blocks, 4 sets


class TestDirtyInclusionNC:
    def test_policy_flags(self):
        nc = DirtyInclusionNC(GEOM)
        assert nc.inclusion is InclusionPolicy.DIRTY_ONLY
        assert not nc.is_dram

    def test_allocates_on_fetch(self):
        nc = DirtyInclusionNC(GEOM)
        assert nc.on_fetch(0x10) is None
        assert nc.probe(0x10) == NCState.CLEAN

    def test_fetch_of_resident_block_is_noop(self):
        nc = DirtyInclusionNC(GEOM)
        nc.on_fetch(0x10)
        nc.accept_dirty_victim(0x10)
        nc.on_fetch(0x10)
        assert nc.probe(0x10) == NCState.DIRTY
        assert len(nc) == 1

    def test_fetch_overflow_reports_eviction(self):
        nc = DirtyInclusionNC(GEOM)
        for i in range(4):
            assert nc.on_fetch(i * 4) is None  # fill set 0
        ev = nc.on_fetch(16)
        assert ev is not None and ev.block == 0

    def test_read_hit_keeps_frame(self):
        nc = DirtyInclusionNC(GEOM)
        nc.on_fetch(0x10)
        assert nc.service_read(0x10) == NCState.CLEAN
        assert nc.probe(0x10) == NCState.CLEAN

    def test_write_hit_stales_frame(self):
        nc = DirtyInclusionNC(GEOM)
        nc.on_fetch(0x10)
        nc.accept_dirty_victim(0x10)
        assert nc.service_write(0x10) == NCState.DIRTY
        assert nc.probe(0x10) == NCState.CLEAN  # ownership moved to the L1

    def test_clean_victims_not_captured_when_frame_lost(self):
        nc = DirtyInclusionNC(GEOM)
        accepted, ev = nc.accept_clean_victim(0x10)
        assert not accepted and ev is None

    def test_clean_victim_with_frame_is_absorbed_quietly(self):
        nc = DirtyInclusionNC(GEOM)
        nc.on_fetch(0x10)
        accepted, ev = nc.accept_clean_victim(0x10)
        assert accepted and ev is None

    def test_dirty_victim_without_frame_declined(self):
        nc = DirtyInclusionNC(GEOM)
        accepted, _ = nc.accept_dirty_victim(0x10)
        assert not accepted

    def test_dirty_victim_absorbed_into_frame(self):
        nc = DirtyInclusionNC(GEOM)
        nc.on_fetch(0x10)
        accepted, _ = nc.accept_dirty_victim(0x10)
        assert accepted
        assert nc.probe(0x10) == NCState.DIRTY

    def test_invalidate_and_downgrade(self):
        nc = DirtyInclusionNC(GEOM)
        nc.on_fetch(0x10)
        nc.accept_dirty_victim(0x10)
        assert nc.downgrade(0x10)
        assert nc.invalidate(0x10) == NCState.CLEAN


class TestFullInclusionDramNC:
    def test_policy_flags(self):
        nc = FullInclusionDramNC(GEOM)
        assert nc.inclusion is InclusionPolicy.FULL
        assert nc.is_dram

    def test_allocate_and_hit(self):
        nc = FullInclusionDramNC(GEOM)
        nc.on_fetch(0x10)
        assert nc.service_read(0x10) == NCState.CLEAN

    def test_eviction_reported(self):
        nc = FullInclusionDramNC(GEOM)
        for i in range(5):
            ev = nc.on_fetch(i * 4)
        assert ev is not None and ev.block == 0

    def test_resident_blocks(self):
        nc = FullInclusionDramNC(GEOM)
        nc.on_fetch(1)
        nc.on_fetch(2)
        assert set(nc.resident_blocks()) == {1, 2}


class TestInfiniteNC:
    @pytest.mark.parametrize("is_dram", [False, True])
    def test_latency_class(self, is_dram):
        assert InfiniteNC(is_dram=is_dram).is_dram == is_dram

    def test_never_evicts(self):
        nc = InfiniteNC()
        for b in range(10_000):
            assert nc.on_fetch(b) is None
        assert len(nc) == 10_000

    def test_retains_until_invalidation(self):
        nc = InfiniteNC()
        nc.on_fetch(0x10)
        assert nc.service_read(0x10) == NCState.CLEAN
        assert nc.invalidate(0x10) == NCState.CLEAN
        assert nc.service_read(0x10) is None

    def test_dirty_absorb_and_write_hit(self):
        nc = InfiniteNC()
        nc.accept_dirty_victim(0x10)
        assert nc.service_write(0x10) == NCState.DIRTY
        assert nc.probe(0x10) == NCState.CLEAN  # stale under the new M

    def test_clean_victim_accepted(self):
        nc = InfiniteNC()
        accepted, ev = nc.accept_clean_victim(0x10)
        assert accepted and ev is None

    def test_downgrade(self):
        nc = InfiniteNC()
        nc.accept_dirty_victim(5)
        assert nc.downgrade(5)
        assert nc.probe(5) == NCState.CLEAN


class TestNullNC:
    def test_everything_declines(self):
        nc = NullNC()
        assert nc.on_fetch(1) is None
        assert nc.accept_clean_victim(1) == (False, None)
        assert nc.accept_dirty_victim(1) == (False, None)
        assert nc.service_read(1) is None
        assert nc.service_write(1) is None
        assert nc.invalidate(1) is None
        assert not nc.downgrade(1)
        assert list(nc.resident_blocks()) == []
        assert nc.set_index_of(1) is None
